"""Blocking client for the simulation service (stdlib ``http.client``).

The library half of the ``repro submit`` / ``repro jobs`` CLI verbs;
usable directly::

    from repro.harness.engine import RunSpec
    from repro.harness.runner import unshared
    from repro.service import ServiceClient
    from repro.workloads.apps import APPS

    client = ServiceClient(port=8070)
    job = client.submit(RunSpec.create(APPS["bfs"], unshared("lrr")))
    payload = client.wait(job["id"], timeout=120)
    result = client.parse(payload)          # a RunResult (or RunFailure)

Each call opens a fresh connection (the server speaks one request per
connection), so a client object is cheap, picklable-free and safe to
share across threads.

Error mapping: HTTP 429 raises :class:`AdmissionRejected` (carrying
``reason`` and ``retry_after`` so callers can back off and resubmit);
a 202 from ``/result`` raises :class:`JobPending`; everything else
non-2xx raises :class:`ServiceError` with the decoded body attached.
"""

from __future__ import annotations

import http.client
import json
import time

from repro.harness.engine import RunSpec
from repro.harness.resilience import RunFailure
from repro.service.serialize import parse_result
from repro.sim.stats import RunResult

__all__ = ["ServiceClient", "ServiceError", "AdmissionRejected",
           "JobPending"]


class ServiceError(RuntimeError):
    """Non-2xx response from the service."""

    def __init__(self, status: int, payload) -> None:
        message = payload.get("error") if isinstance(payload, dict) \
            else str(payload)
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload


class AdmissionRejected(ServiceError):
    """The service shed this submission (queue bound / rate limit)."""

    def __init__(self, status: int, payload) -> None:
        super().__init__(status, payload)
        self.reason = payload.get("reason", "unknown") \
            if isinstance(payload, dict) else "unknown"
        self.retry_after = float(payload.get("retry_after", 1.0)) \
            if isinstance(payload, dict) else 1.0


class JobPending(ServiceError):
    """The job exists but has not finished yet (``/result`` on a
    queued/running job)."""


class ServiceClient:
    """Talk to one :class:`~repro.service.server.ServiceServer`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8070, *,
                 client_id: str = "", timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.client_id = client_id
        self.timeout = timeout

    # -- transport -----------------------------------------------------
    def _request(self, method: str, path: str,
                 body: dict | None = None,
                 timeout: float | None = None) -> tuple[int, dict]:
        conn = http.client.HTTPConnection(
            self.host, self.port,
            timeout=timeout if timeout is not None else self.timeout)
        try:
            headers = {"Connection": "close"}
            if self.client_id:
                headers["X-Repro-Client"] = self.client_id
            payload = None
            if body is not None:
                payload = json.dumps(body)
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=headers)
            resp = conn.getresponse()
            raw = resp.read()
            ctype = resp.getheader("Content-Type", "")
            decoded = json.loads(raw) if "json" in ctype \
                else raw.decode(errors="replace")
            return resp.status, decoded
        finally:
            conn.close()

    def _checked(self, method: str, path: str, body: dict | None = None,
                 timeout: float | None = None) -> dict:
        status, payload = self._request(method, path, body,
                                        timeout=timeout)
        if status == 429:
            raise AdmissionRejected(status, payload)
        if status >= 400:
            raise ServiceError(status, payload)
        return payload

    # -- API -----------------------------------------------------------
    def submit(self, spec: RunSpec, *, priority: int = 0,
               sanitize: bool = False) -> dict:
        """Queue one run; returns the job record (``{"id": ..., ...}``).

        Raises :class:`AdmissionRejected` when the service sheds the
        submission — callers retry after ``exc.retry_after`` seconds.
        """
        payload = self._checked("POST", "/jobs", {
            "spec": spec.to_dict(), "priority": priority,
            "sanitize": sanitize, "client": self.client_id or None})
        return payload["job"]

    def status(self, job_id: str) -> dict:
        """Current job record."""
        return self._checked("GET", f"/jobs/{job_id}")["job"]

    def result(self, job_id: str) -> dict:
        """Result payload of a finished job.

        Raises :class:`JobPending` while the job is queued/running.
        """
        status, payload = self._request("GET", f"/jobs/{job_id}/result")
        if status == 202:
            raise JobPending(status, {"error": "job not finished",
                                      **payload})
        if status >= 400:
            raise ServiceError(status, payload)
        return payload

    def wait(self, job_id: str, *, timeout: float = 300.0) -> dict:
        """Block (server-side long-poll) until the job is terminal.

        Returns the result payload; raises ``TimeoutError`` if the job
        is still pending after ``timeout`` seconds.
        """
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"job {job_id} still pending after {timeout:.3g}s")
            poll = min(remaining, 30.0)
            payload = self._checked(
                "GET", f"/jobs/{job_id}/wait?timeout={poll:.3f}",
                timeout=poll + self.timeout)
            if not payload.get("timed_out"):
                return payload["payload"]

    def cancel(self, job_id: str) -> dict:
        """Cancel a queued job (409 → :class:`ServiceError` if it
        already left the queue)."""
        return self._checked("POST", f"/jobs/{job_id}/cancel")

    def jobs(self, *, state: str | None = None,
             client: str | None = None, limit: int = 200) -> list[dict]:
        """List job records, newest first."""
        qs = [f"limit={limit}"]
        if state:
            qs.append(f"state={state}")
        if client:
            qs.append(f"client={client}")
        return self._checked("GET", "/jobs?" + "&".join(qs))["jobs"]

    def healthz(self) -> dict:
        """Server health/introspection snapshot."""
        return self._checked("GET", "/healthz")

    def metrics_text(self) -> str:
        """Raw Prometheus text exposition from ``/metrics``."""
        status, payload = self._request("GET", "/metrics")
        if status >= 400:
            raise ServiceError(status, payload)
        return payload

    # -- conveniences --------------------------------------------------
    @staticmethod
    def parse(payload: dict) -> RunResult | RunFailure:
        """Decode a result payload (see :func:`parse_result`)."""
        return parse_result(payload)

    def run(self, spec: RunSpec, *, priority: int = 0,
            sanitize: bool = False, timeout: float = 300.0,
            admission_retries: int = 10) -> RunResult | RunFailure:
        """Submit-and-wait convenience with admission backoff."""
        for attempt in range(admission_retries + 1):
            try:
                job = self.submit(spec, priority=priority,
                                  sanitize=sanitize)
                break
            except AdmissionRejected as exc:
                if attempt == admission_retries:
                    raise
                time.sleep(exc.retry_after)
        return self.parse(self.wait(job["id"], timeout=timeout))
