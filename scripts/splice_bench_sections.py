#!/usr/bin/env python3
"""Splice experiment sections out of a benchmark log.

``pytest benchmarks/ --benchmark-only`` prints the same
``render_experiment`` tables the harness CLI does, but without the
``[id: Ns]`` trailers ``build_experiments_md.py`` keys on.  This adapter
extracts the ``== title ==`` sections from a bench log, maps titles back
to experiment ids, and emits them in harness-log format so the two
sources can be concatenated::

    python scripts/splice_bench_sections.py bench_output.txt \
        fig8a fig8b fig8c fig8d >> results.txt
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: First words of each experiment's title → id.
TITLE_TO_ID = {
    "Fig 1:": "fig1",
    "Fig 8(a)": "fig8a",
    "Fig 8(b)": "fig8b",
    "Fig 8(c)": "fig8c",
    "Fig 8(d)": "fig8d",
    "Fig 9(a)": "fig9a",
    "Fig 9(b)": "fig9b",
    "Fig 9(c)": "fig9c",
    "Fig 9(d)": "fig9d",
    "Fig 10(a)": "fig10a",
    "Fig 10(b)": "fig10b",
    "Fig 10(c)": "fig10c",
    "Fig 10(d)": "fig10d",
    "Fig 11(a)": "fig11a",
    "Fig 11(b)": "fig11b",
    "Fig 12(a)": "fig12a",
    "Fig 12(b)": "fig12b",
    "Table V:": "table5",
    "Table VI:": "table6",
    "Table VII:": "table7",
    "Table VIII:": "table8",
    "Sec. V:": "hw_overhead",
    "Extension (Sec. VIII)": "ext_early_release",
    "Ablation: fine-grained": "ext_threshold_frontier",
}

SECTION_RE = re.compile(r"== (?P<title>.*?) ==\n(?P<body>.*?)(?=\n==|\n\.|\Z)",
                        re.S)


def main() -> int:
    if len(sys.argv) < 3:
        print(__doc__)
        return 2
    text = Path(sys.argv[1]).read_text()
    wanted = set(sys.argv[2:])
    emitted = set()
    for m in SECTION_RE.finditer(text):
        title = m.group("title")
        exp_id = next((v for k, v in TITLE_TO_ID.items()
                       if title.startswith(k)), None)
        if exp_id is None or exp_id not in wanted or exp_id in emitted:
            continue
        emitted.add(exp_id)
        body = m.group("body").strip()
        sys.stdout.write(f"== {title} ==\n{body}\n[{exp_id}: 0.0s]\n\n")
    missing = wanted - emitted
    if missing:
        print(f"(not found in log: {sorted(missing)})", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
