"""One function per paper table/figure (see DESIGN.md §5 for the index).

Every experiment returns an :class:`ExperimentResult` whose rows carry
both our measurement and, where available, the paper's reported value —
EXPERIMENTS.md is generated from these.

Defaults are laptop-scale: 4 SM clusters instead of 14 and ``waves=3``
grid waves.  Per-SM resources are untouched, so every occupancy/sharing
decision matches the full Table I machine; pass
``config=GPUConfig()`` for the full-size run.

Simulation-backed experiments build :class:`RunSpec` batches and submit
them to an :class:`Engine` (``engine=`` kwarg, default the process-wide
engine), so runs dedupe, parallelise (``--jobs``/``REPRO_JOBS``) and hit
the content-addressed result cache across figures — the ``Unshared-LRR``
baseline is simulated once no matter how many artifacts reference it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.config import GPUConfig
from repro.core.occupancy import occupancy
from repro.core.overhead import overhead_summary
from repro.core.sharing import SharedResource, SharingSpec, plan_sharing
from repro.harness.engine import Engine, RunSpec, default_engine
from repro.harness.runner import Mode, improvement, shared, unshared
from repro.sim.stats import RunResult
from repro.workloads.apps import APPS
from repro.workloads.suites import SET1, SET2, SET3

__all__ = ["ExperimentResult", "EXPERIMENTS", "run_experiment"]

REG = SharedResource.REGISTERS
SPAD = SharedResource.SCRATCHPAD

#: The t-sweep of Tables V-VIII: sharing% = (1-t)*100.
SHARING_PCTS = (0, 10, 30, 50, 70, 90)


@dataclass
class ExperimentResult:
    """Rows reproducing one paper artifact."""

    id: str
    title: str
    columns: list[str]
    rows: list[dict] = field(default_factory=list)
    notes: str = ""


EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {}


def _experiment(fn: Callable[..., ExperimentResult]):
    EXPERIMENTS[fn.__name__] = fn
    return fn


def run_experiment(exp_id: str, **kwargs) -> ExperimentResult:
    """Run a registered experiment by id (e.g. ``"fig8c"``)."""
    try:
        fn = EXPERIMENTS[exp_id]
    except KeyError:
        raise ValueError(f"unknown experiment {exp_id!r}; "
                         f"available: {sorted(EXPERIMENTS)}") from None
    return fn(**kwargs)


def _cfg(config: GPUConfig | None) -> GPUConfig:
    return config if config is not None else GPUConfig().scaled(num_clusters=4)


def _engine(engine: Engine | None) -> Engine:
    return engine if engine is not None else default_engine()


def _grid_runs(names: Sequence[str], modes: Sequence[Mode],
               cfg: GPUConfig, scale: float, waves: float,
               engine: Engine) -> dict[tuple[str, str], RunResult]:
    """Run the full (app × mode) grid as ONE engine batch.

    Returns results keyed by ``(app_name, mode_label)`` — the shape every
    figure/table builder consumes.
    """
    specs = [RunSpec.create(APPS[name], mode, config=cfg, scale=scale,
                            waves=waves)
             for name in names for mode in modes]
    results = engine.run_batch(specs)
    keys = [(name, mode.label) for name in names for mode in modes]
    return dict(zip(keys, results))


def _pct_t(pct: int) -> float:
    """Sharing percentage → threshold t; 0 % means t = 1 (no sharing)."""
    return 1.0 - pct / 100.0


# -- failure-tolerant cell helpers -------------------------------------
#
# run_batch isolates failing runs into RunFailure slots (unless the
# engine was built with fail_fast=True).  Experiments render those
# slots as annotated ``FAIL:<category>`` cells instead of crashing the
# whole figure; callers can inspect ``engine.failures`` for the full
# diagnostic records.

def _ok(r) -> bool:
    return getattr(r, "ok", True)


def _fail_cell(*rs) -> str:
    """Annotation for a row whose inputs include failed runs."""
    bad = next(r for r in rs if not _ok(r))
    return f"FAIL:{bad.category}"


def _ipc_cell(r):
    return round(r.ipc, 2) if _ok(r) else _fail_cell(r)


def _impr_cell(base, new):
    if _ok(base) and _ok(new):
        return round(improvement(base, new), 2)
    return _fail_cell(base, new)


# ----------------------------------------------------------------------
# Fig. 1 — motivation: occupancy and waste (no simulation needed)
# ----------------------------------------------------------------------

@_experiment
def fig1(config: GPUConfig | None = None, scale: float = 1.0,
         waves: float = 3.0,
         engine: Engine | None = None) -> ExperimentResult:
    """Fig. 1(a-d): resident blocks and resource underutilisation."""
    cfg = _cfg(config)
    res = ExperimentResult(
        "fig1", "Fig 1: resident thread blocks and resource waste",
        ["app", "set", "blocks", "limiter", "reg_waste_pct",
         "smem_waste_pct"])
    for name in SET1 + SET2:
        app = APPS[name]
        occ = occupancy(app.kernel(scale), cfg)
        res.rows.append({
            "app": name,
            "set": app.set_id,
            "blocks": occ.blocks,
            "limiter": occ.limiter,
            "reg_waste_pct": round(occ.register_waste_pct, 2),
            "smem_waste_pct": round(occ.scratchpad_waste_pct, 2),
        })
    res.notes = ("Set-1 rows reproduce Fig 1(a)/(b) (blocks, register "
                 "waste); Set-2 rows reproduce Fig 1(c)/(d).")
    return res


# ----------------------------------------------------------------------
# Fig. 8 — headline results
# ----------------------------------------------------------------------

def _blocks_rows(names: tuple[str, ...], resource: SharedResource,
                 cfg: GPUConfig, scale: float) -> list[dict]:
    rows = []
    for name in names:
        app = APPS[name]
        kernel = app.kernel(scale)
        plan = plan_sharing(kernel, cfg, SharingSpec(resource, 0.1))
        rows.append({
            "app": name,
            "blocks_unshared": plan.baseline,
            "blocks_shared": plan.total,
            "paper_unshared": app.paper.get("blocks_base"),
            "paper_shared": app.paper.get("blocks_shared"),
        })
    return rows


@_experiment
def fig8a(config: GPUConfig | None = None, scale: float = 1.0,
          waves: float = 3.0,
          engine: Engine | None = None) -> ExperimentResult:
    """Fig. 8(a): resident blocks, register sharing vs baseline."""
    cfg = _cfg(config)
    res = ExperimentResult(
        "fig8a", "Fig 8(a): resident thread blocks (register sharing)",
        ["app", "blocks_unshared", "blocks_shared", "paper_unshared",
         "paper_shared"],
        _blocks_rows(SET1, REG, cfg, scale))
    return res


@_experiment
def fig8b(config: GPUConfig | None = None, scale: float = 1.0,
          waves: float = 3.0,
          engine: Engine | None = None) -> ExperimentResult:
    """Fig. 8(b): resident blocks, scratchpad sharing vs baseline."""
    cfg = _cfg(config)
    res = ExperimentResult(
        "fig8b", "Fig 8(b): resident thread blocks (scratchpad sharing)",
        ["app", "blocks_unshared", "blocks_shared", "paper_unshared",
         "paper_shared"],
        _blocks_rows(SET2, SPAD, cfg, scale))
    return res


def _improvement_rows(names: tuple[str, ...], base_mode: Mode,
                      new_mode: Mode, cfg: GPUConfig, scale: float,
                      waves: float, engine: Engine,
                      paper_key: str = "fig8_impr") -> list[dict]:
    runs = _grid_runs(names, [base_mode, new_mode], cfg, scale, waves,
                      engine)
    rows = []
    for name in names:
        base = runs[name, base_mode.label]
        new = runs[name, new_mode.label]
        rows.append({
            "app": name,
            "ipc_base": _ipc_cell(base),
            "ipc_shared": _ipc_cell(new),
            "improvement_pct": _impr_cell(base, new),
            "paper_pct": APPS[name].paper.get(paper_key),
        })
    return rows


@_experiment
def fig8c(config: GPUConfig | None = None, scale: float = 1.0,
          waves: float = 3.0,
          engine: Engine | None = None) -> ExperimentResult:
    """Fig. 8(c): IPC improvement of register sharing (full stack)."""
    cfg = _cfg(config)
    res = ExperimentResult(
        "fig8c", "Fig 8(c): % IPC improvement, register sharing "
        "(Shared-OWF-Unroll-Dyn vs Unshared-LRR)",
        ["app", "ipc_base", "ipc_shared", "improvement_pct", "paper_pct"],
        _improvement_rows(SET1, unshared("lrr"),
                          shared(REG, "owf", unroll=True, dyn=True),
                          cfg, scale, waves, _engine(engine)))
    return res


@_experiment
def fig8d(config: GPUConfig | None = None, scale: float = 1.0,
          waves: float = 3.0,
          engine: Engine | None = None) -> ExperimentResult:
    """Fig. 8(d): IPC improvement of scratchpad sharing (Shared-OWF)."""
    cfg = _cfg(config)
    res = ExperimentResult(
        "fig8d", "Fig 8(d): % IPC improvement, scratchpad sharing "
        "(Shared-OWF vs Unshared-LRR)",
        ["app", "ipc_base", "ipc_shared", "improvement_pct", "paper_pct"],
        _improvement_rows(SET2, unshared("lrr"), shared(SPAD, "owf"),
                          cfg, scale, waves, _engine(engine)))
    return res


# ----------------------------------------------------------------------
# Fig. 9 — optimisation ablations and cycle taxonomy
# ----------------------------------------------------------------------

def _ablation_rows(names: tuple[str, ...], variants: list[Mode],
                   cfg: GPUConfig, scale: float, waves: float,
                   engine: Engine) -> list[dict]:
    base_mode = unshared("lrr")
    runs = _grid_runs(names, [base_mode] + variants, cfg, scale, waves,
                      engine)
    rows = []
    for name in names:
        base = runs[name, base_mode.label]
        row: dict = {"app": name}
        for m in variants:
            row[m.label] = _impr_cell(base, runs[name, m.label])
        rows.append(row)
    return rows


@_experiment
def fig9a(config: GPUConfig | None = None, scale: float = 1.0,
          waves: float = 3.0,
          engine: Engine | None = None) -> ExperimentResult:
    """Fig. 9(a): register-sharing optimisation ablation."""
    cfg = _cfg(config)
    variants = [
        shared(REG, "lrr"),                                 # NoOpt
        shared(REG, "lrr", unroll=True),                    # Unroll
        shared(REG, "lrr", unroll=True, dyn=True),          # Unroll-Dyn
        shared(REG, "owf", unroll=True, dyn=True),          # OWF-Unroll-Dyn
    ]
    return ExperimentResult(
        "fig9a", "Fig 9(a): register sharing ablation (% IPC vs "
        "Unshared-LRR)",
        ["app"] + [m.label for m in variants],
        _ablation_rows(SET1, variants, cfg, scale, waves, _engine(engine)))


@_experiment
def fig9b(config: GPUConfig | None = None, scale: float = 1.0,
          waves: float = 3.0,
          engine: Engine | None = None) -> ExperimentResult:
    """Fig. 9(b): scratchpad sharing with/without OWF."""
    cfg = _cfg(config)
    variants = [shared(SPAD, "lrr"), shared(SPAD, "owf")]
    return ExperimentResult(
        "fig9b", "Fig 9(b): scratchpad sharing ablation (% IPC vs "
        "Unshared-LRR)",
        ["app"] + [m.label for m in variants],
        _ablation_rows(SET2, variants, cfg, scale, waves, _engine(engine)))


def _cycles_rows(names: tuple[str, ...], new_mode: Mode, cfg: GPUConfig,
                 scale: float, waves: float, engine: Engine) -> list[dict]:
    """Fig. 9(c)/(d) cycle taxonomy, mapped onto the paper's buckets.

    The paper's *idle* cycle is "all the available warps are issued, but
    no warp is ready to execute" — warps waiting on in-flight latencies.
    In our taxonomy that is the **stall** bucket (scoreboard/memory
    waits).  The paper's *stall* is a pipeline stall — our *structural*
    hazards (MSHR exhaustion).  The columns below use the paper's names
    with that mapping; raw bucket counts are included for transparency.
    """
    base_mode = unshared("lrr")
    runs = _grid_runs(names, [base_mode, new_mode], cfg, scale, waves,
                      engine)
    rows = []
    for name in names:
        base = runs[name, base_mode.label]
        new = runs[name, new_mode.label]
        if not (_ok(base) and _ok(new)):
            rows.append({"app": name,
                         "idle_decrease_pct": _fail_cell(base, new),
                         "stall_decrease_pct": _fail_cell(base, new)})
            continue

        def dec(b: int, n: int) -> float:
            return 100.0 * (b - n) / b if b else 0.0

        base_struct = sum(s.mshr_stalls for s in base.sm_stats)
        new_struct = sum(s.mshr_stalls for s in new.sm_stats)
        rows.append({
            "app": name,
            "idle_decrease_pct": round(dec(base.stall_cycles,
                                           new.stall_cycles), 2),
            "stall_decrease_pct": round(dec(base_struct, new_struct), 2),
            "base_latency_waits": base.stall_cycles,
            "shared_latency_waits": new.stall_cycles,
            "base_structural": base_struct,
            "shared_structural": new_struct,
        })
    return rows


@_experiment
def fig9c(config: GPUConfig | None = None, scale: float = 1.0,
          waves: float = 3.0,
          engine: Engine | None = None) -> ExperimentResult:
    """Fig. 9(c): % decrease in stall/idle cycles, register sharing."""
    cfg = _cfg(config)
    res = ExperimentResult(
        "fig9c", "Fig 9(c): % decrease in stall and idle cycles "
        "(register sharing)",
        ["app", "idle_decrease_pct", "stall_decrease_pct",
         "base_latency_waits", "shared_latency_waits", "base_structural",
         "shared_structural"],
        _cycles_rows(SET1, shared(REG, "owf", unroll=True, dyn=True),
                     cfg, scale, waves, _engine(engine)))
    res.notes = ("Column mapping: the paper's 'idle' = warps waiting on "
                 "in-flight latencies (our stall bucket); the paper's "
                 "'stall' = pipeline/structural stalls (our MSHR "
                 "rejections).")
    return res


@_experiment
def fig9d(config: GPUConfig | None = None, scale: float = 1.0,
          waves: float = 3.0,
          engine: Engine | None = None) -> ExperimentResult:
    """Fig. 9(d): % decrease in stall/idle cycles, scratchpad sharing."""
    cfg = _cfg(config)
    res = ExperimentResult(
        "fig9d", "Fig 9(d): % decrease in stall and idle cycles "
        "(scratchpad sharing)",
        ["app", "idle_decrease_pct", "stall_decrease_pct",
         "base_latency_waits", "shared_latency_waits", "base_structural",
         "shared_structural"],
        _cycles_rows(SET2, shared(SPAD, "owf"), cfg, scale, waves,
                     _engine(engine)))
    res.notes = ("Column mapping as in fig9c.")
    return res


# ----------------------------------------------------------------------
# Fig. 10 — against stronger baselines (GTO, two-level)
# ----------------------------------------------------------------------

def _vs_baseline(names: tuple[str, ...], base_sched: str, new_mode: Mode,
                 cfg: GPUConfig, scale: float, waves: float,
                 engine: Engine) -> list[dict]:
    base_mode = unshared(base_sched)
    runs = _grid_runs(names, [base_mode, new_mode], cfg, scale, waves,
                      engine)
    rows = []
    for name in names:
        base = runs[name, base_mode.label]
        new = runs[name, new_mode.label]
        rows.append({
            "app": name,
            "ipc_base": _ipc_cell(base),
            "ipc_shared": _ipc_cell(new),
            "improvement_pct": _impr_cell(base, new),
        })
    return rows


@_experiment
def fig10a(config: GPUConfig | None = None, scale: float = 1.0,
           waves: float = 3.0,
           engine: Engine | None = None) -> ExperimentResult:
    """Fig. 10(a): scratchpad sharing vs the GTO baseline."""
    cfg = _cfg(config)
    return ExperimentResult(
        "fig10a", "Fig 10(a): scratchpad sharing vs Unshared-GTO",
        ["app", "ipc_base", "ipc_shared", "improvement_pct"],
        _vs_baseline(SET2, "gto", shared(SPAD, "owf"), cfg, scale, waves,
                     _engine(engine)))


@_experiment
def fig10b(config: GPUConfig | None = None, scale: float = 1.0,
           waves: float = 3.0,
           engine: Engine | None = None) -> ExperimentResult:
    """Fig. 10(b): register sharing vs the GTO baseline."""
    cfg = _cfg(config)
    return ExperimentResult(
        "fig10b", "Fig 10(b): register sharing vs Unshared-GTO",
        ["app", "ipc_base", "ipc_shared", "improvement_pct"],
        _vs_baseline(SET1, "gto", shared(REG, "owf", unroll=True, dyn=True),
                     cfg, scale, waves, _engine(engine)))


@_experiment
def fig10c(config: GPUConfig | None = None, scale: float = 1.0,
           waves: float = 3.0,
           engine: Engine | None = None) -> ExperimentResult:
    """Fig. 10(c): register sharing vs the two-level baseline."""
    cfg = _cfg(config)
    return ExperimentResult(
        "fig10c", "Fig 10(c): register sharing vs Unshared-2LV",
        ["app", "ipc_base", "ipc_shared", "improvement_pct"],
        _vs_baseline(SET1, "two_level",
                     shared(REG, "owf", unroll=True, dyn=True),
                     cfg, scale, waves, _engine(engine)))


@_experiment
def fig10d(config: GPUConfig | None = None, scale: float = 1.0,
           waves: float = 3.0,
           engine: Engine | None = None) -> ExperimentResult:
    """Fig. 10(d): scratchpad sharing vs the two-level baseline."""
    cfg = _cfg(config)
    return ExperimentResult(
        "fig10d", "Fig 10(d): scratchpad sharing vs Unshared-2LV",
        ["app", "ipc_base", "ipc_shared", "improvement_pct"],
        _vs_baseline(SET2, "two_level", shared(SPAD, "owf"), cfg, scale,
                     waves, _engine(engine)))


# ----------------------------------------------------------------------
# Fig. 11 — sharing vs doubling the physical resource
# ----------------------------------------------------------------------

def _doubling_rows(names: tuple[str, ...], big: GPUConfig,
                   new_mode: Mode, ipc_col: str, cfg: GPUConfig,
                   scale: float, waves: float, engine: Engine
                   ) -> list[dict]:
    """Fig. 11 grid: 2x-resource LRR baseline vs sharing, pinned grids."""
    specs = []
    for name in names:
        kernel = APPS[name].kernel(scale)
        grid = max(1, round(waves * cfg.num_sms
                            * occupancy(kernel, cfg).blocks))
        specs.append(RunSpec.create(APPS[name], unshared("lrr"),
                                    config=big, scale=scale,
                                    grid_blocks=grid))
        specs.append(RunSpec.create(APPS[name], new_mode, config=cfg,
                                    scale=scale, grid_blocks=grid))
    results = engine.run_batch(specs)
    rows = []
    for i, name in enumerate(names):
        base, new = results[2 * i], results[2 * i + 1]
        rows.append({
            "app": name,
            ipc_col: _ipc_cell(base),
            "ipc_shared": _ipc_cell(new),
            "shared_wins": (new.ipc >= base.ipc
                            if _ok(base) and _ok(new)
                            else _fail_cell(base, new)),
        })
    return rows


@_experiment
def fig11a(config: GPUConfig | None = None, scale: float = 1.0,
           waves: float = 3.0,
           engine: Engine | None = None) -> ExperimentResult:
    """Fig. 11(a): Unshared-LRR @64K registers vs sharing @32K."""
    from dataclasses import replace
    cfg = _cfg(config)
    big = replace(cfg, registers_per_sm=cfg.registers_per_sm * 2)
    res = ExperimentResult(
        "fig11a", "Fig 11(a): IPC, 2x registers (LRR) vs register sharing",
        ["app", "ipc_2x_regs", "ipc_shared", "shared_wins"],
        _doubling_rows(SET1, big, shared(REG, "owf", unroll=True, dyn=True),
                       "ipc_2x_regs", cfg, scale, waves, _engine(engine)))
    res.notes = ("Paper: sharing at 32K registers beats the 64K-register "
                 "LRR baseline on 5 of 8 applications.")
    return res


@_experiment
def fig11b(config: GPUConfig | None = None, scale: float = 1.0,
           waves: float = 3.0,
           engine: Engine | None = None) -> ExperimentResult:
    """Fig. 11(b): Unshared-LRR @32K scratchpad vs sharing @16K."""
    from dataclasses import replace
    cfg = _cfg(config)
    big = replace(cfg, scratchpad_per_sm=cfg.scratchpad_per_sm * 2)
    return ExperimentResult(
        "fig11b", "Fig 11(b): IPC, 2x scratchpad (LRR) vs scratchpad "
        "sharing",
        ["app", "ipc_2x_smem", "ipc_shared", "shared_wins"],
        _doubling_rows(SET2, big, shared(SPAD, "owf"), "ipc_2x_smem",
                       cfg, scale, waves, _engine(engine)))


# ----------------------------------------------------------------------
# Fig. 12 — Set-3 (no extra blocks possible)
# ----------------------------------------------------------------------

def _set3_rows(modes: list[Mode], cfg: GPUConfig, scale: float,
               waves: float, engine: Engine) -> list[dict]:
    runs = _grid_runs(SET3, modes, cfg, scale, waves, engine)
    rows = []
    for name in SET3:
        row: dict = {"app": name}
        for m in modes:
            row[m.label] = _ipc_cell(runs[name, m.label])
        rows.append(row)
    return rows


@_experiment
def fig12a(config: GPUConfig | None = None, scale: float = 1.0,
           waves: float = 3.0,
           engine: Engine | None = None) -> ExperimentResult:
    """Fig. 12(a): Set-3 IPC across scheduler combos, register sharing."""
    cfg = _cfg(config)
    modes = [
        unshared("lrr"),
        shared(REG, "lrr", unroll=True, dyn=True),
        unshared("gto"),
        shared(REG, "gto", unroll=True, dyn=True),
        shared(REG, "owf", unroll=True, dyn=True),
    ]
    res = ExperimentResult(
        "fig12a", "Fig 12(a): Set-3 IPC (register sharing variants)",
        ["app"] + [m.label for m in modes],
        _set3_rows(modes, cfg, scale, waves, _engine(engine)))
    res.notes = ("Paper: Shared-LRR == Unshared-LRR and Shared-GTO == "
                 "Unshared-GTO exactly (no extra blocks are launched); "
                 "Shared-OWF tracks Unshared-GTO.")
    return res


@_experiment
def fig12b(config: GPUConfig | None = None, scale: float = 1.0,
           waves: float = 3.0,
           engine: Engine | None = None) -> ExperimentResult:
    """Fig. 12(b): Set-3 IPC across scheduler combos, scratchpad."""
    cfg = _cfg(config)
    modes = [
        unshared("lrr"),
        shared(SPAD, "lrr"),
        unshared("gto"),
        shared(SPAD, "gto"),
        shared(SPAD, "owf"),
    ]
    return ExperimentResult(
        "fig12b", "Fig 12(b): Set-3 IPC (scratchpad sharing variants)",
        ["app"] + [m.label for m in modes],
        _set3_rows(modes, cfg, scale, waves, _engine(engine)))


# ----------------------------------------------------------------------
# Tables V-VIII — sharing fraction sweeps
# ----------------------------------------------------------------------

def _sweep(names: tuple[str, ...], resource: SharedResource,
           scheduler: str, unroll: bool, dyn: bool, cfg: GPUConfig,
           scale: float, waves: float, engine: Engine
           ) -> tuple[list[dict], list[dict]]:
    modes = [shared(resource, scheduler, t=_pct_t(pct), unroll=unroll,
                    dyn=dyn) for pct in SHARING_PCTS]
    specs = [RunSpec.create(APPS[name], mode, config=cfg, scale=scale,
                            waves=waves)
             for name in names for mode in modes]
    results = iter(engine.run_batch(specs))
    ipc_rows, blk_rows = [], []
    for name in names:
        ipc_row: dict = {"app": name}
        blk_row: dict = {"app": name}
        for pct in SHARING_PCTS:
            r = next(results)
            ipc_row[f"{pct}%"] = _ipc_cell(r)
            blk_row[f"{pct}%"] = (r.blocks_total if _ok(r)
                                  else _fail_cell(r))
        ipc_rows.append(ipc_row)
        blk_rows.append(blk_row)
    return ipc_rows, blk_rows


@_experiment
def table5(config: GPUConfig | None = None, scale: float = 1.0,
           waves: float = 3.0,
           engine: Engine | None = None) -> ExperimentResult:
    """Table V: IPC vs register-sharing percentage."""
    cfg = _cfg(config)
    ipc_rows, _ = _sweep(SET1, REG, "owf", True, True, cfg, scale, waves,
                         _engine(engine))
    cols = ["app"] + [f"{p}%" for p in SHARING_PCTS]
    return ExperimentResult(
        "table5", "Table V: IPC vs % register sharing", cols, ipc_rows)


@_experiment
def table6(config: GPUConfig | None = None, scale: float = 1.0,
           waves: float = 3.0,
           engine: Engine | None = None) -> ExperimentResult:
    """Table VI: resident blocks vs register-sharing percentage."""
    cfg = _cfg(config)
    res = ExperimentResult(
        "table6", "Table VI: resident blocks vs % register sharing",
        ["app"] + [f"{p}%" for p in SHARING_PCTS])
    for name in SET1:
        app = APPS[name]
        kernel = app.kernel(scale)
        row: dict = {"app": name}
        for pct in SHARING_PCTS:
            plan = plan_sharing(kernel, cfg, SharingSpec(REG, _pct_t(pct)))
            row[f"{pct}%"] = plan.total
        res.rows.append(row)
    return res


@_experiment
def table7(config: GPUConfig | None = None, scale: float = 1.0,
           waves: float = 3.0,
           engine: Engine | None = None) -> ExperimentResult:
    """Table VII: IPC vs scratchpad-sharing percentage."""
    cfg = _cfg(config)
    ipc_rows, _ = _sweep(SET2, SPAD, "owf", False, False, cfg, scale,
                         waves, _engine(engine))
    cols = ["app"] + [f"{p}%" for p in SHARING_PCTS]
    return ExperimentResult(
        "table7", "Table VII: IPC vs % scratchpad sharing", cols, ipc_rows)


@_experiment
def table8(config: GPUConfig | None = None, scale: float = 1.0,
           waves: float = 3.0,
           engine: Engine | None = None) -> ExperimentResult:
    """Table VIII: resident blocks vs scratchpad-sharing percentage."""
    cfg = _cfg(config)
    res = ExperimentResult(
        "table8", "Table VIII: resident blocks vs % scratchpad sharing",
        ["app"] + [f"{p}%" for p in SHARING_PCTS])
    for name in SET2:
        app = APPS[name]
        kernel = app.kernel(scale)
        row: dict = {"app": name}
        for pct in SHARING_PCTS:
            plan = plan_sharing(kernel, cfg, SharingSpec(SPAD, _pct_t(pct)))
            row[f"{pct}%"] = plan.total
        res.rows.append(row)
    return res


# ----------------------------------------------------------------------
# Sec. V — hardware overhead
# ----------------------------------------------------------------------

@_experiment
def hw_overhead(config: GPUConfig | None = None, scale: float = 1.0,
                waves: float = 3.0,
                engine: Engine | None = None) -> ExperimentResult:
    """Sec. V storage formulas evaluated on the Table I machine."""
    cfg = config if config is not None else GPUConfig()
    s = overhead_summary(cfg)
    res = ExperimentResult(
        "hw_overhead", "Sec. V: storage overhead (bits)",
        ["quantity", "value"])
    for k, v in s.items():
        res.rows.append({"quantity": k, "value": v})
    res.notes = ("Register sharing additionally needs one comparator per "
                 "scheduler for the Fig. 3/4 steps (b) and (c).")
    return res
