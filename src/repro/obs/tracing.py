"""Chrome trace-event timeline writer.

Accumulates trace events in the `Trace Event Format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
consumed by Perfetto / ``chrome://tracing`` and exports either the
standard JSON object form (``{"traceEvents": [...]}``) or a compact
JSONL stream (one event per line) for ad-hoc scripting.

Conventions used by the simulator's :class:`~repro.obs.sink.Observer`:

* ``pid`` is the SM id (one "process" lane per SM);
* warp tracks use ``tid`` = the warp's SM-wide ``dynamic_id``;
* auxiliary tracks (locks, memory) get tids assigned from
  :data:`_AUX_TID_BASE` upward via :meth:`Tracer.track`, each with a
  ``thread_name`` metadata record;
* timestamps are simulation *cycles* written into the format's ``ts``
  microsecond field — 1 cycle renders as 1 µs, so "1 ms" in the UI
  reads as 1000 cycles.

The tracer caps the event list at ``max_events`` (metadata records are
exempt) and counts what it dropped; the cap and drop count are surfaced
in ``otherData`` so a truncated trace is never mistaken for a complete
one.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["Tracer"]

#: First tid handed out to non-warp tracks (warp tids are dynamic_ids,
#: which stay far below this for any simulatable grid).
_AUX_TID_BASE = 1_000_000


class Tracer:
    """Event accumulator + Chrome trace-event JSON / JSONL exporter."""

    def __init__(self, *, max_events: int = 1_000_000) -> None:
        self.events: list[dict] = []
        #: Metadata (process_name / thread_name) records, kept apart so
        #: the event cap can never drop track naming.
        self.meta: list[dict] = []
        self.max_events = max_events
        self.dropped = 0
        self._tracks: dict[tuple[int, str], int] = {}
        self._named_pids: set[int] = set()

    # ------------------------------------------------------------------
    # track management
    # ------------------------------------------------------------------
    def process_name(self, pid: int, name: str) -> None:
        """Name a pid lane (idempotent)."""
        if pid in self._named_pids:
            return
        self._named_pids.add(pid)
        self.meta.append({"ph": "M", "name": "process_name", "pid": pid,
                          "tid": 0, "args": {"name": name}})

    def thread_name(self, pid: int, tid: int, name: str) -> None:
        """Name an explicit (pid, tid) track."""
        self.meta.append({"ph": "M", "name": "thread_name", "pid": pid,
                          "tid": tid, "args": {"name": name}})

    def track(self, pid: int, name: str) -> int:
        """Tid of the named auxiliary track, allocated on first use."""
        key = (pid, name)
        tid = self._tracks.get(key)
        if tid is None:
            tid = _AUX_TID_BASE + len(self._tracks)
            self._tracks[key] = tid
            self.thread_name(pid, tid, name)
        return tid

    # ------------------------------------------------------------------
    # event emission
    # ------------------------------------------------------------------
    def _emit(self, ev: dict) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(ev)

    def complete(self, pid: int, tid: int, name: str, cat: str,
                 ts: int, dur: int, args: dict | None = None) -> None:
        """A ``ph="X"`` complete event (an interval on one track)."""
        ev = {"ph": "X", "pid": pid, "tid": tid, "name": name,
              "cat": cat, "ts": ts, "dur": dur}
        if args:
            ev["args"] = args
        self._emit(ev)

    def span(self, pid: int, name: str, cat: str, span_id: int,
             ts_begin: int, ts_end: int,
             args: dict | None = None) -> None:
        """An async ``b``/``e`` pair (overlap-safe, e.g. memory loads)."""
        b = {"ph": "b", "pid": pid, "tid": 0, "name": name, "cat": cat,
             "id": span_id, "ts": ts_begin}
        e = {"ph": "e", "pid": pid, "tid": 0, "name": name, "cat": cat,
             "id": span_id, "ts": ts_end}
        if args:
            b["args"] = args
        self._emit(b)
        self._emit(e)

    def instant(self, pid: int, tid: int, name: str, cat: str,
                ts: int, args: dict | None = None) -> None:
        """A ``ph="i"`` instant event (thread-scoped)."""
        ev = {"ph": "i", "pid": pid, "tid": tid, "name": name,
              "cat": cat, "ts": ts, "s": "t"}
        if args:
            ev["args"] = args
        self._emit(ev)

    def counter(self, pid: int, name: str, ts: int,
                values: dict[str, float]) -> None:
        """A ``ph="C"`` counter sample (rendered as a chart lane)."""
        self._emit({"ph": "C", "pid": pid, "tid": 0, "name": name,
                    "cat": "counter", "ts": ts, "args": dict(values)})

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_chrome(self, other: dict | None = None) -> dict:
        """The standard JSON-object trace container."""
        data = {"truncated": self.dropped > 0,
                "eventsDropped": self.dropped,
                "maxEvents": self.max_events,
                "clockDomain": "simulation cycles (1 cycle = 1us)"}
        if other:
            data.update(other)
        return {"traceEvents": self.meta + self.events,
                "displayTimeUnit": "ms",
                "otherData": data}

    def write(self, path: str | Path, other: dict | None = None) -> Path:
        """Write the trace; ``*.jsonl`` selects the line-stream form.

        Chrome/Perfetto load the ``.json`` object form directly; the
        JSONL form is one event object per line for ``jq``/pandas-style
        post-processing (see docs/observability.md).
        """
        path = Path(path)
        if path.suffix == ".jsonl":
            with path.open("w") as f:
                for ev in self.meta:
                    f.write(json.dumps(ev, separators=(",", ":")) + "\n")
                for ev in self.events:
                    f.write(json.dumps(ev, separators=(",", ":")) + "\n")
        else:
            with path.open("w") as f:
                json.dump(self.to_chrome(other), f,
                          separators=(",", ":"))
        return path
