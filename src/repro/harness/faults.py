"""Deterministic fault injection for the execution engine (chaos harness).

Resilience claims that aren't exercised are wishes.  This module lets
tests and the CI chaos job inject the exact failure modes the engine's
resilience layer must absorb, deterministically and per-spec:

* **crash** — the worker process dies mid-run (``os._exit``) so the
  pool observes a real ``BrokenProcessPool``; in-process execution
  raises :class:`InjectedCrash` instead (same ``crash`` category).
* **hang** — the run sleeps ``seconds`` before simulating, tripping
  the engine's wall-clock watchdog (pool) or post-hoc timeout check
  (in-process).
* **error** — an :class:`InjectedError` (plain exception path).
* **deadlock** — raises :class:`~repro.sim.gpu.SimulationDeadlock`
  with an "injected" report, proving those exceptions serialize into
  ``RunFailure`` records across the process pool.

Faults are keyed by ``RunSpec.digest()`` and gated on the attempt
number, so *transient* faults (``until_attempt=1``) crash the first
attempt and let the retry succeed — exactly the scenario bounded
retries exist for.  The injector is a plain picklable mapping, shipped
to workers inside the engine's task tuple; no globals, no env vars.

Cache corruption is a parent-side fault: :func:`corrupt_cache_entry`
damages an on-disk result-cache entry in one of three ways so tests
can prove the quarantine path re-simulates instead of re-parsing the
bad bytes forever.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from repro.sim.gpu import SimulationDeadlock

if TYPE_CHECKING:  # pragma: no cover
    from repro.harness.engine import ResultCache

__all__ = ["FaultSpec", "FaultInjector", "InjectedCrash", "InjectedError",
           "corrupt_cache_entry", "FAULT_KINDS", "CRASH_EXIT_CODE"]

#: Supported fault kinds.
FAULT_KINDS = ("crash", "hang", "error", "deadlock")

#: Exit status of a hard-crashed worker (distinctive in pool logs).
CRASH_EXIT_CODE = 70

#: ``until_attempt`` default: effectively "always".
ALWAYS = 1 << 30


class InjectedCrash(RuntimeError):
    """Soft (in-process) stand-in for a worker process death."""


class InjectedError(RuntimeError):
    """Generic injected exception (the plain ``error`` category)."""


@dataclass(frozen=True)
class FaultSpec:
    """One fault: what to inject and for how many attempts.

    ``until_attempt=1`` makes the fault transient (fires only on the
    first attempt); the default fires on every attempt, which is how a
    deterministic failure exhausts the retry budget.
    """

    kind: str
    until_attempt: int = ALWAYS
    seconds: float = 30.0      #: hang duration (``kind="hang"`` only)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"one of {FAULT_KINDS}")
        if self.until_attempt < 1:
            raise ValueError("until_attempt must be >= 1")


class FaultInjector:
    """Deterministic digest-keyed fault plan, picklable across the pool.

    ``hard`` faults (worker processes) crash with ``os._exit`` so the
    parent sees genuine process death; soft mode (in-process engine
    path) raises :class:`InjectedCrash` instead so the parent survives.
    """

    def __init__(self, plan: Mapping[str, FaultSpec] | None = None) -> None:
        self.plan: dict[str, FaultSpec] = dict(plan or {})

    # ------------------------------------------------------------------
    def add(self, digest: str, kind: str, *, until_attempt: int = ALWAYS,
            seconds: float = 30.0) -> "FaultInjector":
        """Register a fault for one spec digest (chainable)."""
        self.plan[digest] = FaultSpec(kind, until_attempt, seconds)
        return self

    @classmethod
    def seeded(cls, seed: int, digests: list[str], *, rate: float = 0.2,
               kinds: tuple[str, ...] = ("crash", "error"),
               until_attempt: int = 1,
               seconds: float = 30.0) -> "FaultInjector":
        """Pseudo-randomly fault ~``rate`` of ``digests``, seeded.

        Selection hashes ``(seed, digest)`` so the same seed over the
        same batch always injects the same faults — chaos runs are
        reproducible bug reports, not flakes.
        """
        inj = cls()
        for d in digests:
            h = hashlib.sha256(f"{seed}:{d}".encode()).digest()
            if h[0] / 256.0 < rate:
                kind = kinds[h[1] % len(kinds)]
                inj.add(d, kind, until_attempt=until_attempt,
                        seconds=seconds)
        return inj

    # ------------------------------------------------------------------
    def fire(self, digest: str, attempt: int, *, hard: bool) -> None:
        """Inject the planned fault for ``digest`` (no-op if none).

        Called by the engine's worker entry point before the simulation
        starts.  ``hang`` returns after sleeping (the run then proceeds
        normally — the watchdog decides its fate); the other kinds do
        not return.
        """
        spec = self.plan.get(digest)
        if spec is None or attempt > spec.until_attempt:
            return
        if spec.kind == "crash":
            if hard:
                # A real worker death: skips atexit/finally, exactly like
                # an OOM kill.  The pool surfaces BrokenProcessPool.
                os._exit(CRASH_EXIT_CODE)
            raise InjectedCrash(
                f"injected worker crash (attempt {attempt})")
        if spec.kind == "hang":
            time.sleep(spec.seconds)
            return
        if spec.kind == "error":
            raise InjectedError(
                f"injected failure (attempt {attempt})")
        raise SimulationDeadlock(
            f"injected deadlock (attempt {attempt}): no ready warps, "
            f"no events [fault injection]")


# ----------------------------------------------------------------------
def corrupt_cache_entry(cache: "ResultCache", digest: str,
                        mode: str = "garbage") -> None:
    """Damage the on-disk cache entry for ``digest``.

    Modes: ``garbage`` (overwrite with non-JSON bytes), ``truncate``
    (cut the entry mid-payload), ``missing-key`` (valid JSON, wrong
    shape).  ``truncate`` and ``missing-key`` require an existing
    entry; ``garbage`` creates one if absent.
    """
    if mode not in ("garbage", "truncate", "missing-key"):
        raise ValueError(f"unknown corruption mode {mode!r}")
    path = cache.path(digest)
    if mode == "garbage":
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{corrupt \x00 not json")
    elif mode == "truncate":
        path.write_text(path.read_text()[: max(1, path.stat().st_size // 2)])
    else:  # missing-key: valid JSON, wrong payload shape
        path.write_text('{"schema": %d, "result": {"oops": 1}}'
                        % _schema())


def _schema() -> int:
    from repro.harness.engine import CACHE_SCHEMA
    return CACHE_SCHEMA
