"""Reference SM core: the original scan-based implementation.

:class:`ReferenceSMCore` preserves the pre-optimisation hot path
verbatim — per-candidate ``issuable`` predicate calls on every scheduler
pick, ``op_group`` dictionary lookups, full re-coalescing and admission
scans on every MSHR retry, and O(warps) ``classify``/``has_ready``
scans.  It exists purely as the differential-testing oracle for the fast
core (``REPRO_REFERENCE_CORE=1`` or ``GPU(core="reference")``): both
cores must produce bit-identical :class:`RunResult`\\ s on every
configuration, which ``tests/test_core_equivalence.py`` asserts against
committed golden fingerprints.

Do not optimise this module.  Its value is that it stays dumb.
"""

from __future__ import annotations

from typing import Callable

from repro.core.sharing import SharedResource
from repro.isa.opcodes import Op
from repro.mem.request import coalesce_lines
from repro.sched.base import WarpScheduler
from repro.sim.sm import (_BANK_CONFLICT, _DYN_COOLDOWN, _GROUP, _MSHR_RETRY,
                          _STALL_STATES, SMCore)
from repro.sim.warp import REG_PENDING, WarpContext, WarpState

__all__ = ["ReferenceSMCore"]


class ReferenceSMCore(SMCore):
    """SM core with the original (unoptimised) issue and scan logic."""

    def _set_state(self, warp: WarpContext, state: WarpState) -> None:
        """Original transition: maintain the sorted ready lists.

        The reference ``pick`` implementations and :meth:`has_ready`
        consume ``sched.ready``, which the fast core no longer updates
        (it keeps only the ``n_ready`` counter); the per-category
        counters are likewise unused on this core.
        """
        old = warp.state
        if old is state:
            return
        if old is WarpState.READY:
            warp.sched.ready.discard(warp)
        elif state is WarpState.READY:
            warp.sched.ready.add(warp)
        warp.state = state
        warp.wake_token += 1
        if self._obs_on:
            self.obs.warp_state(self.sm_id, warp, state, self.now)

    def _timed_wake(self, warp: WarpContext, at: int,
                    expected: WarpState) -> None:
        """Original closure-based timed wake (re-derives readiness)."""
        token = warp.wake_token

        def _fire(cycle: int) -> None:
            if warp.wake_token == token and warp.state is expected:
                self.now = cycle
                self._update_readiness(warp, cycle)

        self.events.push(at, _fire)

    def _update_readiness(self, warp: WarpContext, cycle: int) -> None:
        """Re-derive a warp's scoreboard wait state for its next instr."""
        e = warp.earliest_issue()
        if e >= REG_PENDING:
            self._set_state(warp, WarpState.BLOCK_MEM)
        elif e <= cycle + 1:
            self._set_state(warp, WarpState.READY)
        else:
            self._set_state(warp, WarpState.BLOCK_SB)
            self._timed_wake(warp, e, WarpState.BLOCK_SB)

    def has_ready(self) -> bool:
        """True if any scheduler has a READY warp (scheduler scan)."""
        return any(len(s.ready) for s in self.schedulers)

    def _issuable(self, warp: WarpContext) -> bool:
        g = _GROUP[warp.current_instr.op]
        if g == "global" or g == "shared":
            return self._mem_port_free
        return True

    def step(self, cycle: int) -> int:
        """Run one SM cycle; returns instructions issued (0..2)."""
        self.now = cycle
        self._mem_port_free = True
        issued = 0
        for sched in self.schedulers:
            while True:
                w = sched.pick(cycle, self._issuable)
                if w is None:
                    break
                if self._try_issue(w, cycle, sched):
                    issued += 1
                    break
                # otherwise the warp blocked and left the ready list;
                # give the scheduler another chance this cycle.
        return issued

    def classify(self) -> str:
        """Classify a no-issue cycle by scanning every resident warp."""
        saw_warp = False
        for w in self.warps:
            st = w.state
            if st in _STALL_STATES:
                return "stall"
            if st is not WarpState.FINISHED:
                saw_warp = True
        return "idle" if saw_warp else "empty"

    def _try_issue(self, warp: WarpContext, cycle: int,
                   sched: WarpScheduler) -> bool:
        ins = warp.current_instr
        grp = _GROUP[ins.op]
        block = warp.block
        pair = block.pair
        stats = self.stats

        # --- Dyn gate (Sec. IV-C): non-owner global memory only ---
        if (self.dyn is not None and grp == "global" and pair is not None
                and warp.owf_class() == 2):
            if (not self.dyn.allow(self.sm_id)
                    and not self._dyn_critical(warp)):
                stats.dyn_refusals += 1
                if self._obs_on:
                    self.obs.dyn_refusal(self.sm_id, warp, cycle)
                self._set_state(warp, WarpState.BLOCK_DYN)
                self._dyn_blocked.append(warp)
                self._timed_wake(warp, cycle + _DYN_COOLDOWN,
                                 WarpState.BLOCK_DYN)
                return False

        # --- register sharing access check (Fig. 3) ---
        if (self.sharing is not None
                and self.sharing.resource is SharedResource.REGISTERS
                and pair is not None):
            pr = self.sharing.private_regs
            if any(r >= pr for r in ins.regs):
                g = pair.reg_group
                assert g is not None
                if not g.holds(block.side, warp.slot):
                    if g.try_acquire(block.side, warp.slot):
                        stats.lock_acquires += 1
                        pair.note_acquired(block.side)
                    else:
                        stats.lock_waits += 1
                        self._set_state(warp, WarpState.BLOCK_LOCK)
                        self._lock_blocked.append(warp)
                        return False

        # --- scratchpad sharing access check (Fig. 4) ---
        smem_off = 0
        if grp == "shared":
            m = ins.mem
            assert m is not None
            smem_off = (m.offset if m.wrap == 0
                        else (m.offset + warp.iter_idx * m.stride) % m.wrap)
            if (self.sharing is not None
                    and self.sharing.resource is SharedResource.SCRATCHPAD
                    and pair is not None
                    and smem_off >= self.sharing.private_smem):
                g = pair.spad_group
                assert g is not None
                if not g.holds(block.side):
                    if g.try_acquire(block.side):
                        stats.lock_acquires += 1
                        pair.note_acquired(block.side)
                    else:
                        stats.lock_waits += 1
                        self._set_state(warp, WarpState.BLOCK_LOCK)
                        self._lock_blocked.append(warp)
                        return False

        # --- execute side effects ---
        if grp == "global":
            m = ins.mem
            assert m is not None
            lines = coalesce_lines(
                m, self.amap, block_linear=block.linear_id,
                warp_in_block=warp.slot, warps_per_block=block.n_warps,
                iter_idx=warp.iter_idx, line_size=self.cfg.line_size,
                seed=self.kernel.seed)
            if ins.op is Op.LDG:
                dst = ins.dst
                on_done: Callable[[int], None] = (
                    lambda c, w=warp, d=dst: self._on_load_done(w, d, c))
                if not self.hierarchy.try_load(self.sm_id, lines, cycle,
                                               on_done):
                    stats.mshr_stalls += 1
                    self._set_state(warp, WarpState.BLOCK_RETRY)
                    self._timed_wake(warp, cycle + _MSHR_RETRY,
                                     WarpState.BLOCK_RETRY)
                    return False
                for r in dst:
                    warp.reg_ready[r] = REG_PENDING
                warp.outstanding_loads += 1
            else:
                self.hierarchy.store(self.sm_id, lines, cycle)
            self._mem_port_free = False
            stats.mem_instructions += 1
        elif grp == "shared":
            m = ins.mem
            assert m is not None
            # An n-way bank conflict serialises into n bank accesses.
            lat = self.lat.scratchpad + (m.conflicts - 1) * _BANK_CONFLICT
            for r in ins.dst:
                warp.reg_ready[r] = cycle + lat
            self._mem_port_free = False
            stats.mem_instructions += 1
        elif grp == "alu":
            for r in ins.dst:
                warp.reg_ready[r] = cycle + self.lat.alu
        elif grp == "sfu":
            for r in ins.dst:
                warp.reg_ready[r] = cycle + self.lat.sfu

        # --- retire bookkeeping ---
        warp.issued += 1
        stats.instructions += 1
        if self._obs_on:
            self.obs.issued(self.sm_id, sched.sched_id, warp, cycle)
        cls = warp.owf_class()
        if cls == 0:
            stats.issued_owner += 1
        elif cls == 1:
            stats.issued_unshared += 1
        else:
            stats.issued_nonowner += 1
        sched.on_issued(warp)

        if grp == "exit":
            self._finish_warp(warp, cycle)
            return True

        warp.advance()
        if self.liveness is not None:
            self._maybe_early_release(warp)

        if grp == "bar":
            block.bar_count += 1
            if block.bar_count == block.n_warps:
                block.bar_count = 0
                stats.barriers += 1
                for w2 in block.warps:
                    if w2.state is WarpState.BLOCK_BAR:
                        self._update_readiness(w2, cycle)
                self._update_readiness(warp, cycle)
            else:
                self._set_state(warp, WarpState.BLOCK_BAR)
            return True

        self._update_readiness(warp, cycle)
        return True
