#!/usr/bin/env python3
"""Register-sharing deep dive on one application.

Walks the paper's full optimisation stack (Sec. IV) on a register-limited
kernel and shows where each piece of the speedup comes from:

1. ``Shared-LRR-NoOpt``        — extra blocks alone
2. ``Shared-LRR-Unroll``       — + first-use register renumbering
3. ``Shared-LRR-Unroll-Dyn``   — + non-owner memory throttling
4. ``Shared-OWF-Unroll-Dyn``   — + owner-warp-first scheduling

Also sweeps the sharing threshold t (Tables V/VI).

Run:  python examples/register_sharing_study.py [app]
"""

import sys

from repro import (APPS, GPUConfig, SET1, SharedResource, improvement,
                   plan_sharing, reorder_registers, run, shared, unshared)
from repro.core.sharing import SharingSpec
from repro.core.unroll import first_shared_use_distance

REG = SharedResource.REGISTERS

app_name = sys.argv[1] if len(sys.argv) > 1 else "hotspot"
if app_name not in SET1:
    sys.exit(f"pick a register-limited app: {', '.join(SET1)}")
app = APPS[app_name]
cfg = GPUConfig().scaled(num_clusters=4)

# --- what the unroll pass buys (Sec. IV-B) ------------------------------
kernel = app.kernel()
priv = int(kernel.regs_per_thread * 0.1)
before = first_shared_use_distance(kernel, priv)
after = first_shared_use_distance(reorder_registers(kernel), priv)
print(f"{app_name}: non-owner warps execute {before} instruction(s) "
      f"before the first shared-register access;")
print(f"after unroll-and-reorder: {after} instruction(s)\n")

# --- the ablation (Fig. 9a) ---------------------------------------------
base = run(app, unshared("lrr"), config=cfg)
print(f"baseline Unshared-LRR: IPC {base.ipc:.2f}")
for mode in (shared(REG, "lrr"),
             shared(REG, "lrr", unroll=True),
             shared(REG, "lrr", unroll=True, dyn=True),
             shared(REG, "owf", unroll=True, dyn=True)):
    r = run(app, mode, config=cfg)
    print(f"  {mode.label:26s} IPC {r.ipc:7.2f}  "
          f"({improvement(base, r):+6.2f}%)  "
          f"lock waits {sum(s.lock_waits for s in r.sm_stats):6d}  "
          f"dyn refusals {sum(s.dyn_refusals for s in r.sm_stats):6d}")

# --- threshold sweep (Tables V/VI) ---------------------------------------
print(f"\nsharing-fraction sweep for {app_name} "
      f"(paper Tables V/VI; 0% == baseline occupancy):")
print(f"{'sharing':>8s} {'t':>5s} {'blocks/SM':>10s} {'IPC':>8s} "
      f"{'vs 0%':>8s}")
ipc0 = None
for pct in (0, 10, 30, 50, 70, 90):
    t = 1.0 - pct / 100.0
    plan = plan_sharing(kernel, cfg, SharingSpec(REG, t))
    r = run(app, shared(REG, "owf", t=t, unroll=True, dyn=True), config=cfg)
    if ipc0 is None:
        ipc0 = r.ipc
    print(f"{pct:7d}% {t:5.1f} {plan.total:10d} {r.ipc:8.2f} "
          f"{(r.ipc / ipc0 - 1) * 100:+7.2f}%")
