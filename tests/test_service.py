"""Simulation service end to end: in-thread server + stdlib client.

Covers the ISSUE acceptance scenarios: digest equality with a direct
``run_batch``, restart mid-queue, graceful drain losing zero jobs,
client disconnect mid-long-poll, admission-control rejection under
synthetic load (8 concurrent clients), and chaos runs with the PR 2
fault injector mounted behind the service.
"""

import json
import socket
import threading
import time
from contextlib import contextmanager

import pytest

from repro.config import GPUConfig
from repro.harness.engine import Engine, RunSpec
from repro.harness.faults import FaultInjector
from repro.harness.runner import unshared
from repro.service import (AdmissionRejected, JobPending, JobStore,
                           ServiceClient, ServiceConfig, ServiceError,
                           ServiceServer, parse_result)
from repro.sim.stats import RunResult
from repro.workloads.apps import APPS

CFG = GPUConfig().scaled(num_clusters=1)
FAST = dict(config=CFG, scale=0.15, waves=1.0)


def spec(app="gaussian", mode=None, **kw):
    return RunSpec.create(APPS[app], mode or unshared("lrr"),
                          **{**FAST, **kw})


def distinct_specs(n):
    """n cheap specs with distinct digests (max_cycles is a free knob:
    it only caps runaway sims, so these all cost the same to run)."""
    return [spec(max_cycles=10_000_000 + i) for i in range(n)]


@contextmanager
def service(tmp_path, *, engine_opts=None, **overrides):
    overrides.setdefault("port", 0)
    overrides.setdefault("db_path", tmp_path / "jobs.sqlite")
    overrides.setdefault("batch_wait", 0.01)
    overrides.setdefault("poll_interval", 0.02)
    cfg = ServiceConfig(**overrides)
    server = ServiceServer(
        cfg, engine_opts=engine_opts or {"jobs": 1, "cache": False})
    server.start_in_thread()
    client = ServiceClient(port=server.port, client_id="test",
                           timeout=10.0)
    try:
        yield server, client
    finally:
        if server._thread is not None and server._thread.is_alive():
            server.stop()


def wait_done(client, job_ids, timeout=30.0):
    return {jid: client.wait(jid, timeout=timeout) for jid in job_ids}


class TestRoundTrip:
    def test_digest_identical_to_direct_run(self, tmp_path):
        s = spec()
        direct = Engine(jobs=1, cache=False).run_one(s)
        with service(tmp_path) as (server, client):
            job = client.submit(s)
            assert job["state"] == "queued"
            payload = client.wait(job["id"], timeout=30)
        assert payload["ok"] is True
        assert payload["digest"] == s.digest()
        assert parse_result(payload) == direct
        assert payload["cached"] is False
        assert payload["summary"]["cycles"] == direct.cycles

    def test_run_convenience(self, tmp_path):
        s = spec(app="hotspot")
        with service(tmp_path) as (_server, client):
            res = client.run(s, timeout=30)
        assert isinstance(res, RunResult)
        assert res == Engine(jobs=1, cache=False).run_one(s)

    def test_in_batch_dedup_shares_one_simulation(self, tmp_path):
        s = spec()
        with service(tmp_path, start_paused=True) as (server, client):
            ids = [client.submit(s)["id"] for _ in range(3)]
            server.paused = False
            payloads = wait_done(client, ids)
            engine = server._engines[False]
        assert engine.stats.sims == 1
        results = {jid: parse_result(p) for jid, p in payloads.items()}
        assert len(set(map(id, results.values()))) == 3  # distinct objects
        assert len({r.cycles for r in results.values()}) == 1

    def test_status_and_listing(self, tmp_path):
        with service(tmp_path) as (_server, client):
            job = client.submit(spec())
            client.wait(job["id"], timeout=30)
            got = client.status(job["id"])
            assert got["state"] == "done"
            assert got["app"] == "gaussian"
            listed = client.jobs(state="done", client="test")
            assert job["id"] in {j["id"] for j in listed}

    def test_result_endpoint_and_pending(self, tmp_path):
        with service(tmp_path, start_paused=True) as (server, client):
            job = client.submit(spec())
            with pytest.raises(JobPending):
                client.result(job["id"])
            server.paused = False
            client.wait(job["id"], timeout=30)
            payload = client.result(job["id"])
            assert payload["ok"] is True


class TestEndpoints:
    def test_healthz(self, tmp_path):
        with service(tmp_path) as (_server, client):
            client.run(spec(), timeout=30)
            health = client.healthz()
        assert health["status"] == "ok"
        assert health["jobs"]["done"] == 1
        assert health["engines"]["default"]["sims"] == 1
        assert health["recovered_on_start"] == 0

    def test_metrics_prometheus_text(self, tmp_path):
        with service(tmp_path) as (_server, client):
            client.run(spec(), timeout=30)
            text = client.metrics_text()
        assert "# TYPE service_jobs_submitted_total counter" in text
        assert "service_jobs_submitted_total 1" in text
        assert 'service_jobs_finished_total{outcome="done"} 1' in text
        assert 'service_jobs{state="done"} 1' in text
        assert "service_batch_jobs_bucket" in text
        assert "engine_sims 1" in text

    def test_unknown_job_404(self, tmp_path):
        with service(tmp_path) as (_server, client):
            with pytest.raises(ServiceError) as exc:
                client.status("deadbeef")
            assert exc.value.status == 404

    def test_unknown_route_404_and_bad_method_405(self, tmp_path):
        with service(tmp_path) as (_server, client):
            assert client._request("GET", "/nope")[0] == 404
            assert client._request("DELETE", "/jobs")[0] == 405

    def test_malformed_body_400(self, tmp_path):
        with service(tmp_path) as (_server, client):
            status, payload = client._request("POST", "/jobs",
                                              {"not-spec": 1})
            assert status == 400
            assert "spec" in payload["error"]

    def test_adhoc_kernel_spec_rejected(self, tmp_path):
        bogus = dict(spec().to_dict(), app=None)
        with service(tmp_path) as (_server, client):
            status, payload = client._request("POST", "/jobs",
                                              {"spec": bogus})
            assert status == 400
            assert "registry-app" in payload["error"]

    def test_trace_spec_rejected(self, tmp_path):
        traced = dict(spec().to_dict(), trace="out.trace")
        with service(tmp_path) as (_server, client):
            status, payload = client._request("POST", "/jobs",
                                              {"spec": traced})
            assert status == 400
            assert "trace" in payload["error"]

    def test_cancel_queued_then_conflict(self, tmp_path):
        with service(tmp_path, start_paused=True) as (server, client):
            job = client.submit(spec())
            cancelled = client.cancel(job["id"])
            assert cancelled["job"]["state"] == "cancelled"
            with pytest.raises(ServiceError) as exc:
                client.cancel(job["id"])
            assert exc.value.status == 409
            # /result on a cancelled job is terminal but not parseable.
            payload = client.result(job["id"])
            assert payload["cancelled"] is True
            with pytest.raises(ValueError):
                parse_result(payload)

    def test_wait_times_out_while_paused(self, tmp_path):
        with service(tmp_path, start_paused=True,
                     wait_poll=0.01) as (_server, client):
            job = client.submit(spec())
            payload = client._checked(
                "GET", f"/jobs/{job['id']}/wait?timeout=0.05")
            assert payload["timed_out"] is True
            assert payload["payload"] is None
            with pytest.raises(TimeoutError):
                client.wait(job["id"], timeout=0.2)
            client.cancel(job["id"])


class TestAdmissionControl:
    def test_queue_depth_bound_sheds_load(self, tmp_path):
        with service(tmp_path, start_paused=True,
                     max_queue_depth=2) as (_server, client):
            specs = distinct_specs(3)
            client.submit(specs[0])
            client.submit(specs[1])
            with pytest.raises(AdmissionRejected) as exc:
                client.submit(specs[2])
            assert exc.value.reason == "queue_depth"
            assert exc.value.retry_after > 0
            text = client.metrics_text()
            assert ('service_jobs_rejected_total{reason="queue_depth"} 1'
                    in text)

    def test_queued_bytes_bound(self, tmp_path):
        with service(tmp_path, start_paused=True,
                     max_queued_bytes=10) as (_server, client):
            sp = distinct_specs(2)
            client.submit(sp[0])  # first one exceeds the 10-byte bound
            with pytest.raises(AdmissionRejected) as exc:
                client.submit(sp[1])
            assert exc.value.reason == "queued_bytes"

    def test_per_client_rate_limit(self, tmp_path):
        with service(tmp_path, start_paused=True, rate_limit=0.001,
                     rate_burst=1) as (_server, client):
            sp = distinct_specs(2)
            client.submit(sp[0])
            with pytest.raises(AdmissionRejected) as exc:
                client.submit(sp[1])
            assert exc.value.reason == "rate"
            # A different client has its own bucket.
            other = ServiceClient(port=client.port, client_id="other")
            other.submit(sp[1])

    def test_oversized_body_413(self, tmp_path):
        """The body cap rejects on the declared Content-Length, before
        reading (or even receiving) a single payload byte."""
        with service(tmp_path) as (server, _client):
            sock = socket.create_connection(("127.0.0.1", server.port))
            sock.sendall(b"POST /jobs HTTP/1.1\r\nHost: x\r\n"
                         b"Content-Length: 2097152\r\n\r\n")
            response = b""
            while chunk := sock.recv(4096):
                response += chunk
            sock.close()
            assert b"413" in response.split(b"\r\n", 1)[0]

    def test_eight_concurrent_clients_with_rejections(self, tmp_path):
        """ISSUE acceptance: >=8 simultaneous clients submitting batches
        all complete correctly while at least one submission is shed by
        admission control (deterministic: the queue bound is smaller
        than the paused-phase submission count)."""
        n_clients, per_client = 8, 2
        specs = distinct_specs(n_clients * per_client)
        rejections = []
        outcomes: dict[str, dict] = {}
        errors = []
        with service(tmp_path, start_paused=True, max_queue_depth=4,
                     batch_max=4) as (server, client):

            def worker(ci):
                me = ServiceClient(port=server.port,
                                   client_id=f"client-{ci}", timeout=10.0)
                for k in range(per_client):
                    s = specs[ci * per_client + k]
                    while True:
                        try:
                            job = me.submit(s)
                            break
                        except AdmissionRejected as exc:
                            rejections.append(exc.reason)
                            time.sleep(0.02)
                    payload = me.wait(job["id"], timeout=60)
                    outcomes[s.digest()] = payload

            threads = [threading.Thread(target=worker, args=(ci,),
                                        daemon=True)
                       for ci in range(n_clients)]
            for t in threads:
                t.start()
            # Paused + 16 submissions racing a queue bound of 4: the
            # shed is guaranteed before the scheduler drains anything.
            deadline = time.monotonic() + 20
            while not rejections and time.monotonic() < deadline:
                time.sleep(0.01)
            server.paused = False
            for t in threads:
                t.join(60)
                assert not t.is_alive(), "client thread hung"
        if errors:
            raise errors[0]
        assert len(rejections) >= 1
        assert len(outcomes) == len(specs)
        for s in specs:
            payload = outcomes[s.digest()]
            assert payload["ok"] is True
            assert payload["digest"] == s.digest()
            assert isinstance(parse_result(payload), RunResult)


class TestDurability:
    def test_restart_mid_queue_resumes_jobs(self, tmp_path):
        """Jobs queued when the server dies run after a restart."""
        db = tmp_path / "jobs.sqlite"
        specs = distinct_specs(4)
        with service(tmp_path, db_path=db,
                     start_paused=True) as (_server, client):
            ids = [client.submit(s)["id"] for s in specs]
        # Server is gone; the queue is not.
        with service(tmp_path, db_path=db) as (_server2, client2):
            payloads = wait_done(client2, ids)
        for s, jid in zip(specs, ids):
            assert payloads[jid]["digest"] == s.digest()
            assert isinstance(parse_result(payloads[jid]), RunResult)

    def test_hard_kill_recovery_requeues_running(self, tmp_path):
        """A job stranded in 'running' by a hard kill is requeued on
        the next start (store.recover wired into server init)."""
        db = tmp_path / "jobs.sqlite"
        st = JobStore(db)
        s = spec()
        st.submit(s.to_dict(), s.digest())
        st.claim(1)  # simulate dying mid-batch, nothing persisted
        st.close()
        with service(tmp_path, db_path=db) as (server, client):
            assert server.recovered == 1
            jobs = client.jobs(state="done")
            deadline = time.monotonic() + 30
            while not jobs and time.monotonic() < deadline:
                time.sleep(0.05)
                jobs = client.jobs(state="done")
            assert jobs and jobs[0]["digest"] == s.digest()

    def test_graceful_drain_loses_none_of_20_jobs(self, tmp_path):
        """ISSUE acceptance: kill -TERM with a 20-job queue loses zero
        jobs — finished results persisted, unstarted requeued.  A hang
        fault on the first spec holds the batch open so the drain
        provably lands mid-batch."""
        db = tmp_path / "jobs.sqlite"
        specs = distinct_specs(20)
        inj = FaultInjector().add(specs[0].digest(), "hang", seconds=0.6)
        with service(tmp_path, db_path=db, batch_max=16, batch_wait=0,
                     engine_opts={"jobs": 1, "cache": False,
                                  "faults": inj}) as (server, client):
            ids = {s.digest(): client.submit(s)["id"] for s in specs}
            deadline = time.monotonic() + 10
            while not server._batch and time.monotonic() < deadline:
                time.sleep(0.01)
            assert server._batch is not None, "batch never started"
            server.stop()  # same path as the SIGTERM handler

        st = JobStore(db)
        counts = st.counts()
        st.close()
        assert counts["running"] == 0
        assert counts["failed"] == 0
        assert counts["done"] + counts["queued"] == 20
        assert counts["queued"] >= 1, "drain should requeue the tail"

        with service(tmp_path, db_path=db, batch_max=16) as (_s2, client2):
            payloads = wait_done(client2, ids.values(), timeout=60)
        for s in specs:
            payload = payloads[ids[s.digest()]]
            assert payload["ok"] is True
            assert payload["digest"] == s.digest()

    def test_submit_during_drain_rejected_503(self, tmp_path):
        with service(tmp_path) as (server, client):
            server.draining = True
            status, payload = client._request(
                "POST", "/jobs", {"spec": spec().to_dict()})
            assert status == 503
            server.draining = False


class TestFailurePaths:
    def test_client_disconnect_mid_long_poll(self, tmp_path):
        """A client that vanishes while parked on /wait must not wedge
        the server or leak its handler task."""
        with service(tmp_path, start_paused=True,
                     wait_poll=0.01) as (server, client):
            job = client.submit(spec())
            sock = socket.create_connection(("127.0.0.1", server.port))
            sock.sendall((f"GET /jobs/{job['id']}/wait?timeout=30 "
                          "HTTP/1.1\r\nHost: x\r\n\r\n").encode())
            time.sleep(0.05)  # let the handler park in the poll loop
            sock.close()
            deadline = time.monotonic() + 5
            while server._handlers and time.monotonic() < deadline:
                time.sleep(0.02)
            assert not server._handlers, "disconnected handler leaked"
            # Server still fully functional afterwards.
            assert client.healthz()["status"] == "ok"
            server.paused = False
            assert client.wait(job["id"], timeout=30)["ok"] is True

    def test_half_request_then_disconnect(self, tmp_path):
        with service(tmp_path) as (_server, client):
            sock = socket.create_connection(("127.0.0.1", client.port))
            sock.sendall(b"POST /jobs HTTP/1.1\r\nContent-Length: 999\r\n"
                         b"\r\ntruncated")
            sock.close()
            assert client.healthz()["status"] == "ok"

    def test_chaos_faults_behind_service(self, tmp_path):
        """PR 2 fault injection mounted behind the service: a transient
        crash is retried to success, a persistent error surfaces as a
        failed job with the full RunFailure record, and neighbours in
        the same batch are untouched."""
        specs = distinct_specs(3)
        inj = (FaultInjector()
               .add(specs[0].digest(), "crash", until_attempt=1)
               .add(specs[1].digest(), "error"))
        with service(tmp_path, engine_opts={
                "jobs": 1, "cache": False,
                "faults": inj}) as (server, client):
            ids = [client.submit(s)["id"] for s in specs]
            transient = client.wait(ids[0], timeout=60)
            persistent = client.wait(ids[1], timeout=60)
            clean = client.wait(ids[2], timeout=60)
            engine = server._engines[False]
        assert transient["ok"] is True          # retry absorbed the crash
        assert engine.stats.retries >= 1
        assert persistent["ok"] is False
        failure = parse_result(persistent)
        assert failure.category == "error"
        assert failure.spec_digest == specs[1].digest()
        assert client.parse(clean) == Engine(jobs=1, cache=False) \
            .run_one(specs[2])
        assert json.loads(json.dumps(persistent)) == persistent
