"""Sweep utility and CSV export."""

import pytest

from repro.config import GPUConfig
from repro.core.sharing import SharedResource
from repro.harness.runner import shared, unshared
from repro.harness.sweep import CSV_COLUMNS, Sweep, rows_to_csv

FAST = dict(config=GPUConfig().scaled(num_clusters=1), scale=0.2, waves=1.0)


def small_sweep():
    s = Sweep(**FAST)
    s.add_apps(["gaussian"])
    s.add_modes([unshared("lrr"), unshared("gto")])
    return s


class TestSweep:
    def test_size(self):
        s = small_sweep()
        assert s.size == 2

    def test_run_produces_rows(self):
        s = small_sweep()
        rows = s.run()
        assert len(rows) == 2
        assert {r["mode"] for r in rows} == {"Unshared-LRR", "Unshared-GTO"}
        for r in rows:
            for col in CSV_COLUMNS:
                assert col in r

    def test_empty_sweep_rejected(self):
        with pytest.raises(ValueError):
            Sweep(**FAST).run()

    def test_csv_before_run_rejected(self):
        with pytest.raises(ValueError):
            small_sweep().to_csv()

    def test_csv_shape(self):
        s = small_sweep()
        s.run()
        lines = s.to_csv().strip().splitlines()
        assert lines[0] == ",".join(CSV_COLUMNS)
        assert len(lines) == 3
        assert all(len(ln.split(",")) == len(CSV_COLUMNS) for ln in lines)

    def test_best_mode_per_app(self):
        s = small_sweep()
        s.run()
        best = s.best_mode_per_app()
        assert set(best) == {"gaussian"}
        assert best["gaussian"] in ("Unshared-LRR", "Unshared-GTO")

    def test_sharing_columns_populated(self):
        s = Sweep(**FAST)
        s.add_apps(["CONV1"])
        s.add_modes([shared(SharedResource.SCRATCHPAD, "owf")])
        (row,) = s.run()
        assert row["blocks_total"] == 8
        assert row["blocks_baseline"] == 6

    def test_app_objects_accepted(self):
        from repro.workloads.apps import APPS
        s = Sweep(**FAST)
        s.add_apps([APPS["gaussian"]])
        s.add_modes([unshared("lrr")])
        assert s.size == 1


class TestRowsToCsv:
    def test_missing_keys_blank(self):
        from repro.harness.sweep import CSV_COLUMNS
        text = rows_to_csv([{"app": "x", "ipc": 1.0}])
        line = text.strip().splitlines()[1]
        assert line.startswith("x,")
        cycles_col = CSV_COLUMNS.index("cycles")
        assert line.split(",")[cycles_col] == ""  # cycles missing -> blank

    def test_extra_keys_ignored(self):
        text = rows_to_csv([{"app": "x", "not_a_column": 9}])
        assert "not_a_column" not in text
        assert "9" not in text

    def test_comma_in_field_quoted(self):
        import csv
        import io
        text = rows_to_csv([{"app": "x", "mode": "Shared,OWF"}])
        (row,) = list(csv.DictReader(io.StringIO(text)))
        assert row["mode"] == "Shared,OWF"
        assert row["clusters"] == ""


class TestFailureRow:
    def mk_failure(self, message="boom"):
        from repro.harness.resilience import RunFailure
        return RunFailure(category="crash", exception_type="RuntimeError",
                          message=message, spec_digest="cafe" * 16,
                          app="gaussian", mode="Unshared-LRR", attempts=3)

    def test_identifies_failed_cell(self):
        from repro.harness.sweep import failure_row
        row = failure_row(self.mk_failure(), clusters=1, scale=0.2,
                          waves=1.0)
        assert row["status"] == "crash"
        assert row["digest"] == "cafe" * 16  # re-runnable from CSV alone
        assert row["attempts"] == 3
        assert row["error"] == "RuntimeError: boom"

    def test_long_error_truncated_with_marker(self):
        from repro.harness.sweep import _ERROR_LIMIT, failure_row
        row = failure_row(self.mk_failure("x" * 500), clusters=1,
                          scale=0.2, waves=1.0)
        assert len(row["error"]) == _ERROR_LIMIT
        assert row["error"].endswith("...")  # truncation is visible

    def test_short_error_not_marked(self):
        from repro.harness.sweep import failure_row
        row = failure_row(self.mk_failure(), clusters=1, scale=0.2,
                          waves=1.0)
        assert not row["error"].endswith("...")

    def test_digest_and_attempts_in_csv_columns(self):
        assert "digest" in CSV_COLUMNS and "attempts" in CSV_COLUMNS


class TestCsvRoundTrip:
    """Sweep.to_csv() must parse back losslessly with csv.DictReader."""

    def run_with_failure(self):
        from repro.harness.engine import RunSpec
        from repro.harness.faults import FaultInjector
        from repro.workloads.apps import APPS
        bad = RunSpec.create(APPS["gaussian"], unshared("gto"),
                             config=FAST["config"], scale=FAST["scale"],
                             waves=FAST["waves"])
        s = Sweep(**FAST,
                  faults=FaultInjector().add(bad.digest(), "error"))
        s.add_apps(["gaussian"])
        s.add_modes([unshared("lrr"), unshared("gto")])
        s.run()
        return s

    def test_ok_and_failure_rows_parse_back(self):
        import csv
        import io
        s = self.run_with_failure()
        parsed = list(csv.DictReader(io.StringIO(s.to_csv())))
        assert len(parsed) == 2
        ok = next(r for r in parsed if r["status"] == "ok")
        bad = next(r for r in parsed if r["status"] != "ok")
        # ok row: numeric cells survive the text round trip
        assert ok["app"] == "gaussian" and ok["error"] == ""
        assert int(ok["cycles"]) > 0
        assert float(ok["ipc"]) == pytest.approx(
            int(ok["instructions"]) / int(ok["cycles"]), abs=1e-4)
        # ok rows carry their spec digest too (re-runnable), but no
        # attempts count (the engine only reports it for failures)
        assert len(ok["digest"]) == 64
        assert set(ok["digest"]) <= set("0123456789abcdef")
        assert ok["attempts"] == ""
        # failure row: annotated, re-runnable
        (f,) = s.failures
        assert bad["status"] == "error"
        assert bad["digest"] == f.spec_digest
        assert int(bad["attempts"]) == f.attempts
        assert bad["error"].startswith("InjectedError")
        assert bad["ipc"] == ""  # no fabricated numbers on failures

    def test_header_matches_columns(self):
        import csv
        import io
        s = self.run_with_failure()
        reader = csv.reader(io.StringIO(s.to_csv()))
        assert next(reader) == list(CSV_COLUMNS)
        assert all(len(r) == len(CSV_COLUMNS) for r in reader)


class TestSweepEngine:
    def test_duplicate_grid_entries_simulated_once(self):
        s = Sweep(**FAST)
        s.add_apps(["gaussian"])
        s.add_modes([unshared("lrr"), unshared("gto"), unshared("lrr")])
        assert s.size == 3
        rows = s.run()
        assert len(rows) == 2  # one row per unique run
        assert s.engine.stats.sims == 2

    def test_cache_knob(self, tmp_path):
        s1 = Sweep(**FAST, cache=True, cache_dir=tmp_path)
        s1.add_apps(["gaussian"]).add_modes([unshared("lrr")])
        s1.run()
        assert s1.engine.stats.sims == 1

        s2 = Sweep(**FAST, cache=True, cache_dir=tmp_path)
        s2.add_apps(["gaussian"]).add_modes([unshared("lrr")])
        rows = s2.run()
        assert s2.engine.stats.sims == 0 and s2.engine.stats.hits == 1
        assert rows == s1.rows

    def test_cache_off_by_default(self):
        assert Sweep(**FAST).engine.cache is None

    def test_shared_engine(self):
        from repro.harness.engine import Engine
        eng = Engine(jobs=1, cache=False)
        s = Sweep(**FAST, engine=eng)
        s.add_apps(["gaussian"]).add_modes([unshared("lrr")])
        s.run()
        assert eng.stats.sims == 1
