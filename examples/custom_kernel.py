#!/usr/bin/env python3
"""Author a custom kernel with the builder DSL and explore sharing.

Shows the full public workflow for a kernel that is not part of the
paper's suites: declare a resource signature, write the instruction
body, inspect occupancy/waste, pick a sharing threshold, and simulate.

The kernel below is a toy molecular-dynamics force loop: it loads
neighbour positions, accumulates forces through FFMA chains, and spills
partial results to scratchpad.

Run:  python examples/custom_kernel.py
"""

from repro import (GPUConfig, KernelBuilder, Pattern, SharedResource,
                   occupancy, plan_sharing, run, shared, unshared)
from repro.core.sharing import SharingSpec

cfg = GPUConfig().scaled(num_clusters=4)

# --- author the kernel ---------------------------------------------------
b = KernelBuilder(
    "forces",
    block_size=192,       # 6 warps per block
    regs=40,              # heavy register pressure -> register-limited
    smem=3072,            # per-block accumulation tile
    seed=2024,
    variance=0.3,         # neighbour-list lengths vary per warp
)
b.ldg(region="positions", footprint=128 * 1024, block_private=False)
b.sts(offset=0, stride=128, wrap=3072)
b.bar()
with b.loop(40):
    b.ldg(region="neighbors", footprint=96 * 1024, block_private=False,
          pattern=Pattern.STRIDED, txn=2)
    b.alu_chain(4)          # force accumulation (dependent FFMAs)
    b.alu_indep(3)          # independent lane math
    b.lds(offset=0, stride=96, wrap=3072)
b.bar()
b.stg(region="forces_out", footprint=128 * 1024)
kernel = b.build()

# --- static analysis ------------------------------------------------------
occ = occupancy(kernel, cfg)
print(f"forces: {kernel.regs_per_block} regs/block, "
      f"{kernel.smem_per_block} B scratchpad/block")
print(f"baseline: {occ.blocks} blocks/SM, limiter={occ.limiter}, "
      f"register waste {occ.register_waste_pct:.1f}%")

for t in (0.5, 0.3, 0.1):
    plan = plan_sharing(kernel, cfg, SharingSpec(SharedResource.REGISTERS, t))
    print(f"  t={t:3.1f} ({plan.spec.sharing_pct:4.0f}% shared): "
          f"{plan.total} blocks/SM ({plan.unshared} unshared "
          f"+ {plan.pairs} pairs)")

# --- simulate -------------------------------------------------------------
print()
base = run(kernel, unshared("lrr"), config=cfg)
best = run(kernel, shared(SharedResource.REGISTERS, "owf",
                          unroll=True, dyn=True), config=cfg)
print(f"{base.mode:28s} IPC {base.ipc:7.2f}")
print(f"{best.mode:28s} IPC {best.ipc:7.2f}  "
      f"({(best.ipc / base.ipc - 1) * 100:+.2f}%)")
print(f"stall cycles: {base.stall_cycles} -> {best.stall_cycles}; "
      f"idle cycles: {base.idle_cycles} -> {best.idle_cycles}")
