"""Failure isolation primitives for the execution engine.

A production-scale harness cannot let one bad run abort a whole batch:
a ``SimulationDeadlock`` in one (app × mode) cell, a worker process
killed by the OS, or a hung simulation must degrade to a *structured
record* while the remaining runs complete.  This module defines that
vocabulary; :mod:`repro.harness.engine` implements the mechanics
(watchdog, retries, backoff) and :mod:`repro.harness.faults` provides
the deterministic fault-injection harness that proves them.

* :class:`RunFailure` — the per-run failure record the engine returns
  in place of a :class:`~repro.sim.stats.RunResult`: category, exception
  type, spec digest, attempt count and a traceback tail.  JSON
  round-trips so reports and CI artifacts can persist it.
* :class:`RetryPolicy` — bounded retries with exponential backoff for
  *transient* failures (worker crashes / ``BrokenProcessPool``).
  Deterministic simulation errors (deadlock, cycle-limit, sanitizer)
  are never retried: re-running a deterministic sim reproduces them.
* :class:`BatchReport` — partition of a mixed result list, with a
  one-line summary for CLI footers.
* :func:`categorize` — exception → failure-category mapping shared by
  every path (in-process, pool, watchdog).

Failure categories: ``deadlock`` | ``limit`` | ``sanitizer`` |
``crash`` | ``timeout`` | ``error`` | ``cancelled``.  Only ``crash``
(and optionally ``timeout``) is transient.  ``cancelled`` is special:
the run never started — the engine's cooperative cancellation token
(see :meth:`Engine.run_batch`) was set before it could be dispatched.
Cancelled slots are not counted as failures and never retried; callers
that requested the cancellation (the service's drain logic) requeue
them.
"""

from __future__ import annotations

import traceback
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.sim.gpu import SimulationDeadlock, SimulationLimitExceeded
from repro.sim.sanitizer import SanitizerViolation

if TYPE_CHECKING:  # pragma: no cover
    from repro.harness.engine import RunSpec
    from repro.sim.stats import RunResult

__all__ = ["RunFailure", "RetryPolicy", "BatchReport", "RunTimeoutError",
           "RunCancelled", "categorize", "CATEGORIES"]

#: Every category the engine can emit.
CATEGORIES = ("deadlock", "limit", "sanitizer", "crash", "timeout", "error",
              "cancelled")

#: Lines of remote/local traceback kept in a failure record.
_TB_TAIL_LINES = 12


class RunTimeoutError(RuntimeError):
    """A run exceeded the engine's per-run wall-clock budget."""


class RunCancelled(RuntimeError):
    """A run was cancelled by the batch's cancellation token before it
    started; its slot holds a ``category="cancelled"`` record."""


def categorize(exc: BaseException) -> str:
    """Failure category for an exception (see :data:`CATEGORIES`)."""
    if isinstance(exc, SimulationDeadlock):
        return "deadlock"
    if isinstance(exc, SimulationLimitExceeded):
        return "limit"
    if isinstance(exc, SanitizerViolation):
        return "sanitizer"
    if isinstance(exc, RunTimeoutError):
        return "timeout"
    if isinstance(exc, RunCancelled):
        return "cancelled"
    if isinstance(exc, BrokenExecutor) or _is_injected_crash(exc):
        return "crash"
    return "error"


def _is_injected_crash(exc: BaseException) -> bool:
    # Soft-mode injected crashes (see faults.InjectedCrash) must map to
    # the same category as a real worker death; imported lazily so the
    # two modules stay import-cycle free.
    from repro.harness.faults import InjectedCrash
    return isinstance(exc, InjectedCrash)


def _traceback_tail(exc: BaseException, limit: int = _TB_TAIL_LINES) -> str:
    """Last ``limit`` lines of the (possibly remote) traceback."""
    lines = traceback.format_exception(type(exc), exc, exc.__traceback__)
    # concurrent.futures attaches the worker-side traceback text as the
    # __cause__ (_RemoteTraceback); format_exception already includes it.
    text = "".join(lines).rstrip()
    return "\n".join(text.splitlines()[-limit:])


@dataclass(frozen=True)
class RunFailure:
    """Structured record of one failed run (the non-result).

    Returned by :meth:`Engine.run_batch` at the failed spec's position,
    so partial batches stay index-aligned with their inputs.  Callers
    distinguish with ``isinstance(r, RunFailure)`` (or :attr:`ok`).
    """

    category: str          #: one of :data:`CATEGORIES`
    exception_type: str    #: class name of the underlying exception
    message: str           #: str(exception), first source of diagnosis
    spec_digest: str       #: RunSpec.digest() of the failed run
    app: str               #: app name (or "kernel:<fp>" for ad-hoc kernels)
    mode: str              #: Mode.label of the failed run
    attempts: int = 1      #: execution attempts consumed (retries + 1)
    elapsed: float = 0.0   #: wall seconds spent on the final attempt
    traceback_tail: str = ""  #: last lines of the (remote) traceback

    #: Symmetric with RunResult-like duck typing in report code.
    ok = False

    @classmethod
    def from_exception(cls, spec: "RunSpec", digest: str,
                       exc: BaseException, attempts: int,
                       elapsed: float = 0.0) -> "RunFailure":
        """Build a record from the exception a run died with."""
        return cls(category=categorize(exc),
                   exception_type=type(exc).__name__,
                   message=str(exc),
                   spec_digest=digest,
                   app=spec.app if spec.app is not None
                   else f"kernel:{spec.kernel_fp}",
                   mode=spec.mode.label,
                   attempts=attempts,
                   elapsed=round(elapsed, 6),
                   traceback_tail=_traceback_tail(exc))

    def to_dict(self) -> dict:
        """JSON-serializable form (exact :meth:`from_dict` round trip)."""
        return {
            "category": self.category,
            "exception_type": self.exception_type,
            "message": self.message,
            "spec_digest": self.spec_digest,
            "app": self.app,
            "mode": self.mode,
            "attempts": self.attempts,
            "elapsed": self.elapsed,
            "traceback_tail": self.traceback_tail,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "RunFailure":
        """Inverse of :meth:`to_dict`."""
        return cls(**d)

    def describe(self) -> str:
        """One line for CLI failure listings."""
        first = self.message.splitlines()[0] if self.message else ""
        return (f"{self.app} / {self.mode}: {self.category} "
                f"({self.exception_type}, attempt {self.attempts}) — {first}")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff for transient failures.

    ``delay(n)`` after the n-th failed attempt is
    ``min(backoff_max, backoff_base * backoff_factor ** (n - 1))``
    seconds.  Only categories in :attr:`retry_categories` (plus
    ``timeout`` when :attr:`retry_timeouts`) are retried; deterministic
    simulation failures always fail immediately.
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 4.0
    backoff_max: float = 2.0
    retry_timeouts: bool = False
    retry_categories: frozenset = frozenset({"crash"})

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base < 0 or self.backoff_factor < 1:
            raise ValueError("backoff_base >= 0 and backoff_factor >= 1")

    def retryable(self, category: str) -> bool:
        """True if a failure of ``category`` should be retried."""
        if category == "timeout":
            return self.retry_timeouts
        return category in self.retry_categories

    def delay(self, failed_attempts: int) -> float:
        """Backoff before the next attempt, after ``failed_attempts``."""
        if failed_attempts < 1:
            return 0.0
        return min(self.backoff_max,
                   self.backoff_base
                   * self.backoff_factor ** (failed_attempts - 1))


@dataclass
class BatchReport:
    """Partition of a mixed ``run_batch`` result list."""

    results: list = field(default_factory=list)    #: RunResult entries
    failures: list = field(default_factory=list)   #: RunFailure entries

    @classmethod
    def from_results(cls, mixed: Sequence) -> "BatchReport":
        """Split an index-aligned result list into ok / failed."""
        rep = cls()
        for r in mixed:
            (rep.failures if isinstance(r, RunFailure)
             else rep.results).append(r)
        return rep

    @property
    def ok(self) -> bool:
        """True when no run failed."""
        return not self.failures

    def by_category(self) -> dict[str, int]:
        """Failure counts per category."""
        counts: dict[str, int] = {}
        for f in self.failures:
            counts[f.category] = counts.get(f.category, 0) + 1
        return counts

    def summary(self) -> str:
        """One-line footer fragment, e.g. ``2 failed (crash:1, timeout:1)``."""
        if self.ok:
            return "all ok"
        cats = ", ".join(f"{k}:{v}" for k, v in sorted(self.by_category()
                                                       .items()))
        return f"{len(self.failures)} failed ({cats})"

    def render(self) -> str:
        """Multi-line failure listing for CLIs."""
        return "\n".join("  !! " + f.describe() for f in self.failures)


def split_results(mixed: Iterable) -> tuple[list, list["RunFailure"]]:
    """Convenience: ``(ok_results, failures)`` from a mixed list."""
    rep = BatchReport.from_results(list(mixed))
    return rep.results, rep.failures
