"""Baseline occupancy: blocks per SM and resource waste (Fig. 1 math).

Without sharing, an SM with ``R`` units of a resource fits
``⌊R / Rtb⌋`` blocks of a kernel needing ``Rtb`` units each, and the
remaining ``R mod Rtb`` units are wasted — the motivation of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import GPUConfig
from repro.isa.kernel import Kernel

__all__ = ["Occupancy", "occupancy"]


@dataclass(frozen=True)
class Occupancy:
    """Result of the baseline (non-sharing) occupancy computation."""

    #: Blocks per SM under each individual constraint.
    by_registers: int
    by_scratchpad: int
    by_threads: int
    by_blocks: int
    #: Blocks per SM the hardware actually launches (min of the above).
    blocks: int
    #: Which constraint is binding: "registers", "scratchpad", "threads"
    #: or "blocks".  Ties resolve in that order.
    limiter: str
    #: Fraction of the register file left unused by resident blocks.
    register_waste: float
    #: Fraction of scratchpad left unused by resident blocks.
    scratchpad_waste: float

    @property
    def register_waste_pct(self) -> float:
        """Register underutilisation as a percentage (Fig. 1b)."""
        return 100.0 * self.register_waste

    @property
    def scratchpad_waste_pct(self) -> float:
        """Scratchpad underutilisation as a percentage (Fig. 1d)."""
        return 100.0 * self.scratchpad_waste


def occupancy(kernel: Kernel, config: GPUConfig) -> Occupancy:
    """Compute baseline blocks/SM and per-resource waste for ``kernel``.

    Raises :class:`ValueError` if even a single block does not fit — the
    paper (and real hardware) rejects such launches.
    """
    by_regs = (config.registers_per_sm // kernel.regs_per_block
               if kernel.regs_per_block else config.max_blocks_per_sm)
    by_smem = (config.scratchpad_per_sm // kernel.smem_per_block
               if kernel.smem_per_block else config.max_blocks_per_sm)
    by_threads = config.max_threads_per_sm // kernel.threads_per_block
    by_blocks = config.max_blocks_per_sm

    blocks = min(by_regs, by_smem, by_threads, by_blocks)
    if blocks < 1:
        raise ValueError(
            f"kernel {kernel.name!r} does not fit on an SM "
            f"(regs {by_regs}, smem {by_smem}, threads {by_threads})")

    candidates = []
    if kernel.regs_per_block:
        candidates.append(("registers", by_regs))
    if kernel.smem_per_block:
        candidates.append(("scratchpad", by_smem))
    candidates += [("threads", by_threads), ("blocks", by_blocks)]
    for limiter, cap in candidates:
        if cap == blocks:
            break

    reg_waste = (config.registers_per_sm - blocks * kernel.regs_per_block
                 ) / config.registers_per_sm
    smem_waste = (config.scratchpad_per_sm - blocks * kernel.smem_per_block
                  ) / config.scratchpad_per_sm
    return Occupancy(
        by_registers=by_regs,
        by_scratchpad=by_smem,
        by_threads=by_threads,
        by_blocks=by_blocks,
        blocks=blocks,
        limiter=limiter,
        register_waste=reg_waste,
        scratchpad_waste=smem_waste,
    )
