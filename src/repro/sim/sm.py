"""SM core: warp contexts, dual schedulers, issue logic, cycle taxonomy.

Issue model (see DESIGN.md §4): each of the SM's two schedulers issues at
most one instruction per cycle from its warp partition
(``dynamic_id % num_schedulers``); the two schedulers share a single
LD/ST port (one memory instruction per SM per cycle).  Warps are in-order
with a per-register scoreboard; ALU/SFU results are pipelined.

All of the paper's run-time machinery lives in :meth:`SMCore._try_issue`:
the Fig. 3 register access check, the Fig. 4 scratchpad access check, the
busy-wait on shared-pool locks, and the Sec. IV-C Dyn gate for non-owner
memory instructions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.config import GPUConfig
from repro.core.dynwarp import DynWarpController
from repro.core.liverange import SharedLiveness
from repro.core.sharing import SharedResource
from repro.events import EventQueue
from repro.isa.kernel import Kernel
from repro.isa.opcodes import Op, op_group
from repro.mem.hierarchy import MemoryHierarchy
from repro.mem.request import AddressMap, coalesce_lines
from repro.obs.sink import NULL_SINK, ObsSink
from repro.sched.base import WarpScheduler, make_scheduler
from repro.sim.block import BlockContext, SharePair
from repro.sim.stats import SMStats
from repro.sim.warp import REG_PENDING, WarpContext, WarpState

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.dispatcher import Dispatcher
    from repro.sim.sanitizer import Sanitizer

__all__ = ["SharingRuntime", "SMCore"]

#: Cycles before a warp rejected by a full MSHR array retries.
_MSHR_RETRY = 4

#: Cooldown before a Dyn-refused warp retries its memory instruction (it
#: is also released at the next monitoring-window boundary).
_DYN_COOLDOWN = 64

#: Extra cycles per additional scratchpad bank-conflict way.
_BANK_CONFLICT = 8

#: op → functional group (kept for the reference core / tracers; the
#: fast core reads the precomputed ``Instr.group`` attribute instead).
_GROUP: dict[Op, str] = {op: op_group(op) for op in Op}

_STALL_STATES = frozenset({WarpState.BLOCK_SB, WarpState.BLOCK_MEM,
                           WarpState.BLOCK_RETRY})
_IDLE_STATES = frozenset({WarpState.BLOCK_BAR, WarpState.BLOCK_LOCK,
                          WarpState.BLOCK_DYN})

#: WarpState → cycle-taxonomy category, indexed by state value:
#: 0 = ready, 1 = stall (_STALL_STATES), 2 = idle (_IDLE_STATES),
#: 3 = finished (untracked by :meth:`SMCore.classify`).
_CAT = (0, 1, 1, 2, 2, 2, 1, 3)

# Hot-path aliases: enum member access goes through the Enum metaclass,
# which is measurable at hundreds of thousands of issues per second.
_READY = WarpState.READY
_BLOCK_SB = WarpState.BLOCK_SB
_BLOCK_LOCK = WarpState.BLOCK_LOCK
_BLOCK_DYN = WarpState.BLOCK_DYN
_BLOCK_RETRY = WarpState.BLOCK_RETRY
_BLOCK_BAR = WarpState.BLOCK_BAR
_BLOCK_MEM = WarpState.BLOCK_MEM

#: Issue predicate used when the LD/ST port is taken: only non-memory
#: instructions may still issue this cycle.
_NON_MEM = (lambda w: not w.instr.uses_port)

#: Scheduling policies the fast core evaluates inline in :meth:`SMCore.step`
#: (over the static partition + READY states, no sorted-list upkeep).
#: Anything else uses the generic ``pick`` protocol over ``sched.ready``.
_PICK_IDS = {"lrr": 0, "gto": 1, "two_level": 2, "owf": 3}


@dataclass(frozen=True)
class SharingRuntime:
    """Run-time sharing parameters the SM consults on every access.

    ``private_regs`` — per-thread register index threshold: indices below
    it are private (Fig. 3 step (c) compares against ``Rw·t``).
    ``private_smem`` — scratchpad byte-offset threshold (Fig. 4 step (c)).
    """

    resource: SharedResource
    private_regs: int
    private_smem: int


class SMCore:
    """One streaming multiprocessor."""

    def __init__(self, sm_id: int, kernel: Kernel, config: GPUConfig,
                 events: EventQueue, hierarchy: MemoryHierarchy,
                 amap: AddressMap, scheduler: str,
                 sharing: Optional[SharingRuntime] = None,
                 dyn: Optional[DynWarpController] = None,
                 liveness: Optional[SharedLiveness] = None,
                 sanitizer: Optional["Sanitizer"] = None,
                 obs: ObsSink = NULL_SINK) -> None:
        self.sm_id = sm_id
        self.kernel = kernel
        self.cfg = config
        self.lat = config.latency
        self.events = events
        self.hierarchy = hierarchy
        #: This SM's L1 (alias into the hierarchy, hot in ``_try_issue``).
        self.l1 = hierarchy.l1[sm_id]
        self.amap = amap
        self.sharing = sharing
        self.dyn = dyn
        #: Live-range tables for the early-release extension (None = off).
        self.liveness = liveness
        #: Runtime invariant checker (None = sanitizer off).
        self.sanitizer = sanitizer
        #: Observability sink (metrics/timeline); the null object by
        #: default.  ``_obs_on`` caches ``obs.enabled`` so the hot paths
        #: pay one attribute read + branch, nothing more, when off.
        self.obs = obs
        self._obs_on = obs.enabled
        self.schedulers: list[WarpScheduler] = [
            make_scheduler(scheduler, i,
                           fetch_group_size=config.fetch_group_size)
            for i in range(config.num_schedulers)
        ]
        #: Policy id for the fused issue loop in :meth:`step`; -1 falls
        #: back to the generic ``pick`` protocol (externally registered
        #: policies), which needs the sorted ready lists maintained.
        self._pid = _PICK_IDS.get(scheduler, -1)
        self._generic = self._pid < 0
        self.stats = SMStats(sm_id=sm_id)
        self.warps: list[WarpContext] = []
        self.resident_blocks = 0
        self.dispatcher: Optional["Dispatcher"] = None
        self.now = 0
        self._next_warp_id = 0
        self._mem_port_free = True
        self._lock_blocked: list[WarpContext] = []
        self._dyn_blocked: list[WarpContext] = []
        #: Warps per taxonomy category (see ``_CAT``), maintained
        #: incrementally by :meth:`_set_state` so :meth:`classify` and
        #: :meth:`has_ready` are O(1) instead of scanning every warp.
        self._cat_n = [0, 0, 0, 0]

    # ------------------------------------------------------------------
    # block/warp lifecycle
    # ------------------------------------------------------------------
    def wire_pair(self, pair: SharePair) -> None:
        """Point the pair's lock-release callback at this SM."""
        if pair.reg_group is not None:
            pair.reg_group.on_release = self._on_lock_release
        if pair.spad_group is not None:
            pair.spad_group.on_release = self._on_lock_release
        if self._obs_on:
            self.obs.wire_locks(self, pair)

    def launch_block(self, block: BlockContext, cycle: int) -> None:
        """Create and enqueue the block's warps."""
        for slot in range(block.n_warps):
            w = WarpContext(self._next_warp_id, slot, block, self.kernel)
            self._next_warp_id += 1
            block.warps.append(w)
            self.warps.append(w)
            w.sched = self.schedulers[w.dynamic_id % len(self.schedulers)]
            w.sched.on_ready(w)
            if self._obs_on:
                self.obs.warp_started(self.sm_id, w, cycle)
        self._cat_n[0] += block.n_warps
        self.resident_blocks += 1
        self.stats.blocks_launched += 1
        if self.resident_blocks > self.stats.max_resident_blocks:
            self.stats.max_resident_blocks = self.resident_blocks

    def _sched_of(self, warp: WarpContext) -> WarpScheduler:
        return warp.sched

    # ------------------------------------------------------------------
    # state transitions
    # ------------------------------------------------------------------
    def _set_state(self, warp: WarpContext, state: WarpState) -> None:
        # Runs twice per state round-trip of every issue and retry.  The
        # fast core only maintains the O(1) ``n_ready`` counter; the
        # sorted ready lists are bypassed entirely (the fused ``step``
        # evaluates the built-in policies over the static partition) —
        # except for externally registered policies, whose ``pick``
        # still consumes ``sched.ready``.
        old = warp.state
        if old is state:
            return
        sched = warp.sched
        if old is _READY:
            sched.n_ready -= 1
            if self._generic:
                sched.ready.discard(warp)
        elif state is _READY:
            sched.n_ready += 1
            if self._generic:
                sched.ready.add(warp)
        c = self._cat_n
        c[_CAT[old]] -= 1
        c[_CAT[state]] += 1
        warp.state = state
        warp.wake_token += 1
        if self._obs_on:
            self.obs.warp_state(self.sm_id, warp, state, self.now)

    def _update_readiness(self, warp: WarpContext, cycle: int) -> None:
        """Re-derive a warp's scoreboard wait state for its next instr.

        Timed wakes go through :meth:`EventQueue.push_wake`: a blocked
        warp's operand readiness can only improve (loads lower
        ``reg_ready`` entries, nothing raises them while the warp cannot
        issue), so a still-valid wake deterministically lands in the
        ``e <= cycle + 1`` branch and the queue sets it READY directly.
        """
        # warp.earliest_issue() inlined: one call per issue and retry.
        e = 0
        rr = warp.reg_ready
        for r in warp.instr.regs:
            v = rr[r]
            if v > e:
                e = v
        if e >= REG_PENDING:
            self._set_state(warp, _BLOCK_MEM)
        elif e <= cycle + 1:
            self._set_state(warp, _READY)
        else:
            self._set_state(warp, _BLOCK_SB)
            self.events.push_wake(e, self, warp)

    # ------------------------------------------------------------------
    # wake paths
    # ------------------------------------------------------------------
    def _on_load_done(self, warp: WarpContext, dst: tuple[int, ...],
                      cycle: int) -> None:
        self.now = cycle
        for r in dst:
            warp.reg_ready[r] = cycle
        warp.outstanding_loads -= 1
        if warp.state is WarpState.BLOCK_MEM:
            self._update_readiness(warp, cycle)

    def _on_lock_release(self) -> None:
        """A shared pool was released: retry every lock-blocked warp."""
        if not self._lock_blocked:
            return
        waiters, self._lock_blocked = self._lock_blocked, []
        for w in waiters:
            if w.state is WarpState.BLOCK_LOCK:
                self._update_readiness(w, self.now)

    def release_dyn_blocked(self, cycle: int) -> None:
        """Dyn monitoring window ended: unblock refused warps."""
        self.now = cycle
        waiters, self._dyn_blocked = self._dyn_blocked, []
        for w in waiters:
            if w.state is WarpState.BLOCK_DYN:
                self._update_readiness(w, cycle)

    # ------------------------------------------------------------------
    # per-cycle issue
    # ------------------------------------------------------------------
    def has_ready(self) -> bool:
        """True if any scheduler has a READY warp."""
        return self._cat_n[0] > 0

    def _issuable(self, warp: WarpContext) -> bool:
        if warp.instr.uses_port:
            return self._mem_port_free
        return True

    def step(self, cycle: int) -> int:
        """Run one SM cycle; returns instructions issued (0..2).

        The four built-in policies are evaluated inline over each
        scheduler's static partition (``sched.warps``, ascending
        ``dynamic_id``) instead of through ``pick`` over the sorted
        ready list.  A linear scan filtered on ``state is READY``
        visits exactly the ready warps in id order, so each inline
        loop is the policy's definition with the container swapped —
        pick-for-pick equivalence is asserted by the differential
        golden suite against the reference core, which still runs the
        original ``pick`` implementations.
        """
        self.now = cycle
        port_free = True
        self._mem_port_free = True
        issued = 0
        pid = self._pid
        for sched in self.schedulers:
            while sched.n_ready:
                warps = sched.warps
                w = None
                if pid == 3:  # OWF: owner > unshared > non-owner, sticky
                    best_cls = 3
                    for c in warps:
                        if c.state is not _READY or not (
                                port_free or not c.instr.uses_port):
                            continue
                        blk = c.block
                        pair = blk.pair
                        cls = 1 if pair is None else (
                            0 if pair.owner_side() == blk.side else 2)
                        if cls < best_cls:
                            w = c
                            best_cls = cls
                            if cls == 0:
                                break
                    if w is not None:
                        last = sched.last
                        if (last is not None and last is not w
                                and last.state is _READY
                                and last.owf_class() == best_cls
                                and (port_free
                                     or not last.instr.uses_port)):
                            w = last  # greedy within the winning class
                elif pid == 0:  # LRR: resume after the last issued id
                    after = sched._after
                    wrap = None
                    for c in warps:
                        if c.state is not _READY or not (
                                port_free or not c.instr.uses_port):
                            continue
                        if c.dynamic_id > after:
                            w = c
                            break
                        if wrap is None:
                            wrap = c
                    if w is None:
                        w = wrap
                elif pid == 1:  # GTO: sticky last, else oldest ready
                    last = sched.last
                    if (last is not None and last.state is _READY
                            and (port_free or not last.instr.uses_port)):
                        w = last
                    else:
                        for c in warps:
                            if c.state is _READY and (
                                    port_free or not c.instr.uses_port):
                                w = c
                                break
                elif pid == 2:  # two-level: fetch-group round robin
                    gs = sched.group_size
                    g = sched._active_group
                    after = sched._after
                    wrap = None
                    for c in warps:
                        if c.state is not _READY or not (
                                port_free or not c.instr.uses_port):
                            continue
                        if c.dynamic_id // gs != g:
                            continue
                        if c.dynamic_id > after:
                            w = c
                            break
                        if wrap is None:
                            wrap = c
                    if w is None:
                        w = wrap
                    if w is None:
                        # No issuable warp in the active group: switch
                        # to the oldest issuable warp of another group.
                        if port_free:
                            for c in warps:
                                if c.state is _READY:
                                    w = c
                                    sched._active_group = (
                                        c.dynamic_id // gs)
                                    break
                        else:
                            for c in warps:
                                if (c.state is _READY
                                        and not c.instr.uses_port
                                        and c.dynamic_id // gs != g):
                                    w = c
                                    sched._active_group = (
                                        c.dynamic_id // gs)
                                    break
                else:  # externally registered policy: generic protocol
                    w = sched.pick(cycle,
                                   None if port_free else _NON_MEM)
                if w is None:
                    break
                if self._try_issue(w, cycle, sched):
                    issued += 1
                    port_free = self._mem_port_free
                    break
                # otherwise the warp blocked (left the READY state);
                # give the scheduler another chance this cycle.
        return issued

    # ------------------------------------------------------------------
    def _dyn_critical(self, warp: WarpContext) -> bool:
        """True when throttling ``warp`` would stall the partner block.

        Priority-inversion escape hatch for the Dyn gate: if this
        warp's block holds a shared pool that a partner-side warp is
        lock-blocked on, refusing its memory instructions cannot be
        "protecting the owner" — it *is* the owner's critical path
        (pools release only as the holding block progresses).  On SM0,
        whose throttle probability is pinned to 0, refusing such a warp
        forever would livelock the pair outright.
        """
        pair = warp.block.pair
        if pair is None:
            return False
        side = warp.block.side
        partner = pair.blocks[1 - side]
        if partner is None:
            return False
        g, sg = pair.reg_group, pair.spad_group
        for w in self._lock_blocked:
            if w.state is not WarpState.BLOCK_LOCK or w.block is not partner:
                continue
            if g is not None and g.holder(w.slot) == side:
                return True
            if sg is not None and sg.holder == side:
                return True
        return False

    def _try_issue(self, warp: WarpContext, cycle: int,
                   sched: WarpScheduler) -> bool:
        ins = warp.instr
        grp = ins.group
        block = warp.block
        pair = block.pair
        stats = self.stats

        # --- Dyn gate (Sec. IV-C): non-owner global memory only ---
        if (self.dyn is not None and grp == "global" and pair is not None
                and warp.owf_class() == 2):
            if (not self.dyn.allow(self.sm_id)
                    and not self._dyn_critical(warp)):
                stats.dyn_refusals += 1
                if self._obs_on:
                    self.obs.dyn_refusal(self.sm_id, warp, cycle)
                self._set_state(warp, _BLOCK_DYN)
                self._dyn_blocked.append(warp)
                self.events.push_wake(cycle + _DYN_COOLDOWN, self, warp)
                return False

        # --- register sharing access check (Fig. 3) ---
        if (self.sharing is not None
                and self.sharing.resource is SharedResource.REGISTERS
                and pair is not None):
            pr = self.sharing.private_regs
            if ins.max_reg >= pr:
                g = pair.reg_group
                assert g is not None
                if not g.holds(block.side, warp.slot):
                    if g.try_acquire(block.side, warp.slot):
                        stats.lock_acquires += 1
                        pair.note_acquired(block.side)
                    else:
                        stats.lock_waits += 1
                        self._set_state(warp, _BLOCK_LOCK)
                        self._lock_blocked.append(warp)
                        return False

        # --- scratchpad sharing access check (Fig. 4) ---
        smem_off = 0
        if grp == "shared":
            m = ins.mem
            assert m is not None
            smem_off = (m.offset if m.wrap == 0
                        else (m.offset + warp.iter_idx * m.stride) % m.wrap)
            if (self.sharing is not None
                    and self.sharing.resource is SharedResource.SCRATCHPAD
                    and pair is not None
                    and smem_off >= self.sharing.private_smem):
                g = pair.spad_group
                assert g is not None
                if not g.holds(block.side):
                    if g.try_acquire(block.side):
                        stats.lock_acquires += 1
                        pair.note_acquired(block.side)
                    else:
                        stats.lock_waits += 1
                        self._set_state(warp, _BLOCK_LOCK)
                        self._lock_blocked.append(warp)
                        return False

        # --- execute side effects ---
        if grp == "global":
            m = ins.mem
            assert m is not None
            if ins.op is Op.LDG:
                l1 = self.l1
                if warp.pend_valid:
                    # Retry of an MSHR-rejected access (``pend_valid``
                    # is cleared by ``advance``, so the cached lines are
                    # exactly this trace position's): the line set is a
                    # pure function of the position, so reuse it.
                    lines = warp.pend_lines
                    if warp.pend_gen == l1.gen:
                        # The L1 has not changed since the rejected
                        # attempt, so the admission scan would reach the
                        # same verdict — replay the rejection in O(1)
                        # (same counters, same state transition).
                        l1.stats.mshr_rejects += 1
                        stats.mshr_stalls += 1
                        self._set_state(warp, _BLOCK_RETRY)
                        self.events.push_wake(cycle + _MSHR_RETRY,
                                              self, warp)
                        return False
                else:
                    lines = tuple(dict.fromkeys(coalesce_lines(
                        m, self.amap, block_linear=block.linear_id,
                        warp_in_block=warp.slot,
                        warps_per_block=block.n_warps,
                        iter_idx=warp.iter_idx,
                        line_size=self.cfg.line_size,
                        seed=self.kernel.seed)))
                dst = ins.dst
                on_done: Callable[[int], None] = (
                    lambda c, w=warp, d=dst: self._on_load_done(w, d, c))
                if not self.hierarchy.try_load(self.sm_id, lines, cycle,
                                               on_done,
                                               assume_unique=True):
                    stats.mshr_stalls += 1
                    warp.pend_valid = True
                    warp.pend_lines = lines
                    warp.pend_gen = l1.gen
                    self._set_state(warp, _BLOCK_RETRY)
                    self.events.push_wake(cycle + _MSHR_RETRY, self, warp)
                    return False
                for r in dst:
                    warp.reg_ready[r] = REG_PENDING
                warp.outstanding_loads += 1
            else:
                lines = coalesce_lines(
                    m, self.amap, block_linear=block.linear_id,
                    warp_in_block=warp.slot, warps_per_block=block.n_warps,
                    iter_idx=warp.iter_idx, line_size=self.cfg.line_size,
                    seed=self.kernel.seed)
                self.hierarchy.store(self.sm_id, lines, cycle)
            self._mem_port_free = False
            stats.mem_instructions += 1
        elif grp == "shared":
            m = ins.mem
            assert m is not None
            # An n-way bank conflict serialises into n bank accesses.
            lat = self.lat.scratchpad + (m.conflicts - 1) * _BANK_CONFLICT
            for r in ins.dst:
                warp.reg_ready[r] = cycle + lat
            self._mem_port_free = False
            stats.mem_instructions += 1
        elif grp == "alu":
            for r in ins.dst:
                warp.reg_ready[r] = cycle + self.lat.alu
        elif grp == "sfu":
            for r in ins.dst:
                warp.reg_ready[r] = cycle + self.lat.sfu

        # --- retire bookkeeping ---
        warp.issued += 1
        stats.instructions += 1
        if self._obs_on:
            self.obs.issued(self.sm_id, sched.sched_id, warp, cycle)
        cls = warp.owf_class()
        if cls == 0:
            stats.issued_owner += 1
        elif cls == 1:
            stats.issued_unshared += 1
        else:
            stats.issued_nonowner += 1
        # sched.on_issued(warp) inlined per policy (one call per issue);
        # externally registered policies keep the virtual call.
        pid = self._pid
        if pid == 1 or pid == 3:        # gto / owf: greedy stickiness
            sched.last = warp
        elif pid == 0:                  # lrr: rotate past this warp
            sched.last = warp
            sched._after = warp.dynamic_id
        elif pid == 2:                  # two-level
            sched.last = warp
            sched._after = warp.dynamic_id
            sched._active_group = warp.dynamic_id // sched.group_size
        else:
            sched.on_issued(warp)

        if grp == "exit":
            self._finish_warp(warp, cycle)
            return True

        warp.advance()
        if self.liveness is not None:
            self._maybe_early_release(warp)

        if grp == "bar":
            block.bar_count += 1
            if block.bar_count == block.n_warps:
                block.bar_count = 0
                stats.barriers += 1
                for w2 in block.warps:
                    if w2.state is WarpState.BLOCK_BAR:
                        self._update_readiness(w2, cycle)
                self._update_readiness(warp, cycle)
            else:
                self._set_state(warp, WarpState.BLOCK_BAR)
            return True

        self._update_readiness(warp, cycle)
        return True

    # ------------------------------------------------------------------
    def _maybe_early_release(self, warp: WarpContext) -> None:
        """Live-range extension (paper Sec. VIII): hand the shared pool to
        the partner warp as soon as this warp provably stops needing it."""
        if warp.shared_done:
            return
        pair = warp.block.pair
        if pair is None or pair.reg_group is None or self.sharing is None:
            return
        seg, rep, pc = warp.trace_position
        assert self.liveness is not None
        if self.liveness.done_with_shared(seg, rep, pc, warp.repeats,
                                          self.sharing.private_regs):
            warp.shared_done = True
            if pair.reg_group.holds(warp.block.side, warp.slot):
                self.stats.early_releases += 1
            pair.reg_group.warp_finished(warp.block.side, warp.slot)

    def _finish_warp(self, warp: WarpContext, cycle: int) -> None:
        if self.sanitizer is not None:
            self.sanitizer.on_warp_finished(warp)
        self._set_state(warp, WarpState.FINISHED)
        block = warp.block
        block.active_warps -= 1
        pair = block.pair
        if pair is not None and pair.reg_group is not None:
            # Paper Sec. III-A: the shared pool passes to the partner
            # warp the moment its holder finishes.
            pair.reg_group.warp_finished(block.side, warp.slot)
        if block.active_warps == 0:
            self._complete_block(block, cycle)

    def _complete_block(self, block: BlockContext, cycle: int) -> None:
        self.now = cycle
        self.stats.blocks_completed += 1
        self.resident_blocks -= 1
        for w in block.warps:
            self.warps.remove(w)
            w.sched.warps.remove(w)
        assert self.dispatcher is not None
        # detach (inside on_block_done) releases the scratchpad lock and
        # wakes partner warps; then the slot is refilled.
        self.dispatcher.on_block_done(self, block, cycle)

    # ------------------------------------------------------------------
    # cycle taxonomy (paper Fig. 9 metrics)
    # ------------------------------------------------------------------
    def classify(self) -> str:
        """Classify a no-issue cycle as 'stall', 'idle' or 'empty'.

        O(1): reads the incremental per-category counters instead of
        scanning the resident warps (the reference core keeps the scan;
        the differential suite pins both to the same answers).
        """
        c = self._cat_n
        if c[1]:
            return "stall"
        return "idle" if c[0] or c[2] else "empty"

    def account(self, kind: str, n: int = 1) -> None:
        """Add ``n`` cycles of class ``kind`` to the counters."""
        if kind == "active":
            self.stats.active_cycles += n
        elif kind == "stall":
            self.stats.stall_cycles += n
        elif kind == "idle":
            self.stats.idle_cycles += n
        else:
            self.stats.empty_cycles += n
