"""Tables V & VI: IPC and resident blocks vs register-sharing fraction."""

from conftest import run_once

from repro.harness.experiments import run_experiment
from repro.harness.report import render_experiment

#: Paper Table VI, reproduced exactly by Eq. 4.
PAPER_TABLE6 = {
    "backprop": [5, 5, 5, 5, 6, 6],
    "b+tree": [2, 2, 2, 3, 3, 3],
    "hotspot": [3, 3, 3, 4, 4, 6],
    "LIB": [4, 4, 5, 5, 6, 8],
    "MUM": [4, 4, 4, 5, 5, 6],
    "mri-q": [5, 5, 5, 5, 6, 6],
    "sgemm": [5, 5, 5, 5, 6, 8],
    "stencil": [2, 2, 2, 2, 2, 3],
}

PCTS = ["0%", "10%", "30%", "50%", "70%", "90%"]


def test_table6_resident_blocks(benchmark, bench_config, bench_params,
                                capsys):
    res = run_once(benchmark, run_experiment, exp_id="table6",
                   config=bench_config, **bench_params)
    with capsys.disabled():
        print("\n" + render_experiment(res))
    for row in res.rows:
        assert [row[p] for p in PCTS] == PAPER_TABLE6[row["app"]], row["app"]


def test_table5_ipc_sweep(benchmark, bench_config, bench_params, capsys):
    res = run_once(benchmark, run_experiment, exp_id="table5",
                   config=bench_config, **bench_params)
    with capsys.disabled():
        print("\n" + render_experiment(res))
    # Paper: 0% and 10% sharing behave identically (no extra blocks ->
    # everything launches unshared).
    for row in res.rows:
        assert row["0%"] == row["10%"], row["app"]
