"""Fig. 11: sharing vs doubling the physical resource (LRR baseline)."""

from conftest import run_once

from repro.harness.experiments import run_experiment
from repro.harness.report import render_experiment


def test_fig11a_vs_double_registers(benchmark, bench_config, bench_params,
                                    capsys):
    res = run_once(benchmark, run_experiment, exp_id="fig11a",
                   config=bench_config, **bench_params)
    with capsys.disabled():
        print("\n" + render_experiment(res))
    # Paper: sharing at 32K registers beats the 64K LRR baseline on 5 of
    # 8 applications; our winner set is smaller (see EXPERIMENTS.md) but
    # the mixed verdict — sharing competitive with doubled hardware on
    # several apps — must hold.
    wins = sum(1 for r in res.rows if r["shared_wins"])
    assert wins >= 1
    # ...and sharing stays competitive (within 25%) on most apps even
    # against doubled physical registers.
    close = sum(1 for r in res.rows
                if r["ipc_shared"] >= 0.75 * r["ipc_2x_regs"])
    assert close >= 6


def test_fig11b_vs_double_scratchpad(benchmark, bench_config, bench_params,
                                     capsys):
    res = run_once(benchmark, run_experiment, exp_id="fig11b",
                   config=bench_config, **bench_params)
    with capsys.disabled():
        print("\n" + render_experiment(res))
    rows = {r["app"]: r for r in res.rows}
    # Paper: lavaMD is comparable-or-better vs the doubled-scratchpad
    # baseline, and several apps match the doubled baseline outright.
    assert rows["lavaMD"]["ipc_shared"] >= 0.95 * rows["lavaMD"]["ipc_2x_smem"]
    wins = sum(1 for r in res.rows if r["shared_wins"])
    assert wins >= 2
