"""Per-application synthetic kernels (paper Tables II, III, IV).

Resource signatures (threads/block, registers/thread, scratchpad/block)
are copied from the paper's tables, so occupancy, Eq. 4 block counts and
pairing decisions are *exact* reproductions.  Instruction bodies are
synthetic stand-ins tuned to the behaviour class the paper describes for
each app — see DESIGN.md §2 for the substitution argument.

The ``paper`` dict on each app records the numbers the paper reports
(baseline/shared resident blocks, Fig. 8 IPC improvement) for the
EXPERIMENTS.md comparison.  Where the paper's prose and figures disagree
(CONV1/CONV2 and SRAD2 percentages are quoted differently in Sec. VI-B),
the Fig. 8 values are stored.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.isa.builder import KernelBuilder
from repro.isa.kernel import Kernel
from repro.isa.opcodes import Pattern

__all__ = ["App", "APPS", "build_app"]

KB = 1024


@dataclass(frozen=True)
class App:
    """A named synthetic application."""

    name: str
    suite: str
    set_id: int                      # 1, 2 or 3 (paper table membership)
    limiter: str                     # expected occupancy limiter
    build: Callable[[float], Kernel]
    paper: dict = field(default_factory=dict)

    def kernel(self, scale: float = 1.0) -> Kernel:
        """Build the kernel (``grid_blocks`` is a placeholder of 1; the
        harness sizes the grid to the machine)."""
        return self.build(scale)


def _L(base: int, scale: float) -> int:
    """Scaled loop trip count (≥ 2 so loops stay loops)."""
    return max(2, round(base * scale))


# ----------------------------------------------------------------------
# Set-1: register-limited (Table II)
# ----------------------------------------------------------------------

def _backprop(scale: float) -> Kernel:
    # bpnn_adjust_weights_cuda: streaming weight update, high baseline
    # occupancy (5 blocks), small headroom -> small sharing gain.
    b = KernelBuilder("backprop", block_size=256, regs=24, seed=101,
                      variance=0.15)
    with b.loop(_L(48, scale)):
        b.ldg(region="w", footprint=64 * KB, block_private=False)
        b.alu_chain(1)
        b.alu_indep(2)
    b.stg(region="out", footprint=512 * KB)
    return b.build()


def _btree(scale: float) -> Kernel:
    # findRangeK: pointer-chasing tree search, mildly divergent loads.
    b = KernelBuilder("b+tree", block_size=508, regs=24, seed=102,
                      variance=0.45)
    with b.loop(_L(40, scale)):
        b.ldg(region="tree", footprint=256 * KB, block_private=False,
              pattern=Pattern.RANDOM, txn=1)
        b.alu_chain(2)
        b.alu_indep(3)
    b.stg(region="out", footprint=256 * KB)
    return b.build()


def _hotspot(scale: float) -> Kernel:
    # calculate_temp: compute-heavy grid stencil, L2-resident input; the
    # paper's flagship register-sharing win (3 -> 6 blocks).
    b = KernelBuilder("hotspot", block_size=256, regs=36, seed=103,
                      variance=0.35)
    with b.loop(_L(50, scale)):
        b.ldg(region="temp", footprint=256 * KB, block_private=False)
        b.alu_chain(2)
        b.alu_indep(4)
    b.stg(region="out", footprint=256 * KB)
    return b.build()


def _lib(scale: float) -> Kernel:
    # Pathcalc_Portfolio_KernelGPU: Monte-Carlo path walk whose per-block
    # state just fits L2 at 4 blocks/SM; extra blocks thrash L2 (paper:
    # +0.84% only, "increase in L2 cache misses").
    b = KernelBuilder("LIB", block_size=192, regs=36, seed=104,
                      variance=0.25)
    with b.loop(_L(56, scale)):
        b.ldg(region="paths", footprint=8 * KB, block_private=True)
        b.alu_chain(1)
        b.alu_indep(2)
    b.stg(region="out", footprint=64 * KB)
    return b.build()


def _mum(scale: float) -> Kernel:
    # mummergpuKernel: divergent suffix-tree walk (RANDOM, 4 txn/access)
    # plus a small L1-resident node cache that extra blocks thrash; the
    # paper's flagship Dyn+OWF case (-0.15% unoptimised, +24% full stack).
    b = KernelBuilder("MUM", block_size=256, regs=28, seed=105,
                      variance=0.6)
    with b.loop(_L(36, scale)):
        b.ldg(region="nodecache", footprint=2 * KB, block_private=False)
        b.alu_chain(1)
        b.ldg(region="suffix", footprint=384 * KB, block_private=False,
              pattern=Pattern.RANDOM, txn=1)
        b.alu_chain(2)
        b.alu_indep(3)
    b.stg(region="out", footprint=256 * KB)
    return b.build()


def _mriq(scale: float) -> Kernel:
    # ComputeQ_GPU: trigonometry-heavy (SFU) with an L1-resident lookup
    # slice per block; 5 blocks fit L1, 6 thrash it (paper: -0.72%).
    b = KernelBuilder("mri-q", block_size=256, regs=24, seed=106,
                      variance=0.15)
    with b.loop(_L(40, scale)):
        b.ldg(region="traj", footprint=3328, block_private=True)
        b.sfu(1)
        b.ldg(region="traj", footprint=3328, block_private=True)
        b.alu_chain(3)
        b.alu_indep(3)
    b.stg(region="out", footprint=128 * KB)
    return b.build()


def _sgemm(scale: float) -> Kernel:
    # mysgemmNT: tile-broadcast loads + long FFMA chains.  Declaration
    # order matters here: the paper's Fig. 7 unroll example is sgemm, so
    # the builder's high_first allocation makes the first instructions
    # touch late-declared (shared) registers until the pass fixes it.
    b = KernelBuilder("sgemm", block_size=128, regs=48, seed=107,
                      alloc="high_first", variance=0.15)
    with b.loop(_L(44, scale)):
        b.ldg(region="tileA", footprint=4 * KB, block_private=False,
              pattern=Pattern.BROADCAST)
        b.ldg(region="tileB", footprint=1536, block_private=True)
        b.alu_chain(5)
        b.alu_indep(3)
    b.stg(region="C", footprint=256 * KB)
    return b.build()


def _stencil(scale: float) -> Kernel:
    # block2D_hybrid_coarsen_x: 2 halo reads + compute per point, only 2
    # resident blocks at baseline -> large latency-hiding headroom.
    b = KernelBuilder("stencil", block_size=512, regs=28, seed=108,
                      variance=0.3)
    with b.loop(_L(36, scale)):
        b.ldg(region="in0", footprint=384 * KB, block_private=False)
        b.alu_chain(2)
        b.alu_indep(3)
    b.stg(region="out", footprint=384 * KB)
    return b.build()


# ----------------------------------------------------------------------
# Set-2: scratchpad-limited (Table III)
# ----------------------------------------------------------------------

def _spad_sweep(b: KernelBuilder, smem: int, loops: int, *,
                alu_chain: int, alu_indep: int, footprint: int,
                shared_input: bool = True, barrier_in_loop: bool = False,
                touched: int | None = None) -> None:
    """Common Set-2 body: global load, scratchpad offsets sweeping
    0 → smem across the loop (so the sharing threshold ``t`` directly
    controls how many iterations stay in the private partition), compute,
    and a final store."""
    wrap = touched if touched is not None else smem
    stride = max(1, wrap // max(2, loops))
    b.ldg(region="in", footprint=footprint, block_private=not shared_input)
    b.sts(offset=0, stride=stride, wrap=wrap)
    b.bar()
    with b.loop(loops):
        b.lds(offset=0, stride=stride, wrap=wrap)
        b.alu_chain(alu_chain)
        b.alu_indep(alu_indep)
        b.sts(offset=1, stride=stride, wrap=wrap)
        if barrier_in_loop:
            b.bar()
    b.bar()
    b.stg(region="out", footprint=footprint)


def _conv1(scale: float) -> Kernel:
    # convolutionRowsKernel: small blocks (2 warps), 6 -> 8 resident.
    b = KernelBuilder("CONV1", block_size=64, regs=16, smem=2560, seed=201)
    _spad_sweep(b, 2560, _L(36, scale), alu_chain=4, alu_indep=4,
                footprint=256 * KB)
    return b.build()


def _conv2(scale: float) -> Kernel:
    # convolutionColumnsKernel: 3 -> 4 resident blocks.
    b = KernelBuilder("CONV2", block_size=128, regs=16, smem=5184, seed=202)
    _spad_sweep(b, 5184, _L(36, scale), alu_chain=4, alu_indep=5,
                footprint=256 * KB)
    return b.build()


def _lavamd(scale: float) -> Kernel:
    # kernel_gpu_cuda: declares 7200 B but the simulated input touches
    # only a small prefix, so *no* access lands in the shared region
    # (paper Sec. VI-B) and both shared blocks run unhindered: 2 -> 4
    # blocks, the paper's biggest scratchpad win (+30%).
    b = KernelBuilder("lavaMD", block_size=128, regs=16, smem=7200, seed=203)
    b.ldg(region="box", footprint=128 * KB, block_private=True)
    b.sts(offset=0, stride=64, wrap=640)
    b.bar()
    with b.loop(_L(30, scale)):
        b.ldg(region="pos", footprint=12 * KB, block_private=False)
        b.alu_chain(9)
        b.lds(offset=0, stride=96, wrap=640)
        b.alu_chain(8)
        b.alu_indep(8)
        b.sts(offset=32, stride=96, wrap=640)
    b.bar()
    b.stg(region="out", footprint=128 * KB)
    return b.build()


def _nw(which: int) -> Callable[[float], Kernel]:
    # needle_cuda_shared_1/2: 16-thread blocks (one warp), wavefront with
    # barriers; gains come purely from the 8th resident block.
    def build(scale: float) -> Kernel:
        b = KernelBuilder(f"NW{which}", block_size=16, regs=16, smem=2180,
                          seed=210 + which)
        _spad_sweep(b, 2180, _L(28, scale), alu_chain=3, alu_indep=3,
                    footprint=128 * KB, barrier_in_loop=(which == 1))
        return b.build()
    return build


def _srad1(scale: float) -> Kernel:
    # srad_cuda_1: only 2 resident blocks at baseline -> headroom, but
    # the scratchpad sweep crosses into the shared region mid-kernel.
    b = KernelBuilder("SRAD1", block_size=256, regs=16, smem=6144, seed=221)
    _spad_sweep(b, 6144, _L(32, scale), alu_chain=3, alu_indep=4,
                footprint=512 * KB)
    return b.build()


def _srad2(scale: float) -> Kernel:
    # srad_cuda_2: a barrier sits right next to the scratchpad access
    # (paper Sec. VI-B), so non-owner progress stops at the first shared
    # offset and the whole block gates on it.
    b = KernelBuilder("SRAD2", block_size=256, regs=16, smem=5120, seed=222)
    _spad_sweep(b, 5120, _L(32, scale), alu_chain=3, alu_indep=3,
                footprint=512 * KB, barrier_in_loop=True)
    return b.build()


# ----------------------------------------------------------------------
# Set-3: limited by threads or blocks (Table IV)
# ----------------------------------------------------------------------

def _backprop_lf(scale: float) -> Kernel:
    # bpnn_layerforward_CUDA: thread-limited (6 blocks by threads, 8 by
    # registers) -> sharing launches nothing extra.
    b = KernelBuilder("backprop-lf", block_size=256, regs=16, smem=1024,
                      seed=301)
    b.ldg(region="in", footprint=256 * KB, block_private=False)
    b.sts(offset=0, stride=32, wrap=1024)
    b.bar()
    with b.loop(_L(40, scale)):
        b.lds(offset=0, stride=32, wrap=1024)
        b.alu_chain(2)
        b.alu_indep(2)
    b.stg(region="out", footprint=256 * KB)
    return b.build()


def _bfs(scale: float) -> Kernel:
    # BFS Kernel: thread-limited (512-thread blocks), divergent frontier
    # loads, very little compute.
    b = KernelBuilder("BFS", block_size=512, regs=12, seed=302)
    with b.loop(_L(28, scale)):
        b.ldg(region="frontier", footprint=1024 * KB, block_private=False,
              pattern=Pattern.RANDOM, txn=3)
        b.alu_chain(1)
        b.alu_indep(2)
    b.stg(region="out", footprint=256 * KB)
    return b.build()


def _gaussian(scale: float) -> Kernel:
    # FAN2: block-limited (64-thread blocks, 8-block cap), streaming row
    # elimination.
    b = KernelBuilder("gaussian", block_size=64, regs=10, seed=303)
    with b.loop(_L(36, scale)):
        b.ldg(region="mat", footprint=512 * KB, block_private=False)
        b.alu_chain(2)
        b.alu_indep(2)
        b.stg(region="mat2", footprint=512 * KB)
    return b.build()


def _nn(scale: float) -> Kernel:
    # executeSecondLayer: block-limited tiny blocks.
    b = KernelBuilder("NN", block_size=32, regs=12, seed=304)
    with b.loop(_L(32, scale)):
        b.ldg(region="weights", footprint=128 * KB, block_private=False)
        b.alu_chain(3)
        b.alu_indep(2)
    b.stg(region="out", footprint=64 * KB)
    return b.build()


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

APPS: dict[str, App] = {}


def _register(app: App) -> None:
    if app.name in APPS:
        raise ValueError(f"duplicate app {app.name}")
    APPS[app.name] = app


for _app in [
    App("backprop", "GPGPU-Sim", 1, "registers", _backprop,
        paper={"blocks_base": 5, "blocks_shared": 6, "fig8_impr": 5.82,
               "ipc_0": 389.9, "ipc_90": 392.8}),
    App("b+tree", "GPGPU-Sim", 1, "registers", _btree,
        paper={"blocks_base": 2, "blocks_shared": 3, "fig8_impr": 11.98,
               "ipc_0": 318.5, "ipc_90": 326.1}),
    App("hotspot", "RODINIA", 1, "registers", _hotspot,
        paper={"blocks_base": 3, "blocks_shared": 6, "fig8_impr": 21.76,
               "ipc_0": 489.5, "ipc_90": 503.59}),
    App("LIB", "RODINIA", 1, "registers", _lib,
        paper={"blocks_base": 4, "blocks_shared": 8, "fig8_impr": 0.84,
               "ipc_0": 218.0, "ipc_90": 223.3}),
    App("MUM", "RODINIA", 1, "registers", _mum,
        paper={"blocks_base": 4, "blocks_shared": 6, "fig8_impr": 24.14,
               "ipc_0": 190.5, "ipc_90": 194.9}),
    App("mri-q", "PARBOIL", 1, "registers", _mriq,
        paper={"blocks_base": 5, "blocks_shared": 6, "fig8_impr": -0.72,
               "ipc_0": 303.7, "ipc_90": 305.0}),
    App("sgemm", "PARBOIL", 1, "registers", _sgemm,
        paper={"blocks_base": 5, "blocks_shared": 8, "fig8_impr": 4.06,
               "ipc_0": 490.6, "ipc_90": 496.7}),
    App("stencil", "PARBOIL", 1, "registers", _stencil,
        paper={"blocks_base": 2, "blocks_shared": 3, "fig8_impr": 23.45,
               "ipc_0": 448.2, "ipc_90": 440.8}),
    App("CONV1", "CUDA-SDK", 2, "scratchpad", _conv1,
        paper={"blocks_base": 6, "blocks_shared": 8, "fig8_impr": 15.85,
               "ipc_0": 280.33, "ipc_90": 292.24}),
    App("CONV2", "CUDA-SDK", 2, "scratchpad", _conv2,
        paper={"blocks_base": 3, "blocks_shared": 4, "fig8_impr": 4.33,
               "ipc_0": 119.29, "ipc_90": 124.6}),
    App("lavaMD", "RODINIA", 2, "scratchpad", _lavamd,
        paper={"blocks_base": 2, "blocks_shared": 4, "fig8_impr": 29.96,
               "ipc_0": 452.29, "ipc_90": 578.85}),
    App("NW1", "RODINIA", 2, "scratchpad", _nw(1),
        paper={"blocks_base": 7, "blocks_shared": 8, "fig8_impr": 5.62,
               "ipc_0": 39.96, "ipc_90": 38.37}),
    App("NW2", "RODINIA", 2, "scratchpad", _nw(2),
        paper={"blocks_base": 7, "blocks_shared": 8, "fig8_impr": 9.03,
               "ipc_0": 41.93, "ipc_90": 39.72}),
    App("SRAD1", "RODINIA", 2, "scratchpad", _srad1,
        paper={"blocks_base": 2, "blocks_shared": 4, "fig8_impr": 11.1,
               "ipc_0": 188.13, "ipc_90": 204.32}),
    App("SRAD2", "RODINIA", 2, "scratchpad", _srad2,
        paper={"blocks_base": 3, "blocks_shared": 5, "fig8_impr": 25.73,
               "ipc_0": 63.48, "ipc_90": 68.29}),
    App("backprop-lf", "RODINIA", 3, "threads", _backprop_lf,
        paper={"limited_by": "Threads"}),
    App("BFS", "GPGPU-Sim", 3, "threads", _bfs,
        paper={"limited_by": "Threads"}),
    App("gaussian", "RODINIA", 3, "blocks", _gaussian,
        paper={"limited_by": "Blocks"}),
    App("NN", "GPGPU-Sim", 3, "blocks", _nn,
        paper={"limited_by": "Blocks"}),
]:
    _register(_app)


def build_app(name: str, scale: float = 1.0) -> Kernel:
    """Build an app's kernel by name."""
    try:
        app = APPS[name]
    except KeyError:
        raise ValueError(
            f"unknown app {name!r}; available: {sorted(APPS)}") from None
    return app.kernel(scale)
