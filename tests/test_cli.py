"""Command-line interfaces (``python -m repro`` and ``-m repro.harness``)."""

import pytest

from repro.__main__ import main as repro_main
from repro.harness.__main__ import main as harness_main


class TestReproCli:
    def test_list(self, capsys):
        assert repro_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "hotspot" in out and "shared-reg" in out

    def test_analyze_app(self, capsys):
        assert repro_main(["analyze", "hotspot"]) == 0
        out = capsys.readouterr().out
        assert "3 blocks/SM" in out

    def test_analyze_threshold(self, capsys):
        assert repro_main(["analyze", "hotspot", "-t", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "private regs/thread 18" in out

    def test_disasm(self, capsys):
        assert repro_main(["disasm", "lavaMD"]) == 0
        out = capsys.readouterr().out
        assert ".kernel lavaMD" in out and ".loop" in out

    def test_disasm_file_round_trip(self, tmp_path, capsys):
        repro_main(["disasm", "NW1"])
        text = capsys.readouterr().out
        f = tmp_path / "nw1.kasm"
        f.write_text(text)
        assert repro_main(["analyze", str(f)]) == 0
        assert "NW1" in capsys.readouterr().out

    def test_run_smoke(self, capsys):
        assert repro_main(["run", "gaussian", "--clusters", "1",
                           "--scale", "0.2", "--waves", "1"]) == 0
        out = capsys.readouterr().out
        assert "ipc" in out and "cycles" in out

    def test_unknown_app_errors(self):
        with pytest.raises(SystemExit):
            repro_main(["analyze", "nosuchapp"])


class TestHarnessCli:
    def test_single_experiment(self, capsys):
        assert harness_main(["hw_overhead"]) == 0
        out = capsys.readouterr().out
        assert "register_sharing_bits_per_sm" in out

    def test_fig1(self, capsys):
        assert harness_main(["fig1", "--clusters", "2"]) == 0
        out = capsys.readouterr().out
        assert "hotspot" in out

    def test_unknown_experiment(self):
        with pytest.raises(ValueError):
            harness_main(["fig99"])


class TestTraceCli:
    def test_trace_timeline(self, capsys):
        assert repro_main(["trace", "gaussian", "--first", "8"]) == 0
        out = capsys.readouterr().out
        assert "cycle" in out and "IPC" in out

    def test_trace_sharing_mode(self, capsys):
        assert repro_main(["trace", "hotspot", "--mode",
                           "shared-reg-noopt", "--first", "5"]) == 0
        out = capsys.readouterr().out
        assert "OWN" in out or "NON" in out
