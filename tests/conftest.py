"""Shared test fixtures.

The engine's result cache defaults to ``~/.cache/repro``; tests must
not read from (stale results from another checkout) or write to (pollution)
the user's real cache, so every test gets a private cache directory.
Tests that exercise cache behaviour explicitly pass their own
``cache_dir`` and are unaffected.
"""

import pytest


@pytest.fixture(autouse=True)
def _isolated_result_cache(monkeypatch, tmp_path_factory):
    monkeypatch.setenv("REPRO_CACHE_DIR",
                       str(tmp_path_factory.mktemp("repro-cache")))
