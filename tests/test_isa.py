"""Opcode groups, Instr and MemDesc validation."""

import pytest

from repro.isa.instructions import Instr, MemDesc
from repro.isa.opcodes import (ALU_OPS, GLOBAL_OPS, MEM_OPS, SHARED_OPS,
                               MemSpace, Op, op_group)


def g(footprint=4096, **kw):
    return MemDesc(MemSpace.GLOBAL, footprint=footprint, **kw)


class TestOpGroups:
    def test_every_op_has_a_group(self):
        for op in Op:
            assert op_group(op) in {"alu", "sfu", "global", "shared",
                                    "bar", "exit"}

    def test_alu_ops(self):
        for op in ALU_OPS:
            assert op_group(op) == "alu"

    def test_global_ops(self):
        assert op_group(Op.LDG) == "global"
        assert op_group(Op.STG) == "global"

    def test_shared_ops(self):
        assert op_group(Op.LDS) == "shared"
        assert op_group(Op.STS) == "shared"

    def test_sync_ops(self):
        assert op_group(Op.BAR) == "bar"
        assert op_group(Op.EXIT) == "exit"

    def test_mem_ops_partition(self):
        assert MEM_OPS == GLOBAL_OPS | SHARED_OPS
        assert not GLOBAL_OPS & SHARED_OPS


class TestMemDesc:
    def test_global_requires_positive_footprint(self):
        with pytest.raises(ValueError):
            MemDesc(MemSpace.GLOBAL, footprint=0)

    def test_txn_bounds(self):
        with pytest.raises(ValueError):
            g(txn=0)
        with pytest.raises(ValueError):
            g(txn=33)
        assert g(txn=32).txn == 32

    def test_shared_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            MemDesc(MemSpace.SHARED, offset=-1)

    def test_shared_defaults(self):
        m = MemDesc(MemSpace.SHARED, offset=8)
        assert m.stride == 0 and m.wrap == 0


class TestInstr:
    def test_mem_op_requires_desc(self):
        with pytest.raises(ValueError):
            Instr(Op.LDG, dst=(0,))

    def test_alu_rejects_desc(self):
        with pytest.raises(ValueError):
            Instr(Op.IADD, dst=(0,), src=(1,), mem=g())

    def test_space_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Instr(Op.LDS, dst=(0,), mem=g())
        with pytest.raises(ValueError):
            Instr(Op.LDG, dst=(0,), mem=MemDesc(MemSpace.SHARED))

    def test_negative_register_rejected(self):
        with pytest.raises(ValueError):
            Instr(Op.IADD, dst=(-1,), src=(0,))

    def test_regs_property_order(self):
        i = Instr(Op.FFMA, dst=(5,), src=(1, 2))
        assert i.regs == (5, 1, 2)

    def test_remap(self):
        i = Instr(Op.FFMA, dst=(5,), src=(1, 2))
        j = i.remap({5: 0, 1: 7})
        assert j.dst == (0,) and j.src == (7, 2)
        assert j.op is Op.FFMA

    def test_remap_preserves_mem(self):
        i = Instr(Op.LDG, dst=(3,), mem=g())
        assert i.remap({3: 0}).mem == i.mem

    def test_frozen(self):
        i = Instr(Op.IADD, dst=(0,), src=(1,))
        with pytest.raises(Exception):
            i.dst = (2,)  # type: ignore[misc]

    def test_bar_and_exit_carry_no_regs(self):
        assert Instr(Op.BAR).regs == ()
        assert Instr(Op.EXIT).regs == ()
