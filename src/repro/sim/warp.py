"""Warp execution context: trace pointer, scoreboard, wait state."""

from __future__ import annotations

from enum import IntEnum
from typing import TYPE_CHECKING

from repro.isa.instructions import Instr
from repro.isa.kernel import Kernel

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.block import BlockContext

__all__ = ["WarpState", "WarpContext", "REG_PENDING"]

#: Scoreboard sentinel: register has an outstanding (memory) write whose
#: completion cycle is unknown.
REG_PENDING = 1 << 62


def _warp_repeats(kernel: Kernel, block_linear: int,
                  slot: int) -> tuple[int, ...]:
    """Per-segment trip counts for one warp under ``work_variance``."""
    v = kernel.work_variance
    if v == 0.0:
        return tuple(seg.repeat for seg in kernel.segments)
    from repro.mem.request import mix64
    out = []
    for si, seg in enumerate(kernel.segments):
        if seg.repeat > 1:
            h = mix64(kernel.seed * 1000003 + block_linear * 8191
                      + slot * 131 + si)
            m = 1.0 + v * (2.0 * (h / 2.0 ** 64) - 1.0)
            out.append(max(1, round(seg.repeat * m)))
        else:
            out.append(seg.repeat)
    return tuple(out)


class WarpState(IntEnum):
    """Why a warp is (not) schedulable."""

    READY = 0        # may issue its next instruction
    BLOCK_SB = 1     # scoreboard hazard, wake cycle known
    BLOCK_MEM = 2    # waiting for an outstanding load (wake on response)
    BLOCK_BAR = 3    # waiting at a barrier
    BLOCK_LOCK = 4   # busy-waiting for a shared resource lock
    BLOCK_DYN = 5    # refused by the Dyn controller until window end
    BLOCK_RETRY = 6  # structural hazard (MSHR full), timed retry
    FINISHED = 7


class WarpContext:
    """One resident warp."""

    __slots__ = (
        "dynamic_id", "slot", "block", "kernel",
        "_seg", "_pc", "_instrs", "iter_idx", "repeats",
        "reg_ready", "outstanding_loads",
        "state", "wake_token", "issued", "shared_done",
        "instr", "sched", "pend_valid", "pend_lines", "pend_gen",
    )

    def __init__(self, dynamic_id: int, slot: int, block: "BlockContext",
                 kernel: Kernel) -> None:
        #: SM-wide launch sequence number; GTO age and LRR order key.
        self.dynamic_id = dynamic_id
        #: Index of this warp within its thread block (pairing slot).
        self.slot = slot
        self.block = block
        self.kernel = kernel
        self._seg = 0
        self._pc = 0
        #: Loop iteration (segment repetition) of the current instruction.
        self.iter_idx = 0
        #: The current segment's instruction list (hot in :meth:`advance`).
        self._instrs = kernel.segments[0].instrs
        #: Per-segment trip counts, scaled by the kernel's work_variance
        #: with a deterministic per-(block, warp, segment) factor.
        self.repeats = _warp_repeats(kernel, block.linear_id, slot)
        #: Per-register ready cycle; REG_PENDING while a load is in flight.
        self.reg_ready = [0] * kernel.regs_per_thread
        self.outstanding_loads = 0
        self.state = WarpState.READY
        #: Invalidates stale timed wake events after state changes.
        self.wake_token = 0
        #: Dynamic instructions issued by this warp (conservation checks).
        self.issued = 0
        #: Early-release extension: set once live-range analysis proves
        #: this warp will never touch its shared register pool again.
        self.shared_done = False
        #: The next instruction to issue, kept in sync by :meth:`advance`
        #: (caching it avoids two indexed lookups per scheduler probe).
        self.instr: Instr = kernel.segments[0].instrs[0]
        #: Scheduler this warp is partitioned onto (set at launch).
        self.sched = None
        #: Pending-access cache: coalesced line addresses of a global
        #: access that was rejected by a full MSHR array.  The line set
        #: of a dynamic access is a pure function of the trace position,
        #: and :meth:`advance` clears ``pend_valid`` whenever the
        #: position moves, so while the flag is set the cache belongs to
        #: the current instruction and MSHR retries reuse it instead of
        #: re-coalescing.  ``pend_gen`` snapshots the L1 mutation
        #: generation at the failed attempt: if it is unchanged at retry
        #: time, the L1's admission decision is provably identical and
        #: the reject is replayed in O(1) (see SMCore._try_issue).
        self.pend_valid = False
        self.pend_lines: tuple[int, ...] = ()
        self.pend_gen = -1

    # ------------------------------------------------------------------
    # trace navigation
    # ------------------------------------------------------------------
    @property
    def current_instr(self) -> Instr:
        """The next instruction this warp will issue."""
        return self.instr

    def advance(self) -> None:
        """Move the trace pointer past the just-issued instruction."""
        instrs = self._instrs
        pc = self._pc + 1
        if pc < len(instrs):
            # Common case: next instruction in the same segment pass.
            self._pc = pc
            self.instr = instrs[pc]
            self.pend_valid = False
            return
        self._pc = 0
        rep = self.iter_idx + 1
        if rep == self.repeats[self._seg]:
            rep = 0
            self._seg += 1
            # EXIT is the last instruction; the SM marks the warp
            # FINISHED instead of advancing past the end.
            self._instrs = instrs = self.kernel.segments[self._seg].instrs
        self.iter_idx = rep
        self.instr = instrs[0]
        self.pend_valid = False

    @property
    def trace_position(self) -> tuple[int, int, int]:
        """Current (segment, repetition, pc) — the next instruction."""
        return (self._seg, self.iter_idx, self._pc)

    @property
    def expected_instructions(self) -> int:
        """Dynamic instructions this warp will issue in total."""
        return sum(len(seg.instrs) * rep for seg, rep
                   in zip(self.kernel.segments, self.repeats))

    # ------------------------------------------------------------------
    # scoreboard
    # ------------------------------------------------------------------
    def earliest_issue(self) -> int:
        """Cycle at which the current instruction's operands are ready.

        ``REG_PENDING`` means some operand waits on an in-flight load.
        """
        ready = 0
        rr = self.reg_ready
        for r in self.instr.regs:
            v = rr[r]
            if v > ready:
                ready = v
        return ready

    def bump_token(self) -> int:
        """Invalidate outstanding timed wakes; returns the new token."""
        self.wake_token += 1
        return self.wake_token

    # ------------------------------------------------------------------
    # classification (paper: unshared / shared owner / shared non-owner)
    # ------------------------------------------------------------------
    def owf_class(self) -> int:
        """0 = shared owner, 1 = unshared, 2 = shared non-owner."""
        pair = self.block.pair
        if pair is None:
            return 1
        return 0 if pair.owner_side() == self.block.side else 2

    @property
    def is_shared(self) -> bool:
        """True when this warp's block participates in a sharing pair."""
        return self.block.pair is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Warp id={self.dynamic_id} blk={self.block.linear_id} "
                f"slot={self.slot} {self.state.name}>")
