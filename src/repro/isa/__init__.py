"""A small PTX-like instruction set for synthetic GPU kernels.

The simulator does not execute real CUDA; kernels are straight-line
sequences of :class:`~repro.isa.instructions.Instr` records organised into
repeated :class:`~repro.isa.kernel.Segment`\\ s.  Each instruction names the
per-thread register sequence numbers it reads/writes (which is exactly the
granularity the paper's register-sharing mechanism and the
unroll-and-reorder pass operate on) and, for memory operations, a compact
descriptor of the warp's access pattern.
"""

from repro.isa.opcodes import Op, MemSpace, Pattern, op_group
from repro.isa.instructions import Instr, MemDesc
from repro.isa.kernel import Segment, Kernel
from repro.isa.builder import KernelBuilder
from repro.isa.assembler import assemble, disassemble, AsmError

__all__ = [
    "Op",
    "MemSpace",
    "Pattern",
    "op_group",
    "Instr",
    "MemDesc",
    "Segment",
    "Kernel",
    "KernelBuilder",
    "assemble",
    "disassemble",
    "AsmError",
]
