"""Coalescer and address map."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.instructions import MemDesc
from repro.isa.opcodes import MemSpace, Pattern
from repro.mem.request import AddressMap, coalesce_lines, mix64

LINE = 128


def desc(pattern=Pattern.COALESCED, txn=1, footprint=16 * 1024,
         block_private=True, region="r"):
    return MemDesc(MemSpace.GLOBAL, pattern=pattern, txn=txn,
                   footprint=footprint, block_private=block_private,
                   region=region)


def lines(mem, block=0, warp=0, it=0, amap=None, seed=0):
    return coalesce_lines(mem or desc(), amap or AddressMap(),
                          block_linear=block, warp_in_block=warp,
                          warps_per_block=8, iter_idx=it, line_size=LINE,
                          seed=seed)


class TestAddressMap:
    def test_region_bases_distinct(self):
        a = AddressMap()
        assert a.region_base("a") != a.region_base("b")

    def test_region_base_stable(self):
        a = AddressMap()
        assert a.region_base("x") == a.region_base("x")

    def test_block_private_slices_disjoint(self):
        a = AddressMap()
        m = desc(footprint=4096)
        b0 = a.block_base(m, 0)
        b1 = a.block_base(m, 1)
        assert abs(b1 - b0) >= m.footprint

    def test_shared_region_same_base(self):
        a = AddressMap()
        m = desc(block_private=False)
        assert a.block_base(m, 0) == a.block_base(m, 7)

    def test_line_alignment(self):
        for pat, txn in [(Pattern.COALESCED, 1), (Pattern.STRIDED, 4),
                         (Pattern.RANDOM, 4), (Pattern.BROADCAST, 1)]:
            for ln in lines(desc(pattern=pat, txn=txn)):
                assert ln % LINE == 0


class TestPatterns:
    def test_coalesced_single_transaction(self):
        assert len(lines(desc())) == 1

    def test_broadcast_single_transaction(self):
        assert len(lines(desc(pattern=Pattern.BROADCAST, txn=4))) == 1

    def test_strided_txn_count(self):
        out = lines(desc(pattern=Pattern.STRIDED, txn=4))
        assert len(out) == 4
        assert len(set(out)) == 4  # distinct lines

    def test_random_txn_count(self):
        out = lines(desc(pattern=Pattern.RANDOM, txn=8))
        assert len(out) == 8

    def test_coalesced_advances_with_iteration(self):
        m = desc()
        assert lines(m, it=0) != lines(m, it=1)

    def test_coalesced_wraps_in_footprint(self):
        m = desc(footprint=4 * LINE)
        base = AddressMap().block_base(m, 0)
        for it in range(20):
            (ln,) = lines(m, it=it)
            assert base // LINE * LINE <= ln < base + 4 * LINE

    def test_warps_get_different_lines(self):
        m = desc()
        assert lines(m, warp=0) != lines(m, warp=1)

    def test_random_deterministic(self):
        m = desc(pattern=Pattern.RANDOM, txn=4)
        a = AddressMap(seed=3)
        b = AddressMap(seed=3)
        assert coalesce_lines(m, a, block_linear=1, warp_in_block=2,
                              warps_per_block=8, iter_idx=5, line_size=LINE,
                              seed=9) == \
            coalesce_lines(m, b, block_linear=1, warp_in_block=2,
                           warps_per_block=8, iter_idx=5, line_size=LINE,
                           seed=9)

    def test_random_varies_with_seed(self):
        m = desc(pattern=Pattern.RANDOM, txn=4, footprint=1 << 20)
        assert lines(m, seed=1) != lines(m, seed=2)


class TestMix64:
    def test_deterministic(self):
        assert mix64(42) == mix64(42)

    def test_64bit(self):
        for x in (0, 1, 1 << 63, (1 << 64) - 1):
            assert 0 <= mix64(x) < (1 << 64)

    def test_avalanche(self):
        # neighbouring inputs should differ in many bits
        diff = bin(mix64(1000) ^ mix64(1001)).count("1")
        assert diff > 10


@given(pat=st.sampled_from(list(Pattern)), txn=st.integers(1, 32),
       block=st.integers(0, 200), warp=st.integers(0, 15),
       it=st.integers(0, 500),
       footprint=st.integers(LINE, 1 << 22))
@settings(max_examples=200, deadline=None)
def test_property_lines_always_inside_region(pat, txn, block, warp, it,
                                             footprint):
    m = desc(pattern=pat, txn=txn, footprint=footprint)
    amap = AddressMap()
    base = amap.block_base(m, block)
    lo = base // LINE * LINE
    hi = base + footprint + LINE
    out = coalesce_lines(m, amap, block_linear=block, warp_in_block=warp,
                         warps_per_block=16, iter_idx=it, line_size=LINE,
                         seed=7)
    n_expected = 1 if pat in (Pattern.COALESCED, Pattern.BROADCAST) else txn
    assert len(out) == n_expected
    for ln in out:
        assert ln % LINE == 0
        assert lo <= ln <= hi
