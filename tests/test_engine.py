"""Execution engine: RunSpec digests, result cache, parallel equality."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.config import GPUConfig
from repro.core.sharing import SharedResource
from repro.harness.engine import (Engine, ResultCache, RunSpec, code_salt,
                                  kernel_fingerprint)
from repro.harness.runner import run, shared, unshared
from repro.workloads.apps import APPS

CFG = GPUConfig().scaled(num_clusters=1)
FAST = dict(config=CFG, scale=0.15, waves=1.0)


def spec(app="gaussian", mode=None, **kw):
    params = {**FAST, **kw}
    return RunSpec.create(APPS[app], mode or unshared("lrr"), **params)


class TestRunSpec:
    def test_hashable_and_equal(self):
        assert spec() == spec()
        assert hash(spec()) == hash(spec())
        assert spec() != spec(mode=unshared("gto"))

    def test_digest_stable_within_process(self):
        assert spec().digest() == spec().digest()

    def test_digest_distinguishes_every_knob(self):
        base = spec()
        variants = [
            spec(app="hotspot"),
            spec(mode=unshared("gto")),
            spec(mode=shared(SharedResource.REGISTERS, "owf", unroll=True)),
            spec(scale=0.2),
            spec(waves=2.0),
            spec(config=GPUConfig().scaled(num_clusters=2)),
            spec(grid_blocks=7),
            spec(max_cycles=1000),
        ]
        digests = {base.digest()} | {v.digest() for v in variants}
        assert len(digests) == len(variants) + 1

    def test_digest_stable_across_processes(self):
        d = spec(mode=shared(SharedResource.SCRATCHPAD, "owf", t=0.3)).digest()
        src = Path(repro.__file__).resolve().parent.parent
        code = (
            "from repro.config import GPUConfig\n"
            "from repro.core.sharing import SharedResource\n"
            "from repro.harness.engine import RunSpec\n"
            "from repro.harness.runner import shared\n"
            "from repro.workloads.apps import APPS\n"
            "print(RunSpec.create(APPS['gaussian'],"
            " shared(SharedResource.SCRATCHPAD, 'owf', t=0.3),"
            " config=GPUConfig().scaled(num_clusters=1),"
            " scale=0.15, waves=1.0).digest())\n")
        out = subprocess.run([sys.executable, "-c", code],
                             capture_output=True, text=True, check=True,
                             env={**os.environ, "PYTHONPATH": str(src)})
        assert out.stdout.strip() == d

    def test_dict_round_trip(self):
        s = spec(mode=shared(SharedResource.REGISTERS, "owf", t=0.5,
                             unroll=True, dyn=True))
        restored = RunSpec.from_dict(json.loads(json.dumps(s.to_dict())))
        assert restored == s
        assert restored.digest() == s.digest()

    def test_execute_matches_runner(self):
        s = spec()
        assert s.execute() == run(APPS["gaussian"], unshared("lrr"), **FAST)

    def test_adhoc_kernel_spec(self):
        kernel = APPS["gaussian"].kernel(FAST["scale"])
        s = RunSpec.create(kernel, unshared("lrr"), config=CFG, waves=1.0)
        assert s.app is None and s.kernel is kernel
        assert s.kernel_fp == kernel_fingerprint(kernel)

    def test_deserialized_adhoc_spec_not_runnable(self):
        kernel = APPS["gaussian"].kernel(FAST["scale"])
        s = RunSpec.create(kernel, unshared("lrr"), config=CFG)
        restored = RunSpec.from_dict(s.to_dict())
        with pytest.raises(ValueError, match="ad-hoc"):
            restored.target()

    def test_code_salt_in_digest(self):
        # digest == sha256 over {salt, spec}; same spec + same tree → same
        # digest, and the salt is a fixed-size hex string
        assert len(code_salt()) == 16
        int(code_salt(), 16)


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        s = spec()
        res = s.execute()
        cache.put(s.digest(), s, res, 0.5)
        assert cache.get(s.digest()) == res

    def test_miss_returns_none(self, tmp_path):
        assert ResultCache(tmp_path).get("0" * 64) is None

    def test_corrupt_entry_is_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        d = spec().digest()
        cache.path(d).parent.mkdir(parents=True)
        cache.path(d).write_text("{not json")
        assert cache.get(d) is None

    def test_schema_mismatch_is_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        s = spec()
        cache.put(s.digest(), s, s.execute(), 0.0)
        payload = json.loads(cache.path(s.digest()).read_text())
        payload["schema"] = 999
        cache.path(s.digest()).write_text(json.dumps(payload))
        assert cache.get(s.digest()) is None

    def test_layout(self, tmp_path):
        cache = ResultCache(tmp_path)
        d = "ab" + "0" * 62
        assert cache.path(d) == tmp_path / "ab" / f"{d}.json"


class TestEngine:
    def test_hit_miss_counters(self, tmp_path):
        eng = Engine(jobs=1, cache_dir=tmp_path)
        s = spec()
        r1 = eng.run_one(s)
        assert (eng.stats.sims, eng.stats.hits, eng.stats.misses) == (1, 0, 1)
        r2 = eng.run_one(s)
        assert (eng.stats.sims, eng.stats.hits) == (1, 1)
        assert r1 == r2

    def test_cache_shared_between_engines(self, tmp_path):
        s = spec()
        Engine(jobs=1, cache_dir=tmp_path).run_one(s)
        eng2 = Engine(jobs=1, cache_dir=tmp_path)
        eng2.run_one(s)
        assert eng2.stats.sims == 0 and eng2.stats.hits == 1

    def test_no_cache(self, tmp_path):
        eng = Engine(jobs=1, cache=False)
        eng.run_one(spec())
        eng.run_one(spec())
        assert eng.stats.sims == 2 and eng.stats.hits == 0

    def test_batch_dedupes(self):
        eng = Engine(jobs=1, cache=False)
        a, b = spec(), spec(mode=unshared("gto"))
        results = eng.run_batch([a, b, a, a])
        assert eng.stats.sims == 2 and eng.stats.deduped == 2
        assert results[0] == results[2] == results[3]
        assert results[0] != results[1]

    def test_progress_events(self, tmp_path):
        events = []
        eng = Engine(jobs=1, cache_dir=tmp_path, progress=events.append)
        eng.run_batch([spec(), spec(mode=unshared("gto"))])
        assert [e.index for e in events] == [1, 2]
        assert all(e.total == 2 and not e.cached and e.elapsed > 0
                   for e in events)
        eng.run_one(spec())
        assert events[-1].cached and events[-1].elapsed == 0.0

    def test_cached_result_equals_fresh(self, tmp_path):
        s = spec(mode=shared(SharedResource.REGISTERS, "owf", unroll=True))
        eng = Engine(jobs=1, cache_dir=tmp_path)
        fresh = eng.run_one(s)
        via_cache = Engine(jobs=1, cache_dir=tmp_path).run_one(s)
        assert via_cache == fresh          # dataclass deep equality
        assert via_cache.to_dict() == fresh.to_dict()

    def test_parallel_bit_identical_to_sequential(self):
        # two SET1 apps × two modes, jobs=2 forces the process pool
        specs = [spec(app=a, mode=m)
                 for a in ("gaussian", "hotspot")
                 for m in (unshared("lrr"),
                           shared(SharedResource.REGISTERS, "owf",
                                  unroll=True))]
        seq = Engine(jobs=1, cache=False).run_batch(specs)
        par = Engine(jobs=2, cache=False).run_batch(specs)
        assert par == seq
        assert [r.to_dict() for r in par] == [r.to_dict() for r in seq]

    def test_jobs_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert Engine(cache=False).jobs == 3
        assert Engine(jobs=1, cache=False).jobs == 1

    def test_no_cache_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert Engine(cache_dir=tmp_path).cache is None


class TestExperimentIntegration:
    """The acceptance criteria: warm cache ⇒ zero simulations."""

    def _fig8c(self, engine):
        from repro.harness.experiments import run_experiment
        return run_experiment("fig8c", config=CFG, scale=0.15, waves=1.0,
                              engine=engine)

    def test_fig8c_second_run_zero_sims(self, tmp_path):
        cold = Engine(jobs=1, cache_dir=tmp_path)
        first = self._fig8c(cold)
        assert cold.stats.sims > 0

        warm = Engine(jobs=1, cache_dir=tmp_path)
        second = self._fig8c(warm)
        assert warm.stats.sims == 0
        assert warm.stats.hits == cold.stats.sims
        assert second.rows == first.rows

    def test_experiment_rows_independent_of_jobs(self, tmp_path):
        seq = self._fig8c(Engine(jobs=1, cache=False))
        par = self._fig8c(Engine(jobs=2, cache=False))
        assert par.rows == seq.rows


class TestCancellation:
    def _specs(self, n):
        return [spec(max_cycles=10_000_000 + i) for i in range(n)]

    def test_preset_token_cancels_everything(self):
        import threading
        eng = Engine(jobs=1, cache=False)
        cancel = threading.Event()
        cancel.set()
        results = eng.run_batch(self._specs(3), cancel=cancel)
        assert all(r.category == "cancelled" for r in results)
        assert all(r.attempts == 0 for r in results)
        assert eng.stats.cancelled == 3 and eng.stats.sims == 0

    def test_cancel_mid_batch_keeps_finished_work(self):
        import threading
        eng = Engine(jobs=1, cache=False)
        cancel = threading.Event()
        results = eng.run_batch(self._specs(3), cancel=cancel,
                                progress=lambda ev: cancel.set())
        from repro.sim.stats import RunResult
        assert isinstance(results[0], RunResult)
        assert [r.category for r in results[1:]] == ["cancelled"] * 2
        assert eng.stats.sims == 1 and eng.stats.cancelled == 2

    def test_preset_token_cancels_pool_batch(self):
        import threading
        eng = Engine(jobs=2, cache=False)
        cancel = threading.Event()
        cancel.set()
        results = eng.run_batch(self._specs(4), cancel=cancel)
        assert all(r.category == "cancelled" for r in results)
        assert eng.stats.cancelled == 4 and eng.stats.sims == 0

    def test_cancelled_runs_not_failures_not_cached(self, tmp_path):
        import threading
        cancel = threading.Event()
        cancel.set()
        eng = Engine(jobs=1, cache_dir=tmp_path)
        s = spec()
        eng.run_batch([s], cancel=cancel)
        assert eng.failures == [] and eng.stats.failures == 0
        fresh = Engine(jobs=1, cache_dir=tmp_path)
        fresh.run_one(s)
        assert fresh.stats.sims == 1  # nothing was cached for it


class TestOnComplete:
    def test_fires_for_sim_hit_and_cancelled(self, tmp_path):
        import threading
        events = []
        eng = Engine(jobs=1, cache_dir=tmp_path)
        eng.run_batch([spec()], on_complete=events.append)
        assert len(events) == 1 and not events[0].cached
        eng.run_batch([spec()], on_complete=events.append)
        assert len(events) == 2 and events[1].cached
        cancel = threading.Event()
        cancel.set()
        eng.run_batch([spec(app="hotspot")], cancel=cancel,
                      on_complete=events.append)
        assert events[2].result.category == "cancelled"

    def test_fires_once_per_unique_digest(self):
        events = []
        eng = Engine(jobs=1, cache=False)
        s = spec()
        eng.run_batch([s, s, s], on_complete=events.append)
        assert len(events) == 1
        assert eng.stats.deduped == 2

    def test_coexists_with_progress(self):
        seen = {"progress": [], "complete": []}
        eng = Engine(jobs=1, cache=False)
        eng.run_batch([spec()],
                      progress=seen["progress"].append,
                      on_complete=seen["complete"].append)
        assert seen["progress"] == seen["complete"]
        assert len(seen["progress"]) == 1

    def test_fires_for_failures(self):
        from repro.harness.faults import FaultInjector
        s = spec()
        inj = FaultInjector().add(s.digest(), "error")
        events = []
        eng = Engine(jobs=1, cache=False, faults=inj)
        eng.run_batch([s], on_complete=events.append)
        assert events[0].result.category == "error"


class TestQuarantinePrune:
    def _corrupt(self, cache, s):
        d = s.digest()
        cache.path(d).parent.mkdir(parents=True, exist_ok=True)
        cache.path(d).write_text("{definitely not json")
        return d

    def test_prunes_oldest_beyond_file_cap(self, tmp_path):
        cache = ResultCache(tmp_path, quarantine_max_files=2)
        digests = [self._corrupt(cache, spec(max_cycles=1000 + i))
                   for i in range(5)]
        for i, d in enumerate(digests):
            os.utime(cache.path(d), (i, i))  # deterministic age order
            assert cache.get(d) is None
        assert cache.quarantined == 5
        assert cache.pruned == 3
        left = sorted(p.name for p in cache.quarantine_dir().iterdir())
        assert left == sorted(f"{d}.json" for d in digests[-2:])

    def test_prunes_beyond_byte_cap(self, tmp_path):
        cache = ResultCache(tmp_path, quarantine_max_bytes=30)
        for i in range(3):
            d = self._corrupt(cache, spec(max_cycles=2000 + i))
            cache.get(d)
        files = list(cache.quarantine_dir().iterdir())
        assert sum(p.stat().st_size for p in files) <= 30
        assert cache.pruned >= 1

    def test_engine_surfaces_pruned_count(self, tmp_path):
        cache = ResultCache(tmp_path, quarantine_max_files=0)
        s = spec()
        self._corrupt(cache, s)
        eng = Engine(jobs=1, cache=cache)
        eng.run_one(s)
        assert eng.stats.quarantined == 1
        assert eng.stats.quarantine_pruned == 1
        assert not list(cache.quarantine_dir().iterdir())
