"""Resilience layer: RunFailure records, retries, timeouts, quarantine."""

import json

import pytest

from repro.config import GPUConfig
from repro.harness.engine import (CACHE_SCHEMA, Engine, ResultCache, RunSpec,
                                  code_salt)
from repro.harness.faults import (FaultInjector, InjectedCrash, InjectedError,
                                  corrupt_cache_entry)
from repro.harness.resilience import (CATEGORIES, BatchReport, RetryPolicy,
                                      RunCancelled, RunFailure,
                                      RunTimeoutError, categorize,
                                      split_results)
from repro.harness.runner import unshared
from repro.sim.gpu import SimulationDeadlock, SimulationLimitExceeded
from repro.sim.sanitizer import SanitizerViolation
from repro.workloads.apps import APPS

CFG = GPUConfig().scaled(num_clusters=1)
FAST = dict(config=CFG, scale=0.15, waves=1.0)


def spec(app="gaussian", mode=None, **kw):
    params = {**FAST, **kw}
    return RunSpec.create(APPS[app], mode or unshared("lrr"), **params)


class TestCategorize:
    def test_mapping(self):
        assert categorize(SimulationDeadlock("x")) == "deadlock"
        assert categorize(SimulationLimitExceeded("x")) == "limit"
        assert categorize(SanitizerViolation("x")) == "sanitizer"
        assert categorize(RunTimeoutError("x")) == "timeout"
        assert categorize(InjectedCrash("x")) == "crash"
        assert categorize(InjectedError("x")) == "error"
        assert categorize(RunCancelled("x")) == "cancelled"
        assert categorize(ValueError("x")) == "error"

    def test_every_category_reachable(self):
        excs = [SimulationDeadlock("x"), SimulationLimitExceeded("x"),
                SanitizerViolation("x"), RunTimeoutError("x"),
                InjectedCrash("x"), ValueError("x"),
                RunCancelled("x")]
        assert {categorize(e) for e in excs} == set(CATEGORIES)


class TestRunFailure:
    def _failure(self):
        s = spec()
        try:
            raise SimulationDeadlock("no ready warps, no events")
        except SimulationDeadlock as exc:
            return RunFailure.from_exception(s, s.digest(), exc,
                                             attempts=2, elapsed=1.5)

    def test_from_exception_fields(self):
        f = self._failure()
        assert f.category == "deadlock"
        assert f.exception_type == "SimulationDeadlock"
        assert f.app == "gaussian"
        assert f.mode == "Unshared-LRR"
        assert f.attempts == 2
        assert not f.ok
        assert "SimulationDeadlock" in f.traceback_tail

    def test_json_round_trip(self):
        f = self._failure()
        blob = json.dumps(f.to_dict())
        assert RunFailure.from_dict(json.loads(blob)) == f

    def test_describe_one_line(self):
        d = self._failure().describe()
        assert "\n" not in d
        assert "gaussian" in d and "deadlock" in d


class TestRetryPolicy:
    def test_exponential_backoff_capped(self):
        p = RetryPolicy(backoff_base=0.05, backoff_factor=4.0,
                        backoff_max=2.0)
        assert p.delay(1) == pytest.approx(0.05)
        assert p.delay(2) == pytest.approx(0.2)
        assert p.delay(3) == pytest.approx(0.8)
        assert p.delay(4) == 2.0  # capped
        assert p.delay(0) == 0.0

    def test_only_transient_categories_retry(self):
        p = RetryPolicy()
        assert p.retryable("crash")
        for cat in ("deadlock", "limit", "sanitizer", "error", "timeout"):
            assert not p.retryable(cat)

    def test_retry_timeouts_opt_in(self):
        assert RetryPolicy(retry_timeouts=True).retryable("timeout")

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)


class TestBatchReport:
    def test_partition_and_summary(self):
        s = spec()
        f = RunFailure.from_exception(s, s.digest(), ValueError("boom"),
                                      attempts=1)
        eng = Engine(jobs=1, cache=False)
        (ok,) = eng.run_batch([s])
        rep = BatchReport.from_results([ok, f, f])
        assert len(rep.results) == 1 and len(rep.failures) == 2
        assert not rep.ok
        assert rep.by_category() == {"error": 2}
        assert "2 failed" in rep.summary()
        oks, fails = split_results([ok, f])
        assert oks == [ok] and fails == [f]

    def test_all_ok(self):
        assert BatchReport.from_results([]).ok
        assert BatchReport.from_results([]).summary() == "all ok"


class TestInProcessIsolation:
    def test_limit_failure_isolated(self):
        specs = [spec(max_cycles=10), spec(app="hotspot")]
        eng = Engine(jobs=1, cache=False)
        bad, good = eng.run_batch(specs)
        assert isinstance(bad, RunFailure) and bad.category == "limit"
        assert good.ok and good.cycles > 0
        assert eng.stats.failures == 1
        assert eng.failures == [bad]

    def test_fail_fast_reraises(self):
        s = spec()
        inj = FaultInjector().add(s.digest(), "error")
        eng = Engine(jobs=1, cache=False, faults=inj, fail_fast=True)
        with pytest.raises(InjectedError):
            eng.run_batch([s])

    def test_transient_crash_retries_to_success(self):
        s = spec()
        inj = FaultInjector().add(s.digest(), "crash", until_attempt=1)
        eng = Engine(jobs=1, cache=False, faults=inj,
                     retry=RetryPolicy(backoff_base=0.0))
        res = eng.run_one(s)
        assert res.ok
        assert eng.stats.retries == 1
        assert eng.stats.failures == 0

    def test_persistent_crash_exhausts_budget(self):
        s = spec()
        inj = FaultInjector().add(s.digest(), "crash")
        eng = Engine(jobs=1, cache=False, faults=inj,
                     retry=RetryPolicy(max_attempts=3, backoff_base=0.0))
        res = eng.run_one(s)
        assert isinstance(res, RunFailure)
        assert res.category == "crash" and res.attempts == 3
        assert eng.stats.retries == 2

    def test_posthoc_timeout(self):
        s = spec()
        inj = FaultInjector().add(s.digest(), "hang", seconds=0.2)
        eng = Engine(jobs=1, cache=False, faults=inj, timeout=0.05)
        res = eng.run_one(s)
        assert isinstance(res, RunFailure) and res.category == "timeout"
        assert eng.stats.timeouts == 1

    def test_timeout_retry_opt_in(self):
        s = spec()
        inj = FaultInjector().add(s.digest(), "hang", seconds=0.2,
                                  until_attempt=1)
        eng = Engine(jobs=1, cache=False, faults=inj, timeout=0.1,
                     retry=RetryPolicy(retry_timeouts=True,
                                       retry_categories=frozenset(),
                                       backoff_base=0.0))
        res = eng.run_one(s)
        assert res.ok
        assert eng.stats.retries == 1 and eng.stats.timeouts == 1

    def test_injected_deadlock_not_retried(self):
        s = spec()
        inj = FaultInjector().add(s.digest(), "deadlock")
        eng = Engine(jobs=1, cache=False, faults=inj)
        res = eng.run_one(s)
        assert isinstance(res, RunFailure)
        assert res.category == "deadlock"
        assert res.exception_type == "SimulationDeadlock"
        assert "injected" in res.message
        assert res.attempts == 1


class TestMaxCyclesOverride:
    def test_engine_override_applies(self):
        eng = Engine(jobs=1, cache=False, max_cycles=10)
        res = eng.run_one(spec())  # spec says 2M; engine clamps to 10
        assert isinstance(res, RunFailure) and res.category == "limit"

    def test_override_reflected_in_digest(self):
        s = spec()
        from dataclasses import replace
        assert replace(s, max_cycles=10).digest() != s.digest()


class TestQuarantine:
    def _cached(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        eng = Engine(jobs=1, cache=cache)
        s = spec()
        eng.run_one(s)
        assert cache.path(s.digest()).is_file()
        return cache, eng, s

    def test_corrupt_entry_quarantined_and_resimulated(self, tmp_path):
        cache, eng, s = self._cached(tmp_path)
        corrupt_cache_entry(cache, s.digest(), "garbage")
        res = eng.run_one(s)
        assert res.ok
        assert cache.quarantined == 1
        assert eng.stats.quarantined == 1
        assert not cache.path(s.digest()).is_file() or \
            cache.get(s.digest()) is not None  # re-cached after re-sim
        qfiles = list(cache.quarantine_dir().iterdir())
        assert len(qfiles) == 1
        assert qfiles[0].name == cache.path(s.digest()).name

    def test_truncated_entry_quarantined(self, tmp_path):
        cache, eng, s = self._cached(tmp_path)
        corrupt_cache_entry(cache, s.digest(), "truncate")
        assert cache.get(s.digest()) is None
        assert cache.quarantined == 1

    def test_wrong_shape_quarantined(self, tmp_path):
        cache, eng, s = self._cached(tmp_path)
        corrupt_cache_entry(cache, s.digest(), "missing-key")
        assert cache.get(s.digest()) is None
        assert cache.quarantined == 1

    def test_schema_mismatch_is_plain_miss(self, tmp_path):
        cache, eng, s = self._cached(tmp_path)
        path = cache.path(s.digest())
        payload = json.loads(path.read_text())
        payload["schema"] = CACHE_SCHEMA + 1
        path.write_text(json.dumps(payload))
        assert cache.get(s.digest()) is None
        assert cache.quarantined == 0  # other-version entry, not corrupt
        assert path.is_file()

    def test_missing_entry_is_plain_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert cache.get("0" * 64) is None
        assert cache.quarantined == 0


class TestDeadlockReport:
    def test_report_names_blocked_warp_and_holder(self):
        from repro.core.occupancy import occupancy
        from repro.core.sharing import (SharedResource, SharingSpec,
                                        plan_sharing)
        from repro.sim.gpu import GPU
        from repro.sim.warp import WarpState

        kernel = APPS["hotspot"].kernel(0.15)
        plan = plan_sharing(kernel, CFG,
                            SharingSpec(SharedResource.REGISTERS, 0.1))
        assert plan.enabled and plan.pairs >= 1
        kernel = kernel.with_grid(CFG.num_sms * plan.total)
        gpu = GPU(kernel, CFG, scheduler="lrr", plan=plan)
        gpu.dispatcher.initial_fill(0)

        pair = next(gpu.dispatcher.share_pairs())
        assert pair.blocks[0] is not None and pair.blocks[1] is not None
        # Side 0 grabs pool slot 0; the side-1 warp of the same slot
        # index is then (synthetically) blocked waiting on it.
        assert pair.reg_group.try_acquire(0, 0)
        sm = gpu.sms[pair.blocks[1].sm_id]
        w = next(w for w in sm.warps
                 if w.block is pair.blocks[1] and w.slot == 0)
        sm._set_state(w, WarpState.BLOCK_LOCK)

        report = gpu._deadlock_report(123)
        assert "deadlock at cycle 123" in report
        assert f"W{w.dynamic_id}" in report
        assert "shared reg pool slot 0" in report
        assert "held by side 0" in report

    def test_barrier_waits_reported(self):
        from repro.core.occupancy import occupancy
        from repro.sim.gpu import GPU
        from repro.sim.warp import WarpState

        kernel = APPS["gaussian"].kernel(0.15)
        base = occupancy(kernel, CFG).blocks
        kernel = kernel.with_grid(CFG.num_sms * base)
        gpu = GPU(kernel, CFG, scheduler="lrr")
        gpu.dispatcher.initial_fill(0)
        sm = gpu.sms[0]
        w = sm.warps[0]
        w.block.bar_count = 1
        sm._set_state(w, WarpState.BLOCK_BAR)
        report = gpu._deadlock_report(7)
        assert "waits at barrier" in report
        assert f"1/{w.block.n_warps} arrived" in report


class TestSaltCoversResilience:
    def test_sim_sources_salted(self):
        # The sanitizer lives under sim/ and the dyn escape hatch under
        # sim/sm.py — both already inside the code-salt tree; this guards
        # against the salt losing them in a refactor.
        import repro.sim.sanitizer  # noqa: F401
        assert isinstance(code_salt(), str) and len(code_salt()) == 16
