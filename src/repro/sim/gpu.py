"""Top-level GPU: clock loop, cycle accounting, bulk idle skipping.

Two interchangeable cores run the same machine model (see
docs/performance.md):

* the **fast core** (default) — event-driven ready sets: SMs whose
  ready sets are empty are not stepped, scheduler picks skip predicate
  calls while the LD/ST port is free, MSHR-rejected accesses replay in
  O(1), and when no SM can issue the clock jumps to the next event in
  one step while charging the skipped span to the same cycle taxonomy;
* the **reference core** (``core="reference"`` or the
  ``REPRO_REFERENCE_CORE=1`` environment variable) — the original
  scan-every-warp loop, kept as the differential-testing oracle.

Both must produce bit-identical :class:`RunResult`\\ s; the golden core
suite (``tests/test_core_equivalence.py``) enforces it.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.config import GPUConfig
from repro.core.dynwarp import DynWarpController
from repro.core.liverange import SharedLiveness
from repro.core.sharing import SharedResource, SharingPlan
from repro.events import EventQueue
from repro.isa.kernel import Kernel
from repro.mem.hierarchy import MemoryHierarchy
from repro.mem.request import AddressMap
from repro.obs.sink import NULL_SINK, ObsSink
from repro.sim.dispatcher import Dispatcher
from repro.sim.sanitizer import Sanitizer
from repro.sim.sm import SharingRuntime, SMCore
from repro.sim.stats import RunResult
from repro.sim.warp import WarpState

__all__ = ["GPU", "SimulationLimitExceeded", "SimulationDeadlock"]


class SimulationLimitExceeded(RuntimeError):
    """The run exceeded ``max_cycles`` (runaway guard)."""


class SimulationDeadlock(RuntimeError):
    """No SM can ever issue again and no event is pending."""


class GPU:
    """Assembles SMs, memory and dispatcher, and runs a kernel to
    completion.

    ``plan`` selects resource sharing (None → baseline, all blocks
    unshared); ``scheduler`` is one of ``lrr``/``gto``/``two_level``/
    ``owf``; ``dyn`` enables the Sec. IV-C dynamic warp execution
    controller (only meaningful with register sharing); ``core`` picks
    the simulator core (``"fast"`` or ``"reference"``; the
    ``REPRO_REFERENCE_CORE`` environment variable, when set to anything
    but ``0``/empty, forces the reference core).
    """

    def __init__(self, kernel: Kernel, config: GPUConfig, *,
                 scheduler: str = "lrr",
                 plan: Optional[SharingPlan] = None,
                 dyn: bool = False,
                 early_release: bool = False,
                 mode: str = "",
                 sanitize: bool = False,
                 core: str = "fast",
                 obs: ObsSink = NULL_SINK) -> None:
        if core not in ("fast", "reference"):
            raise ValueError(f"unknown core {core!r}; "
                             f"choose 'fast' or 'reference'")
        if os.environ.get("REPRO_REFERENCE_CORE", "") not in ("", "0"):
            core = "reference"
        self.core = core
        self.kernel = kernel
        self.cfg = config
        self.mode = mode or scheduler
        self.sanitizer: Optional[Sanitizer] = Sanitizer() if sanitize \
            else None
        #: Observability sink (metrics/timeline); null object when off.
        self.obs = obs
        self.events = EventQueue()
        self.hierarchy = MemoryHierarchy(config, self.events,
                                         config.num_sms, obs=obs)
        self.amap = AddressMap(seed=kernel.seed)

        sharing_rt: Optional[SharingRuntime] = None
        if plan is not None and plan.enabled:
            sharing_rt = SharingRuntime(
                resource=plan.spec.resource,
                private_regs=plan.private_regs_per_thread,
                private_smem=(plan.private_units
                              if plan.spec.resource is SharedResource.SCRATCHPAD
                              else 0),
            )

        self.dyn: Optional[DynWarpController] = None
        if dyn and sharing_rt is not None:
            self.dyn = DynWarpController(config.num_sms, seed=kernel.seed + 7)

        liveness: Optional[SharedLiveness] = None
        if (early_release and sharing_rt is not None
                and sharing_rt.resource is SharedResource.REGISTERS):
            liveness = SharedLiveness(kernel)

        if self.core == "reference":
            from repro.sim.refcore import ReferenceSMCore
            sm_cls: type[SMCore] = ReferenceSMCore
        else:
            sm_cls = SMCore
        self.sms = [
            sm_cls(i, kernel, config, self.events, self.hierarchy, self.amap,
                   scheduler, sharing=sharing_rt, dyn=self.dyn,
                   liveness=liveness, sanitizer=self.sanitizer, obs=obs)
            for i in range(config.num_sms)
        ]
        self.plan = plan
        from repro.core.occupancy import occupancy as _occupancy
        baseline = _occupancy(kernel, config).blocks
        self.dispatcher = Dispatcher(kernel, plan, self.sms, baseline)
        for sm in self.sms:
            sm.dispatcher = self.dispatcher

    # ------------------------------------------------------------------
    def run(self, max_cycles: int = 2_000_000) -> RunResult:
        """Simulate until every grid block completes."""
        if self.core == "reference":
            return self._run_reference(max_cycles)
        return self._run_fast(max_cycles)

    def _prologue(self) -> None:
        """Resident-block fill and the Dyn monitoring-window event chain."""
        events = self.events
        sms = self.sms
        dyn = self.dyn
        self.dispatcher.initial_fill(0)
        if dyn is not None:
            def _window(cycle: int) -> None:
                dyn.end_window()
                for sm in sms:
                    sm.release_dyn_blocked(cycle)
                events.push(cycle + dyn.period, _window)
            events.push(dyn.period, _window)

    def _epilogue(self, cycle: int) -> RunResult:
        if self.sanitizer is not None:
            self.sanitizer.final(self, cycle)
        if self.obs.enabled:
            self.obs.finalize(self, cycle)
        stats = [sm.stats for sm in self.sms]
        return RunResult(
            kernel=self.kernel.name,
            mode=self.mode,
            cycles=cycle,
            instructions=sum(s.instructions for s in stats),
            sm_stats=stats,
            mem=self.hierarchy.totals(),
            blocks_baseline=(self.plan.baseline if self.plan is not None
                             else self.dispatcher.blocks_per_sm),
            blocks_total=self.dispatcher.blocks_per_sm,
            metrics=self.obs.metrics_dict(),
        )

    def _limit_exceeded(self, max_cycles: int) -> SimulationLimitExceeded:
        return SimulationLimitExceeded(
            f"kernel {self.kernel.name!r} exceeded {max_cycles} cycles "
            f"({self.dispatcher.completed}/{self.kernel.grid_blocks} blocks "
            f"done)")

    def _run_fast(self, max_cycles: int) -> RunResult:
        """Event-driven ready-set loop (cycle-exact vs the reference).

        Per cycle, only SMs whose ready sets are non-empty are stepped:
        with empty ready lists every scheduler ``pick`` returns None, so
        ``step`` could only have returned 0 without side effects — the
        skip is exact.  Cycle accounting is unchanged (``classify`` is
        O(1) on the fast core), so when no SM can issue and the clock
        jumps to the next event, the skipped span is charged per SM to
        the same class the intervening cycles would have received.
        """
        events = self.events
        sms = self.sms
        dispatcher = self.dispatcher
        dyn = self.dyn
        sanitizer = self.sanitizer

        self._prologue()
        kinds = [""] * len(sms)
        cycle = 0
        heap = events._heap  # peeked to skip no-op run_due calls
        while not dispatcher.done:
            if heap and heap[0][0] <= cycle:
                events.run_due(cycle)
                if dispatcher.done:
                    break
            all_zero = True
            for i, sm in enumerate(sms):
                # classify()/account() inlined: this runs once per SM
                # per simulated cycle.
                st = sm.stats
                if sm._cat_n[0] and sm.step(cycle):
                    st.active_cycles += 1
                    kinds[i] = "active"
                    all_zero = False
                    continue
                c = sm._cat_n
                if c[1]:
                    st.stall_cycles += 1
                    kinds[i] = "stall"
                    if dyn is not None:
                        dyn.record_stall(sm.sm_id)
                elif c[0] or c[2]:
                    st.idle_cycles += 1
                    kinds[i] = "idle"
                else:
                    st.empty_cycles += 1
                    kinds[i] = "empty"
            cycle += 1
            if all_zero and not any(sm._cat_n[0] for sm in sms):
                nxt = events.next_cycle()
                if nxt is None:
                    raise SimulationDeadlock(self._deadlock_report(cycle))
                if nxt > cycle:
                    gap = nxt - cycle
                    for sm, kind in zip(sms, kinds):
                        sm.account(kind, gap)
                        if dyn is not None and kind == "stall":
                            dyn.record_stall(sm.sm_id, gap)
                    cycle = nxt
            if sanitizer is not None:
                sanitizer.maybe_check(self, cycle)
            if cycle > max_cycles:
                raise self._limit_exceeded(max_cycles)

        return self._epilogue(cycle)

    def _run_reference(self, max_cycles: int) -> RunResult:
        """The original loop: step every SM, scan-based classification.

        Kept verbatim as the differential-testing oracle; do not
        optimise this path.
        """
        events = self.events
        sms = self.sms
        dispatcher = self.dispatcher
        dyn = self.dyn
        sanitizer = self.sanitizer

        self._prologue()
        cycle = 0
        while not dispatcher.done:
            events.run_due(cycle)
            if dispatcher.done:
                break
            all_zero = True
            kinds: list[str] = []
            for sm in sms:
                issued = sm.step(cycle)
                if issued:
                    sm.account("active")
                    kinds.append("active")
                    all_zero = False
                else:
                    kind = sm.classify()
                    sm.account(kind)
                    kinds.append(kind)
                    if dyn is not None and kind == "stall":
                        dyn.record_stall(sm.sm_id)
            cycle += 1
            if all_zero and not any(sm.has_ready() for sm in sms):
                nxt = events.next_cycle()
                if nxt is None:
                    raise SimulationDeadlock(self._deadlock_report(cycle))
                if nxt > cycle:
                    gap = nxt - cycle
                    for sm, kind in zip(sms, kinds):
                        sm.account(kind, gap)
                        if dyn is not None and kind == "stall":
                            dyn.record_stall(sm.sm_id, gap)
                    cycle = nxt
            if sanitizer is not None:
                sanitizer.maybe_check(self, cycle)
            if cycle > max_cycles:
                raise self._limit_exceeded(max_cycles)

        return self._epilogue(cycle)

    # ------------------------------------------------------------------
    def _deadlock_report(self, cycle: int) -> str:
        """Diagnostic naming every blocked warp and the lock it waits on.

        Fed into :class:`SimulationDeadlock` (and from there into the
        engine's ``RunFailure`` records), so a deadlocked cell in a
        sweep pinpoints the warp/lock cycle without a debugger.
        """
        lines = [f"deadlock at cycle {cycle}: no ready warps, no events"]
        for sm in self.sms:
            states: dict[str, int] = {}
            for w in sm.warps:
                states[w.state.name] = states.get(w.state.name, 0) + 1
            lines.append(f"  SM{sm.sm_id}: {states} "
                         f"resident_blocks={sm.resident_blocks}")
            for w in sm.warps:
                if w.state is WarpState.BLOCK_LOCK:
                    lines.append(f"    {self._lock_wait_line(w)}")
                elif w.state is WarpState.BLOCK_BAR:
                    lines.append(
                        f"    W{w.dynamic_id} (block {w.block.linear_id}, "
                        f"slot {w.slot}) waits at barrier "
                        f"({w.block.bar_count}/{w.block.n_warps} arrived)")
        lines.append(f"  grid: {self.dispatcher.completed}"
                     f"/{self.kernel.grid_blocks} blocks complete")
        return "\n".join(lines)

    @staticmethod
    def _lock_wait_line(w) -> str:
        """Describe which shared-pool lock a BLOCK_LOCK warp waits on."""
        block = w.block
        pair = block.pair
        head = (f"W{w.dynamic_id} (block {block.linear_id} side "
                f"{block.side}, slot {w.slot}) waits on")
        if pair is None:  # pragma: no cover - unreachable by construction
            return f"{head} an unknown lock (no pair attached)"
        if pair.reg_group is not None:
            holder = pair.reg_group.holder(w.slot)
            return (f"{head} shared reg pool slot {w.slot}, "
                    f"held by side {holder}")
        holder = pair.spad_group.holder if pair.spad_group is not None \
            else None
        return f"{head} shared scratchpad region, held by side {holder}"
