"""Occupancy math (Fig. 1) — exact paper values for every app."""

import pytest

from repro.config import GPUConfig
from repro.core.occupancy import occupancy
from repro.isa.builder import KernelBuilder
from repro.workloads.apps import APPS
from repro.workloads.suites import SET1, SET2

CFG = GPUConfig()

#: Paper Fig. 1(a)/Table VI column "0%": baseline resident blocks.
SET1_BLOCKS = {"backprop": 5, "b+tree": 2, "hotspot": 3, "LIB": 4,
               "MUM": 4, "mri-q": 5, "sgemm": 5, "stencil": 2}

#: Paper Fig. 1(c)/Table VIII column "0%".
SET2_BLOCKS = {"CONV1": 6, "CONV2": 3, "lavaMD": 2, "NW1": 7, "NW2": 7,
               "SRAD1": 2, "SRAD2": 3}


class TestPaperBlocks:
    @pytest.mark.parametrize("app", SET1)
    def test_set1_resident_blocks(self, app):
        occ = occupancy(APPS[app].kernel(), CFG)
        assert occ.blocks == SET1_BLOCKS[app]

    @pytest.mark.parametrize("app", SET1)
    def test_set1_limited_by_registers(self, app):
        occ = occupancy(APPS[app].kernel(), CFG)
        assert occ.limiter == "registers"

    @pytest.mark.parametrize("app", SET2)
    def test_set2_resident_blocks(self, app):
        occ = occupancy(APPS[app].kernel(), CFG)
        assert occ.blocks == SET2_BLOCKS[app]

    @pytest.mark.parametrize("app", SET2)
    def test_set2_limited_by_scratchpad(self, app):
        occ = occupancy(APPS[app].kernel(), CFG)
        assert occ.limiter == "scratchpad"


class TestPaperWaste:
    def test_hotspot_register_waste(self):
        # Paper Sec. I-A: 3 blocks x 9216 regs -> 5120 of 32768 wasted.
        occ = occupancy(APPS["hotspot"].kernel(), CFG)
        assert occ.register_waste_pct == pytest.approx(5120 / 32768 * 100)

    def test_lavamd_scratchpad_waste(self):
        # Paper Sec. I-A: 2 blocks x 7200 B -> 1984 B of 16384 unused.
        occ = occupancy(APPS["lavaMD"].kernel(), CFG)
        assert occ.scratchpad_waste_pct == pytest.approx(
            1984 / 16384 * 100)


def k(threads=64, regs=8, smem=0):
    return KernelBuilder("t", block_size=threads, regs=regs,
                         smem=smem).build()


class TestLimiters:
    def test_thread_limited(self):
        occ = occupancy(k(threads=256, regs=4), CFG)
        assert occ.blocks == 6
        assert occ.limiter == "threads"

    def test_block_limited(self):
        occ = occupancy(k(threads=32, regs=4), CFG)
        assert occ.blocks == 8
        assert occ.limiter == "blocks"

    def test_register_limited(self):
        occ = occupancy(k(threads=256, regs=36), CFG)
        assert occ.blocks == 3
        assert occ.limiter == "registers"

    def test_scratchpad_limited(self):
        occ = occupancy(k(threads=64, regs=4, smem=7200), CFG)
        assert occ.blocks == 2
        assert occ.limiter == "scratchpad"

    def test_does_not_fit_raises(self):
        with pytest.raises(ValueError):
            occupancy(k(threads=1024, regs=40), CFG)

    def test_zero_smem_no_constraint(self):
        occ = occupancy(k(threads=64, regs=4, smem=0), CFG)
        assert occ.by_scratchpad == CFG.max_blocks_per_sm


class TestWasteInvariants:
    @pytest.mark.parametrize("app", SET1 + SET2)
    def test_waste_in_unit_interval(self, app):
        occ = occupancy(APPS[app].kernel(), CFG)
        assert 0.0 <= occ.register_waste < 1.0
        assert 0.0 <= occ.scratchpad_waste <= 1.0

    @pytest.mark.parametrize("app", SET1 + SET2)
    def test_blocks_bounded_by_every_cap(self, app):
        occ = occupancy(APPS[app].kernel(), CFG)
        assert occ.blocks <= min(occ.by_registers, occ.by_scratchpad,
                                 occ.by_threads, occ.by_blocks)
