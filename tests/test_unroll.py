"""Sec. IV-B unrolling & reordering of register declarations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.unroll import (first_shared_use_distance, first_use_mapping,
                               reorder_registers)
from repro.isa.instructions import Instr
from repro.isa.kernel import Kernel, Segment
from repro.isa.opcodes import Op
from repro.workloads.apps import APPS


def alu(d, s):
    return Instr(Op.FADD, dst=(d,), src=(s,))


def mk(instrs, regs=16):
    return Kernel(name="k", threads_per_block=64, regs_per_thread=regs,
                  smem_per_block=0, grid_blocks=1,
                  segments=(Segment(tuple(instrs) + (Instr(Op.EXIT),)),))


class TestMapping:
    def test_first_use_order(self):
        k = mk([alu(9, 7), alu(2, 9)])
        m = first_use_mapping(k)
        assert m[9] == 0 and m[7] == 1 and m[2] == 2

    def test_bijection_on_register_budget(self):
        k = mk([alu(9, 7), alu(2, 9)], regs=12)
        m = first_use_mapping(k)
        assert sorted(m.keys()) == list(range(12))
        assert sorted(m.values()) == list(range(12))

    def test_unused_packed_after_used(self):
        k = mk([alu(5, 3)], regs=8)
        m = first_use_mapping(k)
        used_new = {m[5], m[3]}
        assert used_new == {0, 1}
        for old in (0, 1, 2, 4, 6, 7):
            assert m[old] >= 2


class TestReorder:
    def test_dataflow_isomorphic(self):
        k = mk([alu(9, 7), alu(2, 9), alu(7, 2)])
        k2 = reorder_registers(k)
        # same op sequence
        assert [i.op for i in k2.static_instrs] == \
            [i.op for i in k.static_instrs]
        # equality pattern between register slots is preserved
        old = [i.regs for i in k.static_instrs]
        new = [i.regs for i in k2.static_instrs]
        for (o1, n1) in zip(old, new):
            assert len(o1) == len(n1)
        flat_old = [r for regs in old for r in regs]
        flat_new = [r for regs in new for r in regs]
        pairing = {}
        for o, n in zip(flat_old, flat_new):
            assert pairing.setdefault(o, n) == n  # consistent renaming

    def test_idempotent(self):
        k = reorder_registers(mk([alu(9, 7), alu(2, 9)]))
        assert reorder_registers(k).static_instrs == k.static_instrs

    def test_first_instruction_uses_lowest_registers(self):
        k = reorder_registers(mk([alu(15, 14), alu(3, 15)]))
        assert set(k.static_instrs[0].regs) == {0, 1}

    def test_resource_signature_unchanged(self):
        k = APPS["sgemm"].kernel()
        k2 = reorder_registers(k)
        assert k2.regs_per_thread == k.regs_per_thread
        assert k2.smem_per_block == k.smem_per_block
        assert k2.dynamic_count == k.dynamic_count


class TestSharedUseDistance:
    def test_distance_counts_private_prefix(self):
        k = mk([alu(0, 1), alu(2, 0), alu(5, 2)])
        # with 3 private registers the third instruction (reg 5) stalls
        assert first_shared_use_distance(k, 3) == 2

    def test_never_shared(self):
        k = mk([alu(0, 1)])
        assert first_shared_use_distance(k, 8) == k.dynamic_count

    def test_immediately_shared(self):
        k = mk([alu(7, 1)])
        assert first_shared_use_distance(k, 3) == 0

    def test_unroll_never_decreases_distance(self):
        # The point of the pass (paper Fig. 7): the sgemm-style kernel
        # built high_first stalls immediately; after the pass it executes
        # a longer private prefix.
        k = APPS["sgemm"].kernel()
        priv = int(k.regs_per_thread * 0.1)
        before = first_shared_use_distance(k, priv)
        after = first_shared_use_distance(reorder_registers(k), priv)
        assert after >= before

    @pytest.mark.parametrize("name", ["hotspot", "sgemm", "MUM", "LIB"])
    def test_unroll_improves_or_matches_all_register_apps(self, name):
        k = APPS[name].kernel()
        priv = int(k.regs_per_thread * 0.1)
        assert (first_shared_use_distance(reorder_registers(k), priv)
                >= first_shared_use_distance(k, priv))


@given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 15)),
                min_size=1, max_size=30))
@settings(max_examples=100, deadline=None)
def test_property_mapping_bijective_and_monotone(pairs):
    k = mk([alu(d, s) for d, s in pairs])
    m = first_use_mapping(k)
    assert sorted(m.values()) == list(range(16))
    # first-use order of new ids is strictly increasing
    k2 = reorder_registers(k)
    seen = []
    for ins in k2.static_instrs:
        for r in ins.regs:
            if r not in seen:
                seen.append(r)
    assert seen == sorted(seen)
