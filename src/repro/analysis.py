"""Static kernel analysis: everything about a kernel *before* simulating.

Bundles the per-kernel facts the paper reasons about — occupancy and
waste (Fig. 1), sharing plans at a threshold (Eq. 4), instruction mix and
memory intensity (compute- vs memory-bound discussions), non-owner
progress before the first shared access (Sec. IV-B), and the live-range
tail where a shared pool could be released early (Sec. VIII).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import GPUConfig
from repro.core.liverange import SharedLiveness
from repro.core.occupancy import Occupancy, occupancy
from repro.core.sharing import (SharedResource, SharingPlan, SharingSpec,
                                plan_sharing)
from repro.core.unroll import first_shared_use_distance, reorder_registers
from repro.isa.kernel import Kernel
from repro.isa.opcodes import op_group

__all__ = ["KernelAnalysis", "analyze", "format_analysis"]


@dataclass(frozen=True)
class KernelAnalysis:
    """Static profile of one kernel on one machine configuration."""

    name: str
    threads_per_block: int
    warps_per_block: int
    regs_per_thread: int
    regs_per_block: int
    smem_per_block: int
    dynamic_per_warp: int
    #: op group → dynamic count per warp (alu/sfu/global/shared/bar/exit).
    mix: dict = field(default_factory=dict)
    #: Fraction of dynamic instructions that are memory operations.
    mem_fraction: float = 0.0
    #: Distinct registers actually referenced.
    registers_referenced: int = 0
    occupancy: Occupancy | None = None
    register_plan: SharingPlan | None = None
    scratchpad_plan: SharingPlan | None = None
    #: Dynamic instructions a non-owner warp executes before its first
    #: shared-register access, before/after the unroll pass.
    prefix_before_unroll: int = 0
    prefix_after_unroll: int = 0
    #: Dynamic instructions at the end of the trace that touch no shared
    #: register (the early-release window, Sec. VIII).
    shared_free_tail: int = 0


def _shared_free_tail(kernel: Kernel, private_regs: int) -> int:
    """Trailing dynamic instructions touching only private registers."""
    lv = SharedLiveness(kernel)
    repeats = tuple(seg.repeat for seg in kernel.segments)
    tail = 0
    # Walk the nominal trace backwards by walking forwards and counting
    # from the first position whose future is shared-free.
    seg = rep = pc = 0
    pos = 0
    first_free: int | None = None
    total = kernel.dynamic_count
    while seg < len(kernel.segments):
        if first_free is None and lv.done_with_shared(seg, rep, pc, repeats,
                                                      private_regs):
            first_free = pos
        pc += 1
        if pc == len(kernel.segments[seg].instrs):
            pc = 0
            rep += 1
            if rep == repeats[seg]:
                rep = 0
                seg += 1
        pos += 1
    if first_free is not None:
        tail = total - first_free
    return tail


def analyze(kernel: Kernel, config: GPUConfig | None = None,
            t: float = 0.1) -> KernelAnalysis:
    """Produce the full static profile of ``kernel`` at threshold ``t``."""
    cfg = config if config is not None else GPUConfig()
    mix: dict[str, int] = {}
    for ins in kernel.iter_trace():
        g = op_group(ins.op)
        mix[g] = mix.get(g, 0) + 1
    total = kernel.dynamic_count
    mem = mix.get("global", 0) + mix.get("shared", 0)

    occ = occupancy(kernel, cfg)
    reg_plan = plan_sharing(kernel, cfg,
                            SharingSpec(SharedResource.REGISTERS, t))
    spad_plan = plan_sharing(kernel, cfg,
                             SharingSpec(SharedResource.SCRATCHPAD, t))

    priv = int(kernel.regs_per_thread * t)
    before = first_shared_use_distance(kernel, priv)
    after = first_shared_use_distance(reorder_registers(kernel), priv)

    return KernelAnalysis(
        name=kernel.name,
        threads_per_block=kernel.threads_per_block,
        warps_per_block=kernel.warps_per_block,
        regs_per_thread=kernel.regs_per_thread,
        regs_per_block=kernel.regs_per_block,
        smem_per_block=kernel.smem_per_block,
        dynamic_per_warp=total,
        mix=mix,
        mem_fraction=mem / total if total else 0.0,
        registers_referenced=len(kernel.registers_used),
        occupancy=occ,
        register_plan=reg_plan,
        scratchpad_plan=spad_plan,
        prefix_before_unroll=before,
        prefix_after_unroll=after,
        shared_free_tail=_shared_free_tail(reorder_registers(kernel), priv),
    )


def format_analysis(a: KernelAnalysis) -> str:
    """Human-readable report (one kernel)."""
    occ = a.occupancy
    assert occ is not None and a.register_plan is not None \
        and a.scratchpad_plan is not None
    lines = [
        f"=== {a.name} ===",
        f"block: {a.threads_per_block} threads ({a.warps_per_block} warps), "
        f"{a.regs_per_thread} regs/thread ({a.regs_per_block}/block), "
        f"{a.smem_per_block} B scratchpad",
        f"trace: {a.dynamic_per_warp} dynamic instructions/warp, "
        f"{a.mem_fraction:.1%} memory, "
        f"{a.registers_referenced} registers referenced",
        "mix:   " + ", ".join(f"{k}={v}" for k, v in sorted(a.mix.items())),
        f"occupancy: {occ.blocks} blocks/SM (limiter {occ.limiter}); "
        f"waste: regs {occ.register_waste_pct:.1f}%, "
        f"scratchpad {occ.scratchpad_waste_pct:.1f}%",
        f"register sharing:   {a.register_plan.total} blocks "
        f"({a.register_plan.unshared}U + {a.register_plan.pairs}P), "
        f"private regs/thread {a.register_plan.private_regs_per_thread}",
        f"scratchpad sharing: {a.scratchpad_plan.total} blocks "
        f"({a.scratchpad_plan.unshared}U + {a.scratchpad_plan.pairs}P), "
        f"private bytes {a.scratchpad_plan.private_units}",
        f"non-owner prefix: {a.prefix_before_unroll} instr before unroll, "
        f"{a.prefix_after_unroll} after; shared-free tail "
        f"{a.shared_free_tail} instr",
    ]
    return "\n".join(lines)
