"""Unified execution engine: RunSpec, parallel executor, result cache.

Every harness entry point (``experiments.py``, :class:`Sweep`, both
CLIs, the benchmark harness) used to drive :func:`repro.harness.runner.run`
through its own sequential loop, re-simulating common baselines like
``Unshared-LRR`` once per figure.  This module centralises scheduling,
deduplication and persistence of simulations:

* :class:`RunSpec` — a frozen, hashable, JSON-serializable description
  of one simulation: app (or ad-hoc kernel fingerprint), :class:`Mode`,
  :class:`GPUConfig`, scale/waves/grid/max_cycles.  ``digest()`` is a
  content address that also folds in a *code-version salt* (a hash of
  the simulation-relevant sources), so cached results are invalidated
  automatically when the simulator changes.
* :class:`Engine` — executes batches of RunSpecs.  Identical specs in a
  batch are simulated once; with ``jobs > 1`` unique specs run on a
  ``ProcessPoolExecutor``; at ``jobs == 1`` a deterministic in-process
  loop keeps results bit-identical to the historical sequential path
  (the simulations themselves are deterministic, so the parallel path
  produces the same bits — only wall-clock changes).
* :class:`ResultCache` — a content-addressed on-disk store
  (``~/.cache/repro`` by default, override with ``cache_dir=`` /
  ``REPRO_CACHE_DIR``) keyed by ``RunSpec.digest()``; entries hold the
  spec and the full :meth:`RunResult.to_dict` payload.
* Observability — per-run wall time, hit/miss/dedup counters
  (:class:`EngineStats`) and a per-completion progress callback
  (:class:`RunEvent`).

Environment knobs: ``REPRO_JOBS`` (worker count when ``jobs`` is not
given), ``REPRO_CACHE_DIR`` (cache location), ``REPRO_NO_CACHE=1``
(disable the disk cache globally).  See docs/engine.md.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import asdict, dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Callable, Sequence

from repro.config import GDDRTimings, GPUConfig, LatencyConfig
from repro.core.sharing import SharedResource
from repro.harness.runner import Mode, run
from repro.isa.kernel import Kernel
from repro.sim.stats import RunResult
from repro.workloads.apps import APPS, App

__all__ = ["RunSpec", "Engine", "EngineStats", "RunEvent", "ResultCache",
           "kernel_fingerprint", "code_salt", "default_engine"]

#: Bump when the cache entry layout changes (independent of code salt).
CACHE_SCHEMA = 1

#: Sources whose content participates in the code-version salt: anything
#: that can change simulation results.  Reports/CLI/docs are excluded.
_SALT_SOURCES = ("config.py", "core", "isa", "mem", "sched", "sim",
                 "workloads", "harness/runner.py")


@lru_cache(maxsize=1)
def code_salt() -> str:
    """Hash of the simulation-relevant source tree.

    Folded into every :meth:`RunSpec.digest`, so editing the simulator
    (or the workloads) invalidates all previously cached results without
    any manual version bookkeeping.
    """
    root = Path(__file__).resolve().parent.parent
    h = hashlib.sha256()
    for entry in _SALT_SOURCES:
        p = root / entry
        files = sorted(p.rglob("*.py")) if p.is_dir() else [p]
        for f in files:
            h.update(str(f.relative_to(root)).encode())
            h.update(f.read_bytes())
    return h.hexdigest()[:16]


def kernel_fingerprint(kernel: Kernel) -> str:
    """Content hash of a built kernel (resources + instruction stream)."""
    h = hashlib.sha256()
    h.update(repr((kernel.name, kernel.threads_per_block,
                   kernel.regs_per_thread, kernel.smem_per_block,
                   kernel.grid_blocks, kernel.seed,
                   kernel.work_variance)).encode())
    for seg in kernel.segments:
        h.update(f"|x{seg.repeat}|".encode())
        for ins in seg.instrs:
            h.update(repr(ins).encode())
    return h.hexdigest()[:16]


def _mode_to_dict(mode: Mode) -> dict:
    return {
        "label": mode.label,
        "scheduler": mode.scheduler,
        "sharing": mode.sharing.value if mode.sharing is not None else None,
        "t": mode.t,
        "unroll": mode.unroll,
        "dyn": mode.dyn,
        "early_release": mode.early_release,
    }


def _mode_from_dict(d: dict) -> Mode:
    sharing = SharedResource(d["sharing"]) if d["sharing"] is not None \
        else None
    return Mode(label=d["label"], scheduler=d["scheduler"], sharing=sharing,
                t=d["t"], unroll=d["unroll"], dyn=d["dyn"],
                early_release=d["early_release"])


def _config_from_dict(d: dict) -> GPUConfig:
    d = dict(d)
    d["timings"] = GDDRTimings(**d["timings"])
    d["latency"] = LatencyConfig(**d["latency"])
    return GPUConfig(**d)


@dataclass(frozen=True)
class RunSpec:
    """Canonical description of one simulation.

    Frozen and hashable; :meth:`to_dict` / :meth:`from_dict` give a JSON
    round trip and :meth:`digest` a stable content address.  ``app`` is
    a registry name when the target lives in :data:`APPS`; ad-hoc
    kernels (extension studies, ``.kasm`` files) ride along in the
    ``kernel`` field, which is excluded from equality/hash — the
    ``kernel_fp`` fingerprint represents them in the identity.
    """

    app: str | None
    kernel_fp: str
    mode: Mode
    config: GPUConfig
    scale: float = 1.0
    waves: float = 6.0
    grid_blocks: int | None = None
    max_cycles: int = 2_000_000
    #: Pre-built kernel for non-registry targets (identity lives in
    #: ``kernel_fp``; this field only carries the payload to workers).
    kernel: Kernel | None = field(default=None, compare=False, repr=False)

    @classmethod
    def create(cls, target: App | Kernel, mode: Mode, *,
               config: GPUConfig | None = None, scale: float = 1.0,
               waves: float = 6.0, grid_blocks: int | None = None,
               max_cycles: int = 2_000_000) -> "RunSpec":
        """Build a spec from the same arguments :func:`runner.run` takes."""
        config = config if config is not None else GPUConfig()
        if isinstance(target, App):
            kernel = target.kernel(scale)
            name = target.name if APPS.get(target.name) is target else None
        else:
            kernel, name = target, None
        return cls(app=name, kernel_fp=kernel_fingerprint(kernel),
                   mode=mode, config=config, scale=scale, waves=waves,
                   grid_blocks=grid_blocks, max_cycles=max_cycles,
                   kernel=None if name is not None else kernel)

    def to_dict(self) -> dict:
        """JSON-serializable form (the ad-hoc kernel payload is reduced
        to its fingerprint)."""
        return {
            "app": self.app,
            "kernel_fp": self.kernel_fp,
            "mode": _mode_to_dict(self.mode),
            "config": asdict(self.config),
            "scale": self.scale,
            "waves": self.waves,
            "grid_blocks": self.grid_blocks,
            "max_cycles": self.max_cycles,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "RunSpec":
        """Rebuild a spec from :meth:`to_dict` output.

        Only registry-app specs can be fully reconstructed; ad-hoc
        kernel specs keep their identity (digest) but not the kernel
        payload, so they cannot be re-executed from JSON.
        """
        return cls(app=d["app"], kernel_fp=d["kernel_fp"],
                   mode=_mode_from_dict(d["mode"]),
                   config=_config_from_dict(d["config"]),
                   scale=d["scale"], waves=d["waves"],
                   grid_blocks=d["grid_blocks"],
                   max_cycles=d["max_cycles"])

    def digest(self) -> str:
        """Content address: canonical JSON of the spec + code salt."""
        payload = json.dumps({"salt": code_salt(), "spec": self.to_dict()},
                             sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode()).hexdigest()

    def target(self) -> App | Kernel:
        """The runnable object this spec describes."""
        if self.app is not None:
            return APPS[self.app]
        if self.kernel is None:
            raise ValueError(
                "ad-hoc kernel spec has no kernel payload (deserialized "
                "from JSON?) — only registry-app specs are re-runnable")
        return self.kernel

    def execute(self) -> RunResult:
        """Run the simulation this spec describes (no cache, no pool)."""
        return run(self.target(), self.mode, config=self.config,
                   scale=self.scale, waves=self.waves,
                   grid_blocks=self.grid_blocks, max_cycles=self.max_cycles)


def _execute_timed(spec: RunSpec) -> tuple[RunResult, float]:
    """Worker entry point (top-level so it pickles)."""
    t0 = time.perf_counter()
    res = spec.execute()
    return res, time.perf_counter() - t0


class ResultCache:
    """Content-addressed on-disk store of :class:`RunResult` payloads.

    Layout: ``<root>/<digest[:2]>/<digest>.json`` holding the schema
    version, the spec (for inspection), the result and the simulation
    wall time.  All I/O failures degrade to cache misses; writes are
    atomic (temp file + rename) so concurrent engines never observe a
    torn entry.
    """

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root if root is not None
                         else os.environ.get("REPRO_CACHE_DIR")
                         or Path.home() / ".cache" / "repro")

    def path(self, digest: str) -> Path:
        """Entry location for a digest."""
        return self.root / digest[:2] / f"{digest}.json"

    def get(self, digest: str) -> RunResult | None:
        """Stored result for ``digest``, or None."""
        try:
            payload = json.loads(self.path(digest).read_text())
            if payload.get("schema") != CACHE_SCHEMA:
                return None
            return RunResult.from_dict(payload["result"])
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def put(self, digest: str, spec: RunSpec, result: RunResult,
            elapsed: float) -> None:
        """Store ``result`` under ``digest`` (best-effort)."""
        payload = {"schema": CACHE_SCHEMA, "digest": digest,
                   "spec": spec.to_dict(), "elapsed": round(elapsed, 6),
                   "result": result.to_dict()}
        target = self.path(digest)
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=target.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as f:
                    json.dump(payload, f)
                os.replace(tmp, target)
            except BaseException:
                os.unlink(tmp)
                raise
        except OSError:
            pass  # a read-only cache dir must never fail the run


@dataclass
class EngineStats:
    """Cumulative counters for one :class:`Engine`."""

    submitted: int = 0       #: specs passed to run_batch
    deduped: int = 0         #: specs served by an identical one in-batch
    hits: int = 0            #: specs served from the disk cache
    misses: int = 0          #: cache lookups that missed
    sims: int = 0            #: simulations actually executed
    sim_time: float = 0.0    #: summed per-simulation wall seconds
    wall_time: float = 0.0   #: wall seconds spent inside run_batch


@dataclass(frozen=True)
class RunEvent:
    """Progress-callback payload: one completed (or cache-served) run."""

    index: int           #: 1-based completion order within the batch
    total: int           #: unique runs in the batch
    spec: RunSpec
    result: RunResult
    cached: bool
    elapsed: float       #: simulation seconds (0.0 for cache hits)


def _default_jobs() -> int:
    env = os.environ.get("REPRO_JOBS")
    if env:
        return max(1, int(env))
    return os.cpu_count() or 1


class Engine:
    """Executes batches of :class:`RunSpec`, with dedup, cache and pool.

    Parameters
    ----------
    jobs:
        Worker processes.  ``None`` → ``REPRO_JOBS`` or ``os.cpu_count()``;
        ``1`` → deterministic in-process execution (no pool).
    cache:
        ``True`` (default) enables the content-addressed disk cache,
        ``False`` disables it; a :class:`ResultCache` instance is used
        as-is.  ``REPRO_NO_CACHE=1`` force-disables.
    cache_dir:
        Cache root (default ``REPRO_CACHE_DIR`` or ``~/.cache/repro``).
    progress:
        Default per-completion callback receiving a :class:`RunEvent`.
    """

    def __init__(self, *, jobs: int | None = None,
                 cache: bool | ResultCache = True,
                 cache_dir: str | Path | None = None,
                 progress: Callable[[RunEvent], None] | None = None) -> None:
        self.jobs = max(1, jobs) if jobs is not None else _default_jobs()
        if isinstance(cache, ResultCache):
            self.cache: ResultCache | None = cache
        elif cache and os.environ.get("REPRO_NO_CACHE") != "1":
            self.cache = ResultCache(cache_dir)
        else:
            self.cache = None
        self.progress = progress
        self.stats = EngineStats()

    # ------------------------------------------------------------------
    def run_one(self, spec: RunSpec) -> RunResult:
        """Convenience wrapper: a batch of one."""
        return self.run_batch([spec])[0]

    def run_batch(self, specs: Sequence[RunSpec], *,
                  progress: Callable[[RunEvent], None] | None = None
                  ) -> list[RunResult]:
        """Execute ``specs``; returns results aligned with the input.

        Identical specs (same digest) are simulated once; cached results
        are loaded from disk; the rest run on the pool (``jobs > 1``) or
        in-process.  Result order is always the submission order, so a
        parallel batch is bit-identical to a sequential one.
        """
        t_batch = time.perf_counter()
        progress = progress if progress is not None else self.progress
        order: list[str] = []
        unique: dict[str, RunSpec] = {}
        for spec in specs:
            d = spec.digest()
            order.append(d)
            if d in unique:
                self.stats.deduped += 1
            else:
                unique[d] = spec
        self.stats.submitted += len(specs)

        results: dict[str, RunResult] = {}
        done = 0
        total = len(unique)

        def emit(d: str, res: RunResult, cached: bool,
                 elapsed: float) -> None:
            nonlocal done
            done += 1
            if progress is not None:
                progress(RunEvent(index=done, total=total, spec=unique[d],
                                  result=res, cached=cached,
                                  elapsed=elapsed))

        todo: list[str] = []
        for d, spec in unique.items():
            if self.cache is not None:
                hit = self.cache.get(d)
                if hit is not None:
                    self.stats.hits += 1
                    results[d] = hit
                    emit(d, hit, True, 0.0)
                    continue
                self.stats.misses += 1
            todo.append(d)

        def record(d: str, res: RunResult, elapsed: float) -> None:
            results[d] = res
            self.stats.sims += 1
            self.stats.sim_time += elapsed
            if self.cache is not None:
                self.cache.put(d, unique[d], res, elapsed)
            emit(d, res, False, elapsed)

        if len(todo) > 1 and self.jobs > 1:
            workers = min(self.jobs, len(todo))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {pool.submit(_execute_timed, unique[d]): d
                           for d in todo}
                for fut in as_completed(futures):
                    res, elapsed = fut.result()
                    record(futures[fut], res, elapsed)
        else:
            for d in todo:
                res, elapsed = _execute_timed(unique[d])
                record(d, res, elapsed)

        self.stats.wall_time += time.perf_counter() - t_batch
        return [results[d] for d in order]


_DEFAULT_ENGINE: Engine | None = None


def default_engine() -> Engine:
    """Process-wide engine used when a caller doesn't supply one."""
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = Engine()
    return _DEFAULT_ENGINE
