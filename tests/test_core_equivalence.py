"""Differential tests: fast core ≡ reference core ≡ committed goldens.

The event-driven fast core (default) and the scan-based reference core
(``REPRO_REFERENCE_CORE=1``) must produce bit-identical
:class:`RunResult`\\ s on every configuration.  ``golden_core.json``
pins the full :func:`~repro.harness.golden.core_matrix` — small kernels
× {baseline, register sharing, scratchpad sharing} × {lrr, gto,
two_level, owf} × {Dyn on/off} plus unroll/early-release cells — to
fingerprints captured from the pristine pre-optimisation core, so the
two implementations cannot drift jointly either.

The full matrix (56 cells × 2 cores) runs in ``test_no_drift_*``; a
smaller slice re-runs under ``sanitize=True`` to prove the fast core
upholds the DESIGN.md §6 invariants, not just the final counters.
"""

import json

import pytest

from repro.harness.golden import (CORE_APPS, check_core_goldens,
                                  core_config, core_key,
                                  core_matrix, golden_core_path)
from repro.harness.runner import run
from repro.workloads.apps import APPS


class TestGoldenFile:
    def test_golden_core_file_exists(self):
        assert golden_core_path().is_file()

    def test_covers_exact_matrix(self):
        data = json.loads(golden_core_path().read_text())
        assert set(data) == {core_key(a, m) for a, m in core_matrix()}

    def test_matrix_exercises_all_schedulers_and_resources(self):
        labels = {m.label for _, m in core_matrix()}
        for tag in ("LRR", "GTO", "2LV", "OWF"):
            assert any(tag in lbl for lbl in labels)
        assert any("Dyn" in lbl for lbl in labels)
        assert any("Unroll" in lbl for lbl in labels)
        assert any("ER" in lbl for lbl in labels)


class TestNoDrift:
    def test_no_drift_fast(self):
        assert check_core_goldens("fast") == []

    def test_no_drift_reference(self):
        assert check_core_goldens("reference") == []


class TestSanitized:
    """A matrix slice under the runtime invariant sanitizer.

    ``sanitize=True`` must not change results, and neither core may
    trip a DESIGN.md §6 invariant on any cell.  One storm-heavy app
    (BFS) and one sharing-heavy app (MUM) cover the paths where the
    fast core diverges most from the reference implementation.
    """

    _SLICE = ("MUM", "BFS")

    @pytest.mark.parametrize("core", ["fast", "reference"])
    def test_sanitized_slice_matches_golden(self, core):
        want = json.loads(golden_core_path().read_text())
        cfg = core_config()
        for app, mode in core_matrix():
            if app not in self._SLICE:
                continue
            res = run(APPS[app], mode, config=cfg, scale=CORE_APPS[app],
                      waves=1.0, sanitize=True, core=core)
            assert res.to_dict() == want[core_key(app, mode)], \
                f"{core} core diverged under sanitizer on " \
                f"{core_key(app, mode)}"


class TestCoreSelection:
    def test_env_var_forces_reference(self, monkeypatch):
        from repro.sim.gpu import GPU
        from repro.sim.refcore import ReferenceSMCore
        monkeypatch.setenv("REPRO_REFERENCE_CORE", "1")
        app, mode = next(core_matrix())
        from repro.core.occupancy import occupancy
        kernel = APPS[app].kernel(CORE_APPS[app])
        cfg = core_config()
        blocks = occupancy(kernel, cfg).blocks * cfg.num_sms
        gpu = GPU(kernel.with_grid(blocks), cfg, scheduler=mode.scheduler)
        assert all(isinstance(sm, ReferenceSMCore) for sm in gpu.sms)

    def test_invalid_core_rejected(self):
        from repro.sim.gpu import GPU
        from repro.config import GPUConfig
        kernel = APPS["MUM"].kernel(0.1).with_grid(2)
        with pytest.raises(ValueError):
            GPU(kernel, GPUConfig(), core="turbo")

    def test_collect_core_deterministic(self):
        # Two fresh fast-core runs of one cell must agree exactly —
        # nothing in the fast path may depend on wall-clock or dict
        # iteration order.
        app, mode = next(core_matrix())
        cfg = core_config()
        a = run(APPS[app], mode, config=cfg, scale=CORE_APPS[app],
                waves=1.0, core="fast")
        b = run(APPS[app], mode, config=cfg, scale=CORE_APPS[app],
                waves=1.0, core="fast")
        assert a.to_dict() == b.to_dict()
