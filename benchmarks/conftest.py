"""Shared fixtures for the benchmark harness.

Each ``bench_*`` module regenerates one paper table/figure.  The
simulations are deterministic, so every benchmark runs a single
measured round (``pedantic``) — pytest-benchmark is used for its
reporting/JSON machinery, not for statistical repetition.

Scale knobs (override via environment):

* ``REPRO_BENCH_CLUSTERS`` — SM clusters (default 4; paper used 14)
* ``REPRO_BENCH_SCALE``    — kernel loop-count scale (default 0.7)
* ``REPRO_BENCH_WAVES``    — grid waves per SM (default 6)
"""

import os

import pytest

from repro.config import GPUConfig

CLUSTERS = int(os.environ.get("REPRO_BENCH_CLUSTERS", "4"))
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.7"))
WAVES = float(os.environ.get("REPRO_BENCH_WAVES", "6"))


@pytest.fixture(scope="session")
def bench_config():
    """Machine configuration for all benchmark runs."""
    return GPUConfig().scaled(num_clusters=CLUSTERS)


@pytest.fixture(scope="session")
def bench_params():
    """(scale, waves) for all benchmark runs."""
    return {"scale": SCALE, "waves": WAVES}


def run_once(benchmark, fn, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark and return its
    result (simulations are deterministic; re-running only wastes time)."""
    return benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1)
