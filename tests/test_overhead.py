"""Sec. V hardware overhead formulas."""

import math

import pytest

from repro.config import GPUConfig
from repro.core.overhead import (overhead_summary, register_sharing_bits,
                                 scratchpad_sharing_bits)


def clog2(x):
    return math.ceil(math.log2(x)) if x > 1 else 0


def reg_formula(T, W, N):
    return (1 + T * clog2(T + 1) + 2 * W + (W // 2) * clog2(W)) * N


def spad_formula(T, W, N):
    return (1 + T * clog2(T + 1) + W + (T // 2) * clog2(T)) * N


class TestFormulas:
    @pytest.mark.parametrize("T,W,N", [(8, 48, 14), (8, 48, 1), (4, 16, 2),
                                       (1, 1, 1), (16, 64, 30)])
    def test_register_matches_paper_formula(self, T, W, N):
        assert register_sharing_bits(T, W, N) == reg_formula(T, W, N)

    @pytest.mark.parametrize("T,W,N", [(8, 48, 14), (8, 48, 1), (4, 16, 2),
                                       (1, 1, 1), (16, 64, 30)])
    def test_scratchpad_matches_paper_formula(self, T, W, N):
        assert scratchpad_sharing_bits(T, W, N) == spad_formula(T, W, N)

    def test_table1_machine_values(self):
        # T=8, W=48, N=14: reg = 1 + 8*4 + 96 + 24*6 = 273 bits/SM.
        assert register_sharing_bits(8, 48, 1) == 273
        assert register_sharing_bits(8, 48, 14) == 273 * 14
        # spad = 1 + 32 + 48 + 4*3 = 93 bits/SM.
        assert scratchpad_sharing_bits(8, 48, 1) == 93

    def test_overhead_is_tiny_vs_register_file(self):
        # The paper's pitch: a few hundred bits vs a 128 KB register file.
        bits = register_sharing_bits(8, 48, 1)
        assert bits < 32768 * 32 / 1000  # < 0.1% of the register file

    def test_linear_in_sm_count(self):
        assert register_sharing_bits(8, 48, 14) == \
            14 * register_sharing_bits(8, 48, 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            register_sharing_bits(0, 48, 1)
        with pytest.raises(ValueError):
            scratchpad_sharing_bits(8, 0, 1)
        with pytest.raises(ValueError):
            register_sharing_bits(8, 48, 0)


class TestSummary:
    def test_summary_uses_config(self):
        s = overhead_summary(GPUConfig())
        assert s["blocks_per_sm"] == 8
        assert s["warps_per_sm"] == 48
        assert s["num_sms"] == 14
        assert s["register_sharing_bits_per_sm"] == 273
        assert s["register_sharing_bits_total"] == 273 * 14
        assert s["scratchpad_sharing_bits_per_sm"] == 93

    def test_register_overhead_exceeds_scratchpad(self):
        # W >> T, so per-warp state dominates.
        s = overhead_summary(GPUConfig())
        assert (s["register_sharing_bits_per_sm"]
                > s["scratchpad_sharing_bits_per_sm"])
