"""SMStats / RunResult accounting and serialization."""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.stats import RunResult, SMStats


def sm(i=0, **kw):
    s = SMStats(sm_id=i)
    for k, v in kw.items():
        setattr(s, k, v)
    return s


class TestSMStats:
    def test_total_cycles(self):
        s = sm(active_cycles=10, stall_cycles=5, idle_cycles=3,
               empty_cycles=2)
        assert s.total_cycles == 20

    def test_idle_like(self):
        s = sm(idle_cycles=3, empty_cycles=2)
        assert s.idle_like_cycles == 5

    def test_defaults_zero(self):
        s = SMStats()
        assert s.instructions == 0
        assert s.total_cycles == 0
        assert s.early_releases == 0


class TestRunResult:
    def mk(self):
        return RunResult(
            kernel="k", mode="m", cycles=100, instructions=250,
            sm_stats=[sm(0, stall_cycles=10, idle_cycles=5, empty_cycles=1,
                         max_resident_blocks=3),
                      sm(1, stall_cycles=20, idle_cycles=0, empty_cycles=4,
                         max_resident_blocks=6)],
            mem={"l1_miss_rate": 0.5, "dram_requests": 42},
            blocks_baseline=3, blocks_total=6)

    def test_ipc(self):
        assert self.mk().ipc == 2.5

    def test_zero_cycles_ipc(self):
        r = RunResult(kernel="k", mode="m", cycles=0, instructions=0)
        assert r.ipc == 0.0

    def test_stall_aggregation(self):
        assert self.mk().stall_cycles == 30

    def test_idle_includes_empty(self):
        assert self.mk().idle_cycles == 10

    def test_max_resident(self):
        assert self.mk().max_resident_blocks == 6

    def test_max_resident_empty(self):
        r = RunResult(kernel="k", mode="m", cycles=1, instructions=0)
        assert r.max_resident_blocks == 0

    def test_summary_flattens_mem(self):
        s = self.mk().summary()
        assert s["ipc"] == 2.5
        assert s["l1_miss_rate"] == 0.5
        assert s["dram_requests"] == 42
        assert s["max_resident_blocks"] == 6

    def test_summary_preserves_mem_counter_types(self):
        # regression: integer mem counters were coerced to float,
        # disagreeing with to_dict() and the sweep CSV
        s = self.mk().summary()
        assert type(s["dram_requests"]) is int
        assert type(s["l1_miss_rate"]) is float

    def test_metrics_default_absent_from_dict(self):
        # golden_core.json pins unobserved results byte-for-byte: the
        # metrics field must not appear unless a run was observed
        d = self.mk().to_dict()
        assert "metrics" not in d
        r = RunResult.from_dict(d)
        assert r.metrics is None

    def test_metrics_round_trip_when_present(self):
        r = self.mk()
        r.metrics = {"counters": {"lock_acquires{kind=reg}": 3},
                     "gauges": {}, "histograms": {}}
        back = RunResult.from_dict(json.loads(json.dumps(r.to_dict())))
        assert back.metrics == r.metrics
        assert back == r


counters = st.integers(min_value=0, max_value=10**9)

sm_stats_st = st.builds(
    SMStats,
    sm_id=st.integers(min_value=0, max_value=63),
    instructions=counters, mem_instructions=counters,
    active_cycles=counters, stall_cycles=counters, idle_cycles=counters,
    empty_cycles=counters, issued_unshared=counters, issued_owner=counters,
    issued_nonowner=counters, lock_acquires=counters, lock_waits=counters,
    dyn_refusals=counters, early_releases=counters, mshr_stalls=counters,
    barriers=counters, blocks_launched=counters, blocks_completed=counters,
    max_resident_blocks=counters)

run_result_st = st.builds(
    RunResult,
    kernel=st.text(max_size=20), mode=st.text(max_size=20),
    cycles=counters, instructions=counters,
    sm_stats=st.lists(sm_stats_st, max_size=4),
    mem=st.dictionaries(
        st.text(min_size=1, max_size=12),
        st.one_of(counters,
                  st.floats(min_value=0, max_value=1e9,
                            allow_nan=False, allow_infinity=False)),
        max_size=5),
    blocks_baseline=counters, blocks_total=counters)


class TestSerialization:
    """The engine's disk cache requires a bit-exact JSON round trip."""

    @settings(max_examples=50, deadline=None)
    @given(sm_stats_st)
    def test_sm_stats_round_trip(self, s):
        assert SMStats.from_dict(s.to_dict()) == s

    @settings(max_examples=50, deadline=None)
    @given(run_result_st)
    def test_run_result_round_trip(self, r):
        restored = RunResult.from_dict(r.to_dict())
        assert restored == r
        assert restored.ipc == r.ipc
        assert restored.stall_cycles == r.stall_cycles

    @settings(max_examples=50, deadline=None)
    @given(run_result_st)
    def test_round_trip_survives_json(self, r):
        # through an actual JSON string, as the cache stores it: ints must
        # stay ints, floats floats, per-SM counters exact
        restored = RunResult.from_dict(json.loads(json.dumps(r.to_dict())))
        assert restored == r
        assert restored.to_dict() == r.to_dict()
        for orig, back in zip(r.sm_stats, restored.sm_stats):
            assert type(back.instructions) is int
            assert back == orig

    def test_mutating_copy_not_aliased(self):
        r = RunResult(kernel="k", mode="m", cycles=1, instructions=1,
                      mem={"x": 1})
        d = r.to_dict()
        d["mem"]["x"] = 2
        assert r.mem["x"] == 1
