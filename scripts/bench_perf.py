#!/usr/bin/env python
"""Wall-clock benchmark of the fast simulator core vs the reference core.

Runs every distinct cell of the Fig. 8(c)/8(d)/9(a)/9(b) sweeps — each
Set-1 app under Unshared-LRR plus all four register-sharing ablation
modes, each Set-2 app under Unshared-LRR plus both scratchpad-sharing
modes — on both cores at the sweep's production machine size, checks
the results are bit-identical, and writes throughput numbers to
``BENCH_PERF.json``:

    PYTHONPATH=src python scripts/bench_perf.py

If the output file already exists, the previous numbers are loaded first
and a comparison is printed after the run.  Modes:

``--tiny``
    A four-cell matrix on a half-size machine for CI smoke runs.
``--check``
    Compare against the committed JSON instead of overwriting it: exit
    non-zero if the fast core's speedup over the reference core dropped
    below half of the committed speedup.  The check is a *ratio* of two
    wall-clocks measured on the same machine in the same process, so it
    is hardware-independent — a committed absolute wall-clock would fail
    on any slower CI runner.
``--apps A,B,...``
    Restrict the matrix to the named apps (subset sanity runs).

Results are simulated fresh on every invocation (the harness result
cache is not involved); each cell's fast-vs-reference equality doubles
as a coarse differential test at full sweep scale, complementing the
golden-pinned matrix in ``tests/test_core_equivalence.py``.
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.config import GPUConfig  # noqa: E402
from repro.core.sharing import SharedResource  # noqa: E402
from repro.harness.runner import Mode, run, shared, unshared  # noqa: E402
from repro.workloads import APPS, SET1, SET2  # noqa: E402

SCHEMA = 1


def full_matrix() -> list[tuple[str, Mode]]:
    """Every distinct cell of the Fig. 8(c)/8(d)/9(a)/9(b) sweeps.

    Set-1 apps run under Unshared-LRR plus the full Fig. 9(a) register
    sharing ablation (NoOpt → Unroll → Unroll-Dyn → OWF-Unroll-Dyn);
    Set-2 apps under Unshared-LRR plus both Fig. 9(b) scratchpad
    variants.  Fig. 8(c)/(d) are subsets of these cells.
    """
    cells: list[tuple[str, Mode]] = []
    REG, SPAD = SharedResource.REGISTERS, SharedResource.SCRATCHPAD
    set1_modes = [
        unshared("lrr"),
        shared(REG, "lrr"),                          # NoOpt
        shared(REG, "lrr", unroll=True),             # Unroll
        shared(REG, "lrr", unroll=True, dyn=True),   # Unroll-Dyn
        shared(REG, "owf", unroll=True, dyn=True),   # headline
    ]
    for app in SET1:
        for m in set1_modes:
            cells.append((app, m))
    set2_modes = [unshared("lrr"), shared(SPAD, "lrr"),
                  shared(SPAD, "owf")]
    for app in SET2:
        for m in set2_modes:
            cells.append((app, m))
    return cells


def tiny_matrix() -> list[tuple[str, Mode]]:
    """Four cells that finish in seconds — the CI smoke matrix."""
    reg = shared(SharedResource.REGISTERS, "owf", unroll=True, dyn=True)
    spad = shared(SharedResource.SCRATCHPAD, "owf")
    return [("MUM", unshared("lrr")), ("MUM", reg),
            ("SRAD1", unshared("lrr")), ("SRAD1", spad)]


def bench(cells: list[tuple[str, Mode]], cfg: GPUConfig, scale: float,
          waves: float) -> dict:
    """Time every cell on both cores; returns the BENCH_PERF payload."""
    cores = ("fast", "reference")
    per_core: dict[str, dict] = {
        c: {"wall_s": 0.0, "instructions": 0, "cycles": 0, "cells": []}
        for c in cores
    }
    identical = True
    for app, mode in cells:
        dicts = {}
        for core in cores:
            gc.collect()
            t0 = time.perf_counter()
            res = run(APPS[app], mode, config=cfg, scale=scale,
                      waves=waves, core=core)
            wall = time.perf_counter() - t0
            dicts[core] = res.to_dict()
            agg = per_core[core]
            agg["wall_s"] += wall
            agg["instructions"] += res.instructions
            agg["cycles"] += res.cycles
            agg["cells"].append({
                "app": app, "mode": mode.label, "wall_s": round(wall, 4),
                "instructions": res.instructions, "cycles": res.cycles,
            })
        same = dicts["fast"] == dicts["reference"]
        identical &= same
        cell_speedup = (per_core["reference"]["cells"][-1]["wall_s"]
                        / max(per_core["fast"]["cells"][-1]["wall_s"], 1e-9))
        print(f"  {app:>10s} | {mode.label:<25s} "
              f"fast {per_core['fast']['cells'][-1]['wall_s']:7.2f}s  "
              f"ref {per_core['reference']['cells'][-1]['wall_s']:7.2f}s  "
              f"{cell_speedup:5.2f}x  "
              f"{'identical' if same else '** DIVERGED **'}", flush=True)
    for core in cores:
        agg = per_core[core]
        w = max(agg["wall_s"], 1e-9)
        agg["wall_s"] = round(agg["wall_s"], 3)
        agg["sims_per_s"] = round(len(cells) / w, 4)
        agg["minstr_per_s"] = round(agg["instructions"] / w / 1e6, 3)
        agg["mcycles_per_s"] = round(agg["cycles"] / w / 1e6, 3)
    speedup = per_core["reference"]["wall_s"] / max(
        per_core["fast"]["wall_s"], 1e-9)
    return {
        "schema": SCHEMA,
        "machine": {"num_clusters": cfg.num_clusters, "scale": scale,
                    "waves": waves},
        "n_cells": len(cells),
        "identical": identical,
        "speedup": round(speedup, 3),
        "cores": per_core,
    }


def report(data: dict) -> None:
    for core in ("fast", "reference"):
        c = data["cores"][core]
        print(f"{core:>10s}: {c['wall_s']:8.2f}s  "
              f"{c['sims_per_s']:7.3f} sims/s  "
              f"{c['minstr_per_s']:7.3f} Minstr/s  "
              f"{c['mcycles_per_s']:7.3f} Mcycles/s")
    print(f"   speedup: {data['speedup']:.2f}x  "
          f"(results {'identical' if data['identical'] else 'DIVERGED'})")


def compare(old: dict, new: dict) -> None:
    if old.get("schema") != new["schema"] or old.get("n_cells") != \
            new["n_cells"]:
        print("previous JSON covers a different matrix; no comparison")
        return
    of, nf = old["cores"]["fast"], new["cores"]["fast"]
    print(f"vs previous: fast wall {of['wall_s']:.2f}s -> "
          f"{nf['wall_s']:.2f}s  "
          f"({nf['wall_s'] / max(of['wall_s'], 1e-9):.2f}x), "
          f"speedup {old['speedup']:.2f}x -> {new['speedup']:.2f}x")


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", default=str(Path(__file__).resolve().parent
                                         .parent / "BENCH_PERF.json"),
                    help="output/baseline JSON path")
    ap.add_argument("--tiny", action="store_true",
                    help="four-cell half-size matrix (CI smoke)")
    ap.add_argument("--apps", default=None,
                    help="comma-separated app subset of the full matrix")
    ap.add_argument("--check", action="store_true",
                    help="compare against the committed JSON; fail if the "
                         "fast-core speedup fell below half the baseline")
    args = ap.parse_args(argv)

    if args.tiny:
        cells = tiny_matrix()
        cfg = GPUConfig().scaled(num_clusters=2)
        scale, waves = 0.5, 1.5
    else:
        cells = full_matrix()
        cfg = GPUConfig().scaled(num_clusters=4)
        scale, waves = 1.0, 3.0
    if args.apps:
        keep = set(args.apps.split(","))
        unknown = keep - {a for a, _ in cells}
        if unknown:
            ap.error(f"apps not in the matrix: {sorted(unknown)}")
        cells = [(a, m) for a, m in cells if a in keep]

    out = Path(args.out)
    prev = json.loads(out.read_text()) if out.is_file() else None

    print(f"benchmarking {len(cells)} cells x 2 cores "
          f"(clusters={cfg.num_clusters}, scale={scale}, waves={waves})",
          flush=True)
    data = bench(cells, cfg, scale, waves)
    report(data)

    if not data["identical"]:
        print("FAIL: fast and reference cores diverged", file=sys.stderr)
        return 1

    if args.check:
        if prev is None:
            print(f"FAIL: no baseline at {out}", file=sys.stderr)
            return 1
        floor = 0.5 * prev["speedup"]
        print(f"check: speedup {data['speedup']:.2f}x vs baseline "
              f"{prev['speedup']:.2f}x (floor {floor:.2f}x)")
        if data["speedup"] < floor:
            print("FAIL: fast core regressed more than 50% relative to "
                  "the reference core", file=sys.stderr)
            return 1
        return 0

    if prev is not None:
        compare(prev, data)
    out.write_text(json.dumps(data, indent=1, sort_keys=True) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
