#!/usr/bin/env python
"""CI smoke for the simulation service: real processes, real signals.

The in-thread tests in ``tests/test_service.py`` pin the semantics;
this script proves them across process boundaries, the way the service
actually deploys:

1. start ``python -m repro serve`` as a subprocess;
2. run a fig8-style cell batch through the ``repro submit`` CLI and
   assert every result payload is digest- and result-identical to a
   direct ``repro run --json`` of the same cell;
3. queue 20 jobs and ``SIGTERM`` the server mid-queue: the process
   must exit 0 (graceful drain), leave no job in ``running`` and lose
   none;
4. restart on the same store and drain the queue to completion.

Usage::

    PYTHONPATH=src python scripts/service_smoke.py
"""

from __future__ import annotations

import argparse
import json
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.service import JobStore, ServiceClient

CELLS = [("gaussian", "lrr"), ("gaussian", "shared-reg"),
         ("hotspot", "lrr"), ("hotspot", "shared-reg")]
RUN_FLAGS = ["--clusters", "1", "--scale", "0.2", "--waves", "1"]


def free_port() -> int:
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def start_server(port: int, db: Path) -> subprocess.Popen:
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", str(port),
         "--db", str(db), "--jobs", "1", "--no-cache",
         "--batch-wait", "0.02"])
    client = ServiceClient(port=port, timeout=5.0)
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise SystemExit(f"server died on startup "
                             f"(rc={proc.returncode})")
        try:
            client.healthz()
            return proc
        except OSError:
            time.sleep(0.05)
    proc.kill()
    raise SystemExit("server did not come up within 30s")


def cli_json(argv: list[str]) -> dict:
    out = subprocess.run([sys.executable, "-m", "repro", *argv],
                         capture_output=True, text=True)
    if out.returncode != 0:
        raise SystemExit(f"`repro {' '.join(argv)}` failed "
                         f"(rc={out.returncode}):\n{out.stderr}")
    return json.loads(out.stdout)


def check_digest_equality(port: int) -> None:
    for app, mode in CELLS:
        remote = cli_json(["submit", app, "--mode", mode, *RUN_FLAGS,
                           "--port", str(port), "--wait",
                           "--wait-timeout", "120", "--json"])
        local = cli_json(["run", app, "--mode", mode, *RUN_FLAGS,
                          "--no-cache", "--json"])
        assert remote["ok"] and local["ok"], (app, mode)
        assert remote["digest"] == local["digest"], \
            f"{app}/{mode}: digest mismatch"
        assert remote["result"] == local["result"], \
            f"{app}/{mode}: result payload mismatch"
        print(f"  cell {app:10s} {mode:12s} digest "
              f"{remote['digest'][:16]}… identical local/remote")


def queue_20_and_sigterm(port: int, db: Path,
                         proc: subprocess.Popen) -> list[str]:
    client = ServiceClient(port=port, client_id="smoke")
    from repro.config import GPUConfig
    from repro.harness.engine import RunSpec
    from repro.harness.runner import unshared
    from repro.workloads.apps import APPS
    cfg = GPUConfig().scaled(num_clusters=1)
    specs = [RunSpec.create(APPS["gaussian"], unshared("lrr"),
                            config=cfg, scale=0.2, waves=1.0,
                            max_cycles=10_000_000 + i)
             for i in range(20)]
    ids = [client.submit(s)["id"] for s in specs]
    proc.send_signal(signal.SIGTERM)     # mid-queue, on purpose
    rc = proc.wait(timeout=120)
    if rc != 0:
        raise SystemExit(f"graceful drain exited {rc}, expected 0")

    store = JobStore(db)
    states = {jid: store.get(jid).state for jid in ids}
    counts = store.counts()
    store.close()
    lost = [jid for jid, st in states.items()
            if st not in ("done", "queued")]
    if counts["running"] or lost:
        raise SystemExit(f"drain lost jobs: running={counts['running']} "
                         f"bad states={lost}")
    done = sum(1 for st in states.values() if st == "done")
    print(f"  SIGTERM with 20 queued: rc=0, {done} done, "
          f"{20 - done} requeued, 0 lost")
    return ids


def drain_after_restart(port: int, ids: list[str]) -> None:
    client = ServiceClient(port=port, client_id="smoke")
    for jid in ids:
        payload = client.wait(jid, timeout=120)
        assert payload["ok"], f"job {jid} failed after restart"
    print(f"  restart drained all {len(ids)} jobs to done")


def main(argv: list[str] | None = None) -> int:
    argparse.ArgumentParser(description=__doc__.splitlines()[0]) \
        .parse_args(argv)
    tmp = Path(tempfile.mkdtemp(prefix="repro-service-smoke-"))
    db = tmp / "jobs.sqlite"
    port = free_port()

    print(f"service smoke: port {port}, store {db}")
    proc = start_server(port, db)
    try:
        check_digest_equality(port)
        ids = queue_20_and_sigterm(port, db, proc)
        proc = start_server(port, db)
        drain_after_restart(port, ids)
    finally:
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=60)
    print("service smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
