"""Kernel and Segment semantics."""

import pytest

from repro.isa.instructions import Instr, MemDesc
from repro.isa.kernel import Kernel, Segment
from repro.isa.opcodes import MemSpace, Op


def alu(d, s):
    return Instr(Op.FADD, dst=(d,), src=(s,))


EXIT = Instr(Op.EXIT)


def mk(segs, regs=8, threads=64, smem=0, **kw):
    return Kernel(name="k", threads_per_block=threads, regs_per_thread=regs,
                  smem_per_block=smem, grid_blocks=1, segments=segs, **kw)


class TestSegment:
    def test_repeat_positive(self):
        with pytest.raises(ValueError):
            Segment((EXIT,), repeat=0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Segment((), repeat=1)

    def test_dynamic_count(self):
        s = Segment((alu(0, 1), alu(1, 0)), repeat=5)
        assert s.dynamic_count == 10


class TestKernelValidation:
    def test_must_end_with_exit(self):
        with pytest.raises(ValueError):
            mk((Segment((alu(0, 1),)),))

    def test_register_overflow_detected(self):
        with pytest.raises(ValueError) as e:
            mk((Segment((alu(7, 8), EXIT)),), regs=8)
        assert "register 8" in str(e.value)

    def test_scratchpad_overflow_detected(self):
        lds = Instr(Op.LDS, dst=(0,),
                    mem=MemDesc(MemSpace.SHARED, offset=100))
        with pytest.raises(ValueError):
            mk((Segment((lds, EXIT)),), smem=64)

    def test_scratchpad_wrap_checked(self):
        lds = Instr(Op.LDS, dst=(0,),
                    mem=MemDesc(MemSpace.SHARED, offset=0, stride=4,
                                wrap=128))
        with pytest.raises(ValueError):
            mk((Segment((lds, EXIT)),), smem=64)
        mk((Segment((lds, EXIT)),), smem=128)  # exactly fits

    def test_variance_range(self):
        seg = (Segment((EXIT,)),)
        with pytest.raises(ValueError):
            mk(seg, work_variance=0.95)
        with pytest.raises(ValueError):
            mk(seg, work_variance=-0.1)

    def test_variance_with_loop_barrier_rejected(self):
        segs = (Segment((alu(0, 1), Instr(Op.BAR)), repeat=4),
                Segment((EXIT,)))
        with pytest.raises(ValueError):
            mk(segs, work_variance=0.3)
        mk(segs, work_variance=0.0)  # fine without variance

    def test_variance_with_sequential_barrier_ok(self):
        segs = (Segment((alu(0, 1),), repeat=4),
                Segment((Instr(Op.BAR), EXIT)))
        mk(segs, work_variance=0.3)

    def test_grid_positive(self):
        with pytest.raises(ValueError):
            mk((Segment((EXIT,)),)).with_grid(0)


class TestKernelProperties:
    def test_warps_per_block_rounds_up(self):
        k = mk((Segment((EXIT,)),), threads=508)
        assert k.warps_per_block == 16

    def test_regs_per_block(self):
        k = mk((Segment((EXIT,)),), threads=256, regs=36)
        assert k.regs_per_block == 9216
        assert k.regs_per_warp == 36 * 32

    def test_dynamic_count(self):
        segs = (Segment((alu(0, 1),), repeat=10), Segment((EXIT,)))
        assert mk(segs).dynamic_count == 11

    def test_iter_trace_matches_dynamic_count(self):
        segs = (Segment((alu(0, 1), alu(1, 0)), repeat=3),
                Segment((alu(2, 0), EXIT)))
        k = mk(segs)
        trace = list(k.iter_trace())
        assert len(trace) == k.dynamic_count == 8
        assert trace[-1].op is Op.EXIT

    def test_registers_used_first_use_order(self):
        segs = (Segment((alu(5, 3), alu(1, 5), EXIT)),)
        assert mk(segs).registers_used == (5, 3, 1)

    def test_max_register_used(self):
        segs = (Segment((alu(5, 3), EXIT)),)
        assert mk(segs).max_register_used == 5

    def test_with_grid(self):
        k = mk((Segment((EXIT,)),))
        k2 = k.with_grid(100)
        assert k2.grid_blocks == 100
        assert k.grid_blocks == 1  # original untouched

    def test_remap_registers(self):
        segs = (Segment((alu(5, 3), EXIT)),)
        k = mk(segs).remap_registers({5: 0, 3: 1})
        ins = k.static_instrs[0]
        assert ins.dst == (0,) and ins.src == (1,)
