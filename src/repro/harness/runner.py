"""Run one (app, mode) pair on the simulator.

A :class:`Mode` bundles the paper's experimental axes: warp scheduler,
shared resource (None / registers / scratchpad), threshold ``t``, and the
two register-sharing optimisations (unroll, Dyn).  Canonical labels
follow the paper's figure legends (``Unshared-LRR``,
``Shared-OWF-Unroll-Dyn``, ...).

Grid sizing: the grid is ``waves × num_sms × baseline_blocks`` so every
mode of one app runs the *same* total work and IPC values are directly
comparable (including the doubled-resource baselines of Fig. 11, which
pin the grid via ``grid_blocks``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import GPUConfig
from repro.core.occupancy import occupancy
from repro.core.sharing import SharedResource, SharingSpec, plan_sharing
from repro.core.unroll import reorder_registers
from repro.isa.kernel import Kernel
from repro.obs.sink import NULL_SINK, ObsSink
from repro.sim.gpu import GPU
from repro.sim.stats import RunResult
from repro.workloads.apps import App

__all__ = ["Mode", "unshared", "shared", "run", "improvement"]


@dataclass(frozen=True)
class Mode:
    """One experimental configuration."""

    label: str
    scheduler: str = "lrr"
    sharing: SharedResource | None = None
    t: float = 0.1
    unroll: bool = False
    dyn: bool = False
    #: Live-range early release of shared registers (Sec. VIII future
    #: work, implemented as an extension — see core/liverange.py).
    early_release: bool = False

    def __post_init__(self) -> None:
        if self.dyn and self.sharing is not SharedResource.REGISTERS:
            raise ValueError("Dyn requires register sharing (Sec. IV-C)")
        if self.unroll and self.sharing is None:
            raise ValueError("the unroll pass targets register sharing")
        if self.early_release and self.sharing is not SharedResource.REGISTERS:
            raise ValueError("early release targets register sharing")


_SCHED_TAG = {"lrr": "LRR", "gto": "GTO", "two_level": "2LV", "owf": "OWF"}


def unshared(scheduler: str = "lrr") -> Mode:
    """Baseline mode: no sharing, given scheduler."""
    return Mode(label=f"Unshared-{_SCHED_TAG[scheduler]}",
                scheduler=scheduler)


def shared(resource: SharedResource, scheduler: str = "lrr", *,
           t: float = 0.1, unroll: bool = False, dyn: bool = False,
           early_release: bool = False) -> Mode:
    """Sharing mode with the paper's label convention."""
    tag = _SCHED_TAG[scheduler]
    label = f"Shared-{tag}"
    if unroll:
        label += "-Unroll"
    if dyn:
        label += "-Dyn"
    if early_release:
        label += "-ER"
    if scheduler == "lrr" and not unroll and not dyn and not early_release:
        label += "-NoOpt"
    return Mode(label=label, scheduler=scheduler, sharing=resource, t=t,
                unroll=unroll, dyn=dyn, early_release=early_release)


def run(app: App | Kernel, mode: Mode, *, config: GPUConfig | None = None,
        scale: float = 1.0, waves: float = 6.0,
        grid_blocks: int | None = None,
        max_cycles: int = 2_000_000,
        sanitize: bool = False,
        core: str = "fast",
        obs: ObsSink = NULL_SINK) -> RunResult:
    """Simulate ``app`` under ``mode`` and return the result.

    ``sanitize=True`` enables the runtime invariant sanitizer (see
    :mod:`repro.sim.sanitizer`): the DESIGN.md §6 lock and conservation
    invariants are validated during simulation and a violation raises
    :class:`~repro.sim.sanitizer.SanitizerViolation`.  Results are
    unchanged when the invariants hold.

    ``core`` selects the simulator core (``"fast"`` or ``"reference"``,
    see :class:`~repro.sim.gpu.GPU`); both produce identical results.

    ``obs`` attaches an observability sink (see docs/observability.md):
    pass an :class:`~repro.obs.Observer` to collect metrics and/or a
    Chrome-trace timeline; counters land on ``RunResult.metrics``.
    Simulated behaviour is identical with or without observation.
    """
    if config is None:
        config = GPUConfig()
    kernel = app.kernel(scale) if isinstance(app, App) else app
    if mode.unroll:
        kernel = reorder_registers(kernel)
    if grid_blocks is None:
        base = occupancy(kernel, config).blocks
        grid_blocks = max(1, round(waves * config.num_sms * base))
    kernel = kernel.with_grid(grid_blocks)

    plan = None
    if mode.sharing is not None:
        plan = plan_sharing(kernel, config,
                            SharingSpec(mode.sharing, mode.t))
    gpu = GPU(kernel, config, scheduler=mode.scheduler, plan=plan,
              dyn=mode.dyn, early_release=mode.early_release,
              mode=mode.label, sanitize=sanitize, core=core, obs=obs)
    return gpu.run(max_cycles=max_cycles)


def improvement(base: RunResult, new: RunResult) -> float:
    """Percentage IPC improvement of ``new`` over ``base`` (paper metric)."""
    if base.ipc == 0:
        raise ValueError("baseline IPC is zero")
    return (new.ipc - base.ipc) / base.ipc * 100.0
