#!/usr/bin/env python3
"""Occupancy and resource-waste explorer (paper Fig. 1, Sec. I-A).

Pure static analysis — no simulation.  For every app in the paper's
benchmark sets it prints the baseline occupancy, the binding constraint,
the wasted resource fraction, and how many blocks each sharing threshold
recovers (Eq. 4).

Run:  python examples/occupancy_explorer.py
"""

from repro import (APPS, GPUConfig, SET1, SET2, SET3, SharedResource,
                   occupancy, plan_sharing)
from repro.core.sharing import SharingSpec

cfg = GPUConfig()  # full Table I machine

print("=== Set-1: register-limited (paper Fig. 1a/1b, Table VI) ===")
print(f"{'app':9s} {'blk':>4s} {'waste%':>7s} | blocks at sharing% "
      f"{'10':>3s} {'30':>3s} {'50':>3s} {'70':>3s} {'90':>3s}")
for name in SET1:
    k = APPS[name].kernel()
    occ = occupancy(k, cfg)
    cols = []
    for pct in (10, 30, 50, 70, 90):
        plan = plan_sharing(k, cfg, SharingSpec(
            SharedResource.REGISTERS, 1.0 - pct / 100.0))
        cols.append(f"{plan.total:3d}")
    print(f"{name:9s} {occ.blocks:4d} {occ.register_waste_pct:6.1f}% | "
          f"{'':19s} {' '.join(cols)}")

print("\n=== Set-2: scratchpad-limited (paper Fig. 1c/1d, Table VIII) ===")
print(f"{'app':9s} {'blk':>4s} {'waste%':>7s} | blocks at sharing% "
      f"{'10':>3s} {'30':>3s} {'50':>3s} {'70':>3s} {'90':>3s}")
for name in SET2:
    k = APPS[name].kernel()
    occ = occupancy(k, cfg)
    cols = []
    for pct in (10, 30, 50, 70, 90):
        plan = plan_sharing(k, cfg, SharingSpec(
            SharedResource.SCRATCHPAD, 1.0 - pct / 100.0))
        cols.append(f"{plan.total:3d}")
    print(f"{name:9s} {occ.blocks:4d} {occ.scratchpad_waste_pct:6.1f}% | "
          f"{'':19s} {' '.join(cols)}")

print("\n=== Set-3: limited by threads/blocks (paper Table IV) ===")
for name in SET3:
    k = APPS[name].kernel()
    occ = occupancy(k, cfg)
    plan = plan_sharing(k, cfg, SharingSpec(SharedResource.REGISTERS, 0.1))
    print(f"{name:12s} {occ.blocks} blocks/SM, limiter={occ.limiter:8s} "
          f"-> sharing adds {plan.extra} blocks (expected 0)")

print("\nWorked example (paper Sec. I-A): hotspot needs 36 regs x 256 "
      "threads = 9216 regs/block;\n32768 // 9216 = 3 blocks, wasting "
      "32768 - 27648 = 5120 registers (15.6%).")
