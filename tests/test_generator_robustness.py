"""Fuzz/robustness net: generated kernels complete under every mode.

This is the widest safety net in the suite: random (but deterministic)
kernels spanning loops, barriers, every memory pattern, scratchpad use,
register pressure and work variance are run under baseline, register
sharing and scratchpad sharing.  Every run must terminate (no deadlock,
no runaway) and conserve instructions.
"""

import pytest

from repro.config import GPUConfig
from repro.core.occupancy import occupancy
from repro.core.sharing import SharedResource, SharingSpec, plan_sharing
from repro.core.unroll import reorder_registers
from repro.sim.gpu import GPU
from repro.workloads.generator import generate_kernel

CFG = GPUConfig().scaled(num_clusters=2)
SEEDS = list(range(24))


class TestGeneration:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_generated_kernels_valid(self, seed):
        k = generate_kernel(seed)
        assert k.dynamic_count >= 1
        occ = occupancy(k, CFG)  # fits on an SM
        assert occ.blocks >= 1

    def test_deterministic(self):
        assert generate_kernel(7) == generate_kernel(7)

    def test_seeds_differ(self):
        assert generate_kernel(1) != generate_kernel(2)


class TestBaselineRobustness:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_completes_and_conserves(self, seed):
        k = generate_kernel(seed).with_grid(5)
        gpu = GPU(k, CFG)
        r = gpu.run(max_cycles=1_500_000)
        assert gpu.dispatcher.completed == 5
        assert r.instructions > 0
        for s in r.sm_stats:
            assert s.total_cycles == r.cycles


class TestSharingRobustness:
    @pytest.mark.parametrize("seed", SEEDS[:12])
    def test_register_sharing_never_deadlocks(self, seed):
        k = reorder_registers(generate_kernel(seed)).with_grid(6)
        plan = plan_sharing(k, CFG, SharingSpec(SharedResource.REGISTERS,
                                                0.1))
        gpu = GPU(k, CFG, scheduler="owf", plan=plan, dyn=True)
        gpu.run(max_cycles=1_500_000)
        assert gpu.dispatcher.completed == 6

    @pytest.mark.parametrize("seed", SEEDS[:12])
    def test_scratchpad_sharing_never_deadlocks(self, seed):
        k = generate_kernel(seed).with_grid(6)
        plan = plan_sharing(k, CFG, SharingSpec(SharedResource.SCRATCHPAD,
                                                0.1))
        gpu = GPU(k, CFG, scheduler="owf", plan=plan)
        gpu.run(max_cycles=1_500_000)
        assert gpu.dispatcher.completed == 6

    @pytest.mark.parametrize("seed", [3, 11])
    @pytest.mark.parametrize("t", [0.05, 0.25, 0.5, 0.75, 1.0])
    def test_threshold_sweep_robust(self, seed, t):
        k = generate_kernel(seed).with_grid(4)
        plan = plan_sharing(k, CFG, SharingSpec(SharedResource.REGISTERS, t))
        gpu = GPU(k, CFG, plan=plan)
        gpu.run(max_cycles=1_500_000)
        assert gpu.dispatcher.completed == 4

    @pytest.mark.parametrize("seed", SEEDS[:6])
    def test_early_release_robust(self, seed):
        k = reorder_registers(generate_kernel(seed)).with_grid(4)
        plan = plan_sharing(k, CFG, SharingSpec(SharedResource.REGISTERS,
                                                0.1))
        gpu = GPU(k, CFG, scheduler="owf", plan=plan, early_release=True)
        gpu.run(max_cycles=1_500_000)
        assert gpu.dispatcher.completed == 4

    @pytest.mark.parametrize("scheduler", ["lrr", "gto", "two_level", "owf"])
    def test_all_schedulers_robust(self, scheduler):
        k = generate_kernel(5).with_grid(4)
        gpu = GPU(k, CFG, scheduler=scheduler)
        gpu.run(max_cycles=1_500_000)
        assert gpu.dispatcher.completed == 4
