"""Batch sweeps over (app × mode × config) with CSV export.

The experiment registry reproduces the paper's artifacts; this module is
the general tool behind it for ad-hoc studies: build a grid of runs,
execute them (optionally caching identical configurations), and export a
flat table ready for any plotting tool.

Example::

    sweep = Sweep(config=GPUConfig().scaled(num_clusters=4))
    sweep.add_apps(["hotspot", "MUM"])
    sweep.add_modes([unshared("lrr"), unshared("gto"),
                     shared(SharedResource.REGISTERS, "owf", unroll=True)])
    rows = sweep.run()
    print(sweep.to_csv())
"""

from __future__ import annotations

import io
from typing import Iterable

from repro.config import GPUConfig
from repro.harness.runner import Mode, run
from repro.sim.stats import RunResult
from repro.workloads.apps import APPS, App

__all__ = ["Sweep", "result_row", "rows_to_csv"]

#: Flat columns exported for every run.
CSV_COLUMNS = (
    "app", "mode", "clusters", "scale", "waves", "ipc", "cycles",
    "instructions", "stall_cycles", "idle_cycles", "max_resident_blocks",
    "blocks_baseline", "blocks_total", "l1_miss_rate", "l2_miss_rate",
    "dram_requests", "lock_acquires", "lock_waits", "dyn_refusals",
    "early_releases",
)


def result_row(res: RunResult, *, clusters: int, scale: float,
               waves: float) -> dict:
    """Flatten a :class:`RunResult` into one CSV row."""
    agg = lambda f: sum(getattr(s, f) for s in res.sm_stats)  # noqa: E731
    return {
        "app": res.kernel,
        "mode": res.mode,
        "clusters": clusters,
        "scale": scale,
        "waves": waves,
        "ipc": round(res.ipc, 4),
        "cycles": res.cycles,
        "instructions": res.instructions,
        "stall_cycles": res.stall_cycles,
        "idle_cycles": res.idle_cycles,
        "max_resident_blocks": res.max_resident_blocks,
        "blocks_baseline": res.blocks_baseline,
        "blocks_total": res.blocks_total,
        "l1_miss_rate": round(float(res.mem["l1_miss_rate"]), 4),
        "l2_miss_rate": round(float(res.mem["l2_miss_rate"]), 4),
        "dram_requests": res.mem["dram_requests"],
        "lock_acquires": agg("lock_acquires"),
        "lock_waits": agg("lock_waits"),
        "dyn_refusals": agg("dyn_refusals"),
        "early_releases": agg("early_releases"),
    }


def rows_to_csv(rows: Iterable[dict]) -> str:
    """Render rows as CSV text with the standard column set."""
    out = io.StringIO()
    out.write(",".join(CSV_COLUMNS) + "\n")
    for r in rows:
        out.write(",".join(str(r.get(c, "")) for c in CSV_COLUMNS) + "\n")
    return out.getvalue()


class Sweep:
    """A grid of (app × mode) runs on one machine configuration."""

    def __init__(self, *, config: GPUConfig | None = None,
                 scale: float = 1.0, waves: float = 6.0) -> None:
        self.config = config if config is not None else GPUConfig()
        self.scale = scale
        self.waves = waves
        self._apps: list[App] = []
        self._modes: list[Mode] = []
        self.rows: list[dict] = []

    # -- grid construction ----------------------------------------------
    def add_apps(self, apps: Iterable[str | App]) -> "Sweep":
        """Add apps by name (registry) or as App objects."""
        for a in apps:
            self._apps.append(APPS[a] if isinstance(a, str) else a)
        return self

    def add_modes(self, modes: Iterable[Mode]) -> "Sweep":
        """Add run modes."""
        self._modes.extend(modes)
        return self

    @property
    def size(self) -> int:
        """Number of simulations the sweep will run."""
        return len(self._apps) * len(self._modes)

    # -- execution --------------------------------------------------------
    def run(self, progress: bool = False) -> list[dict]:
        """Execute the grid; returns (and stores) the flat rows."""
        if not self._apps or not self._modes:
            raise ValueError("sweep needs at least one app and one mode")
        self.rows = []
        for app in self._apps:
            for mode in self._modes:
                res = run(app, mode, config=self.config, scale=self.scale,
                          waves=self.waves)
                self.rows.append(result_row(
                    res, clusters=self.config.num_clusters,
                    scale=self.scale, waves=self.waves))
                if progress:  # pragma: no cover - console nicety
                    print(f"  {app.name} / {mode.label}: "
                          f"IPC {res.ipc:.2f}")
        return self.rows

    def to_csv(self) -> str:
        """CSV of the last :meth:`run`."""
        if not self.rows:
            raise ValueError("run() the sweep first")
        return rows_to_csv(self.rows)

    def best_mode_per_app(self) -> dict[str, str]:
        """App → label of its highest-IPC mode (from the last run)."""
        best: dict[str, dict] = {}
        for r in self.rows:
            cur = best.get(r["app"])
            if cur is None or r["ipc"] > cur["ipc"]:
                best[r["app"]] = r
        return {app: r["mode"] for app, r in best.items()}
