"""Workload resource signatures match the paper's Tables II/III/IV."""

import pytest

from repro.workloads.apps import APPS, build_app
from repro.workloads.suites import SET1, SET2, SET3, suite_apps

#: Table II: (threads/block, registers/thread).
TABLE2 = {
    "backprop": (256, 24),
    "b+tree": (508, 24),
    "hotspot": (256, 36),
    "LIB": (192, 36),
    "MUM": (256, 28),
    "mri-q": (256, 24),
    "sgemm": (128, 48),
    "stencil": (512, 28),
}

#: Table III: (threads/block, scratchpad bytes/block).
TABLE3 = {
    "CONV1": (64, 2560),
    "CONV2": (128, 5184),
    "lavaMD": (128, 7200),
    "NW1": (16, 2180),
    "NW2": (16, 2180),
    "SRAD1": (256, 6144),
    "SRAD2": (256, 5120),
}


class TestTable2Signatures:
    @pytest.mark.parametrize("name", sorted(TABLE2))
    def test_block_size(self, name):
        assert APPS[name].kernel().threads_per_block == TABLE2[name][0]

    @pytest.mark.parametrize("name", sorted(TABLE2))
    def test_registers_per_thread(self, name):
        assert APPS[name].kernel().regs_per_thread == TABLE2[name][1]


class TestTable3Signatures:
    @pytest.mark.parametrize("name", sorted(TABLE3))
    def test_block_size(self, name):
        assert APPS[name].kernel().threads_per_block == TABLE3[name][0]

    @pytest.mark.parametrize("name", sorted(TABLE3))
    def test_scratchpad_per_block(self, name):
        assert APPS[name].kernel().smem_per_block == TABLE3[name][1]


class TestTable4Limiters:
    @pytest.mark.parametrize("name,limiter", [
        ("backprop-lf", "threads"), ("BFS", "threads"),
        ("gaussian", "blocks"), ("NN", "blocks")])
    def test_limited_by(self, name, limiter):
        from repro.config import GPUConfig
        from repro.core.occupancy import occupancy
        occ = occupancy(APPS[name].kernel(), GPUConfig())
        assert occ.limiter == limiter


class TestSuites:
    def test_set_membership_counts(self):
        assert len(SET1) == 8 and len(SET2) == 7 and len(SET3) == 4

    def test_all_apps_registered(self):
        assert set(SET1 + SET2 + SET3) == set(APPS)

    def test_suite_apps_lookup(self):
        assert [a.name for a in suite_apps(1)] == list(SET1)
        assert [a.name for a in suite_apps(2)] == list(SET2)
        assert [a.name for a in suite_apps(3)] == list(SET3)

    def test_bad_suite_rejected(self):
        with pytest.raises(ValueError):
            suite_apps(4)

    def test_set_ids_consistent(self):
        for sid in (1, 2, 3):
            for app in suite_apps(sid):
                assert app.set_id == sid


class TestBuild:
    @pytest.mark.parametrize("name", sorted(APPS))
    def test_builds_at_multiple_scales(self, name):
        for scale in (0.2, 1.0, 2.0):
            k = build_app(name, scale)
            assert k.dynamic_count > 0

    def test_scale_changes_work(self):
        assert build_app("hotspot", 2.0).dynamic_count > \
            build_app("hotspot", 1.0).dynamic_count

    def test_unknown_app(self):
        with pytest.raises(ValueError):
            build_app("nosuch")

    @pytest.mark.parametrize("name", sorted(APPS))
    def test_deterministic_build(self, name):
        assert build_app(name).static_instrs == build_app(name).static_instrs

    def test_lavamd_scratchpad_accesses_stay_private(self):
        """Paper Sec. VI-B: no lavaMD access falls in the shared region
        at t = 0.1 (private prefix is 720 B)."""
        from repro.isa.opcodes import SHARED_OPS
        k = build_app("lavaMD")
        priv = int(k.smem_per_block * 0.1)
        for ins in k.static_instrs:
            if ins.op in SHARED_OPS:
                m = ins.mem
                hi = m.offset if m.wrap == 0 else m.wrap - 1
                assert hi < priv

    def test_paper_metadata_present(self):
        for name in SET1 + SET2:
            assert "fig8_impr" in APPS[name].paper
            assert "blocks_base" in APPS[name].paper
