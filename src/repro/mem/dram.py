"""FR-FCFS DRAM controller with per-bank row buffers (Table I).

One controller per memory partition.  Scheduling is First-Ready
First-Come-First-Served: when a bank becomes free, the oldest request
that *hits the open row* is served before older row-miss requests — with
an age cap so row misses cannot starve (a standard FR-FCFS safeguard).

Timing uses the paper's GDDR3 parameters, expressed in core cycles via a
fixed clock ratio: a row hit costs ``tCL``; opening a closed bank costs
``tRCD + tCL``; a row conflict adds ``tRP``.  Data bursts serialise on
the partition's data bus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.config import GPUConfig
from repro.events import EventQueue

__all__ = ["DramStats", "DramController"]

#: A queued request: (enqueue_cycle, row, is_store, completion callback).
_Req = tuple[int, int, bool, Callable[[int], None]]


@dataclass
class DramStats:
    """Counters for one DRAM partition controller."""

    requests: int = 0
    row_hits: int = 0
    row_opens: int = 0      # bank was idle/closed
    row_conflicts: int = 0  # had to precharge another row
    stores: int = 0
    total_queue_wait: int = 0

    @property
    def row_hit_rate(self) -> float:
        """Row-buffer hit rate over all serviced requests."""
        return self.row_hits / self.requests if self.requests else 0.0


class _Bank:
    __slots__ = ("open_row", "free_at", "queue", "busy")

    def __init__(self) -> None:
        self.open_row: int | None = None
        self.free_at = 0
        self.queue: list[_Req] = []
        self.busy = False


class DramController:
    """One memory partition's FR-FCFS controller."""

    #: Oldest-request age (core cycles) beyond which FR-FCFS falls back to
    #: strict FCFS for the bank, preventing starvation.
    STARVE_CAP = 2000

    def __init__(self, config: GPUConfig, events: EventQueue) -> None:
        self.cfg = config
        self.events = events
        self.ratio = config.latency.dram_clock_ratio
        self.t = config.timings
        self.banks = [_Bank() for _ in range(config.banks_per_partition)]
        self.lines_per_row = max(1, config.dram_row_size // config.line_size)
        self._bus_free = 0
        self.stats = DramStats()

    # ------------------------------------------------------------------
    def locate(self, line_addr: int) -> tuple[int, int]:
        """(bank, row) for a line address already routed to this partition."""
        lp = line_addr // self.cfg.line_size // self.cfg.num_mem_partitions
        bank = (lp // self.lines_per_row) % len(self.banks)
        row = lp // (self.lines_per_row * len(self.banks))
        return bank, row

    def access(self, line_addr: int, now: int, *, is_store: bool,
               on_complete: Callable[[int], None]) -> None:
        """Enqueue a request; ``on_complete(cycle)`` fires when data is done."""
        bank_idx, row = self.locate(line_addr)
        bank = self.banks[bank_idx]
        bank.queue.append((now, row, is_store, on_complete))
        self.stats.requests += 1
        if is_store:
            self.stats.stores += 1
        if not bank.busy:
            self._schedule(bank_idx, now)

    @property
    def queued(self) -> int:
        """Requests currently waiting in bank queues."""
        return sum(len(b.queue) for b in self.banks)

    # ------------------------------------------------------------------
    def _pick(self, bank: _Bank, now: int) -> int:
        """Index into ``bank.queue`` of the request to serve (FR-FCFS)."""
        oldest_i = min(range(len(bank.queue)), key=lambda i: bank.queue[i][0])
        if now - bank.queue[oldest_i][0] > self.STARVE_CAP:
            return oldest_i
        if bank.open_row is not None:
            hits = [i for i, r in enumerate(bank.queue)
                    if r[1] == bank.open_row]
            if hits:
                return min(hits, key=lambda i: bank.queue[i][0])
        return oldest_i

    def _schedule(self, bank_idx: int, now: int) -> None:
        bank = self.banks[bank_idx]
        if bank.busy or not bank.queue:
            return
        i = self._pick(bank, now)
        enq, row, is_store, cb = bank.queue.pop(i)
        self.stats.total_queue_wait += now - enq

        r = self.ratio
        if bank.open_row == row:
            delay = self.t.tCL * r
            self.stats.row_hits += 1
        elif bank.open_row is None:
            delay = (self.t.tRCD + self.t.tCL) * r
            self.stats.row_opens += 1
        else:
            delay = (self.t.tRP + self.t.tRCD + self.t.tCL) * r
            self.stats.row_conflicts += 1
        if is_store:
            delay += self.t.tWR * r
        burst = self.t.burst * r

        start = max(now, bank.free_at)
        data_start = max(start + delay, self._bus_free)
        done = data_start + burst
        self._bus_free = done
        bank.open_row = row
        bank.free_at = done
        bank.busy = True

        def _complete(cycle: int, *, bank_idx: int = bank_idx,
                      cb: Callable[[int], None] = cb) -> None:
            self.banks[bank_idx].busy = False
            cb(cycle)
            self._schedule(bank_idx, cycle)

        self.events.push(done, _complete)
