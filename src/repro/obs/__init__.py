"""Observability layer: metrics registry + Chrome-trace timeline.

See docs/observability.md for the user-facing walkthrough.  The
simulator publishes through :class:`~repro.obs.sink.ObsSink` — a null
object by default (:data:`~repro.obs.sink.NULL_SINK`), so nothing here
costs anything unless a run asks for ``--metrics`` / ``--trace``.
"""

from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               metric_key, prometheus_text)
from repro.obs.sink import NULL_SINK, Observer, ObsSink
from repro.obs.tracing import Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "metric_key",
    "prometheus_text",
    "NULL_SINK",
    "Observer",
    "ObsSink",
    "Tracer",
]
