"""Hardware storage overhead of resource sharing (paper Sec. V).

Both schemes need, per SM:

* 1 bit — sharing mode enabled;
* ``T·⌈log2(T+1)⌉`` bits — partner block id per block (T = blocks/SM;
  id T encodes "-1"/unshared);
* ``W`` bits — owner flag per warp (W = warps/SM).

Register sharing adds ``W`` bits (per-warp sharing-mode flag) and
``⌊W/2⌋·⌈log2 W⌉`` bits of lock variables (one per shared warp pair).
Scratchpad sharing adds ``⌊T/2⌋·⌈log2 T⌉`` bits (one lock per shared
block pair).  Totals are multiplied by the SM count ``N``.
"""

from __future__ import annotations


from repro.config import GPUConfig

__all__ = ["register_sharing_bits", "scratchpad_sharing_bits",
           "overhead_summary"]


def _clog2(x: int) -> int:
    """⌈log2 x⌉ for positive x (0 for x = 1)."""
    if x < 1:
        raise ValueError("x must be >= 1")
    return (x - 1).bit_length()


def _common_bits(T: int, W: int) -> int:
    """Bits shared by both schemes: mode bit + partner ids + owner flags."""
    return 1 + T * _clog2(T + 1) + W


def register_sharing_bits(T: int, W: int, N: int = 1) -> int:
    """Total storage bits for register sharing on ``N`` SMs.

    Paper formula: ``(1 + T⌈log2(T+1)⌉ + 2W + ⌊W/2⌋⌈log2 W⌉) · N``.
    """
    _validate(T, W, N)
    per_sm = _common_bits(T, W) + W + (W // 2) * _clog2(W)
    return per_sm * N


def scratchpad_sharing_bits(T: int, W: int, N: int = 1) -> int:
    """Total storage bits for scratchpad sharing on ``N`` SMs.

    Paper formula: ``(1 + T⌈log2(T+1)⌉ + W + ⌊T/2⌋⌈log2 T⌉) · N``.
    """
    _validate(T, W, N)
    per_sm = _common_bits(T, W) + (T // 2) * _clog2(T)
    return per_sm * N


def _validate(T: int, W: int, N: int) -> None:
    if T < 1 or W < 1 or N < 1:
        raise ValueError("T, W and N must be positive")


def overhead_summary(config: GPUConfig) -> dict[str, int]:
    """Evaluate both formulas for a GPU configuration (Table I defaults).

    Returns bit counts for the whole GPU plus the per-SM breakdown, using
    the configuration's maximum blocks and warps per SM.
    """
    T = config.max_blocks_per_sm
    W = config.max_warps_per_sm
    N = config.num_sms
    return {
        "blocks_per_sm": T,
        "warps_per_sm": W,
        "num_sms": N,
        "register_sharing_bits_per_sm": register_sharing_bits(T, W, 1),
        "register_sharing_bits_total": register_sharing_bits(T, W, N),
        "scratchpad_sharing_bits_per_sm": scratchpad_sharing_bits(T, W, 1),
        "scratchpad_sharing_bits_total": scratchpad_sharing_bits(T, W, N),
    }
