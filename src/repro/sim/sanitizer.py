"""Opt-in runtime sanitizer: validates DESIGN.md §6 invariants mid-run.

The paper's central safety claim — register/scratchpad sharing cannot
deadlock because of the Fig. 5 direction rule — is enforced by
construction in :mod:`repro.core.locks`, but a harness serving large
sweeps should not *trust* the construction: the sanitizer re-derives
the invariants from raw simulator state while the simulation runs and
turns any violation into a :class:`SanitizerViolation`, which the
engine surfaces as a diagnostic ``RunFailure`` (category
``sanitizer``) instead of silently producing a wrong result.

Checked periodically (every :attr:`Sanitizer.period` cycles) and once
more at completion:

* **single holder per pool** — each lock group's per-side held counts
  equal a fresh recount of its holder table, and holders are in
  ``{None, 0, 1}`` (:meth:`RegisterShareGroup.audit`);
* **Fig. 5 direction rule** — at most one side of a pair holds pools
  whose partner warp is still live (both sides initiating is exactly
  the barrier/lock cycle of the paper's deadlock example);
* **cycle-taxonomy sums** — per SM, active+stall+idle+empty cycles
  equal the global cycle count (including bulk idle skips).

At completion, additionally:

* every launched block completes (dispatcher and per-SM counters);
* Σ issued instructions over all retired warps equals Σ per-SM issued.

Enable via ``GPU(..., sanitize=True)``, ``run(..., sanitize=True)``,
``Engine(sanitize=True)``, ``--sanitize`` on both CLIs, or
``REPRO_SANITIZE=1``.  Overhead is a few percent at the default
period; sanitized engine runs bypass the result cache so the checks
always execute.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.gpu import GPU
    from repro.sim.warp import WarpContext

__all__ = ["Sanitizer", "SanitizerViolation"]


class SanitizerViolation(RuntimeError):
    """An invariant from DESIGN.md §6 failed during simulation."""


class Sanitizer:
    """Periodic + final invariant checker for one :class:`GPU` run."""

    def __init__(self, period: int = 256) -> None:
        if period < 1:
            raise ValueError("period must be >= 1")
        self.period = period
        #: Σ issued instructions of warps that reached EXIT.
        self.retired_issued = 0
        #: Number of periodic checks performed (observability/tests).
        self.checks = 0
        self._next = period

    # ------------------------------------------------------------------
    def on_warp_finished(self, warp: "WarpContext") -> None:
        """Accumulate the conservation ledger as warps retire."""
        self.retired_issued += warp.issued

    def maybe_check(self, gpu: "GPU", cycle: int) -> None:
        """Run the periodic checks if ``cycle`` crossed the next mark."""
        if cycle < self._next:
            return
        self._next = cycle + self.period
        self.check(gpu, cycle)

    # ------------------------------------------------------------------
    def check(self, gpu: "GPU", cycle: int) -> None:
        """Validate the mid-run invariants; raise on any violation."""
        violations = self._cycle_sums(gpu, cycle) + self._lock_state(gpu)
        self.checks += 1
        self._raise(violations, cycle)

    def final(self, gpu: "GPU", cycle: int) -> None:
        """Completion checks: mid-run invariants + conservation."""
        violations = (self._cycle_sums(gpu, cycle) + self._lock_state(gpu)
                      + self._conservation(gpu))
        self._raise(violations, cycle)

    # ------------------------------------------------------------------
    def _cycle_sums(self, gpu: "GPU", cycle: int) -> list[str]:
        v = []
        for sm in gpu.sms:
            total = sm.stats.total_cycles
            if total != cycle:
                v.append(f"SM{sm.sm_id}: cycle classes sum to {total}, "
                         f"clock is {cycle} (active+stall+idle+empty "
                         f"must cover every cycle)")
        return v

    def _lock_state(self, gpu: "GPU") -> list[str]:
        v = []
        for i, pair in enumerate(gpu.dispatcher.share_pairs()):
            if pair.reg_group is not None:
                v += [f"pair {i}: {msg}" for msg in pair.reg_group.audit()]
            if pair.spad_group is not None:
                v += [f"pair {i}: {msg}" for msg in pair.spad_group.audit()]
        return v

    def _conservation(self, gpu: "GPU") -> list[str]:
        v = []
        disp = gpu.dispatcher
        if disp.completed != gpu.kernel.grid_blocks:
            v.append(f"grid: {disp.completed}/{gpu.kernel.grid_blocks} "
                     f"blocks completed")
        issued = 0
        for sm in gpu.sms:
            issued += sm.stats.instructions
            if sm.stats.blocks_launched != sm.stats.blocks_completed:
                v.append(f"SM{sm.sm_id}: {sm.stats.blocks_launched} blocks "
                         f"launched, {sm.stats.blocks_completed} completed")
            if sm.resident_blocks or sm.warps:
                v.append(f"SM{sm.sm_id}: {sm.resident_blocks} blocks / "
                         f"{len(sm.warps)} warps still resident at exit")
        if self.retired_issued != issued:
            v.append(f"conservation: Σ per-warp issued {self.retired_issued}"
                     f" != Σ per-SM issued {issued}")
        return v

    # ------------------------------------------------------------------
    @staticmethod
    def _raise(violations: list[str], cycle: int) -> None:
        if violations:
            raise SanitizerViolation(
                f"{len(violations)} invariant violation(s) at cycle "
                f"{cycle}:\n  " + "\n  ".join(violations))
