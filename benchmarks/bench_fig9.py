"""Fig. 9: optimisation ablations and the stall/idle cycle taxonomy."""

from conftest import run_once

from repro.harness.experiments import run_experiment
from repro.harness.report import render_experiment


def test_fig9a_register_ablation(benchmark, bench_config, bench_params,
                                 capsys):
    res = run_once(benchmark, run_experiment, exp_id="fig9a",
                   config=bench_config, **bench_params)
    with capsys.disabled():
        print("\n" + render_experiment(res))
    rows = {r["app"]: r for r in res.rows}
    # hotspot improves even with no optimisation (paper: +13.65%)...
    assert rows["hotspot"]["Shared-LRR-NoOpt"] > 5
    # ...and the full stack keeps it strongly positive (paper: +21.76%).
    assert rows["hotspot"]["Shared-OWF-Unroll-Dyn"] > 10


def test_fig9b_scratchpad_ablation(benchmark, bench_config, bench_params,
                                   capsys):
    res = run_once(benchmark, run_experiment, exp_id="fig9b",
                   config=bench_config, **bench_params)
    with capsys.disabled():
        print("\n" + render_experiment(res))
    rows = {r["app"]: r for r in res.rows}
    # lavaMD gains ~30% even without OWF (paper: 28% -> 30%).
    assert rows["lavaMD"]["Shared-LRR-NoOpt"] > 20


def test_fig9c_register_cycles(benchmark, bench_config, bench_params,
                               capsys):
    res = run_once(benchmark, run_experiment, exp_id="fig9c",
                   config=bench_config, **bench_params)
    with capsys.disabled():
        print("\n" + render_experiment(res))
    # Paper: idle cycles (warps waiting on latencies) drop for every
    # app, up to 99%; we assert a strong majority.
    drops = [r["idle_decrease_pct"] for r in res.rows]
    assert sum(1 for d in drops if d > 0) >= len(drops) - 1


def test_fig9d_scratchpad_cycles(benchmark, bench_config, bench_params,
                                 capsys):
    res = run_once(benchmark, run_experiment, exp_id="fig9d",
                   config=bench_config, **bench_params)
    with capsys.disabled():
        print("\n" + render_experiment(res))
    drops = [r["idle_decrease_pct"] for r in res.rows]
    assert sum(1 for d in drops if d > 0) >= len(drops) - 1
