"""The paper's primary contribution: SM resource sharing.

* :mod:`repro.core.occupancy` — baseline blocks/SM and resource waste
  (the Fig. 1 motivation math).
* :mod:`repro.core.sharing` — Eq. 1-4: how many extra blocks sharing can
  launch, and the constructive pair/unshared plan the dispatcher follows.
* :mod:`repro.core.locks` — exclusive access to shared register pools
  (warp-pair granularity, with the Fig. 5 deadlock-avoidance rule) and to
  shared scratchpad regions (block-pair granularity).
* :mod:`repro.core.unroll` — the Sec. IV-B unrolling & reordering of
  register declarations pass.
* :mod:`repro.core.dynwarp` — the Sec. IV-C dynamic warp execution
  controller (per-SM saturating probability of issuing non-owner memory
  instructions).
* :mod:`repro.core.overhead` — the Sec. V hardware storage formulas.
"""

from repro.core.occupancy import Occupancy, occupancy
from repro.core.sharing import SharedResource, SharingSpec, SharingPlan, plan_sharing
from repro.core.locks import RegisterShareGroup, ScratchpadShareGroup
from repro.core.unroll import reorder_registers, first_shared_use_distance
from repro.core.dynwarp import DynWarpController
from repro.core.overhead import register_sharing_bits, scratchpad_sharing_bits

__all__ = [
    "Occupancy",
    "occupancy",
    "SharedResource",
    "SharingSpec",
    "SharingPlan",
    "plan_sharing",
    "RegisterShareGroup",
    "ScratchpadShareGroup",
    "reorder_registers",
    "first_shared_use_distance",
    "DynWarpController",
    "register_sharing_bits",
    "scratchpad_sharing_bits",
]
