"""Unified execution engine: RunSpec, parallel executor, result cache.

Every harness entry point (``experiments.py``, :class:`Sweep`, both
CLIs, the benchmark harness) used to drive :func:`repro.harness.runner.run`
through its own sequential loop, re-simulating common baselines like
``Unshared-LRR`` once per figure.  This module centralises scheduling,
deduplication and persistence of simulations:

* :class:`RunSpec` — a frozen, hashable, JSON-serializable description
  of one simulation: app (or ad-hoc kernel fingerprint), :class:`Mode`,
  :class:`GPUConfig`, scale/waves/grid/max_cycles.  ``digest()`` is a
  content address that also folds in a *code-version salt* (a hash of
  the simulation-relevant sources), so cached results are invalidated
  automatically when the simulator changes.
* :class:`Engine` — executes batches of RunSpecs.  Identical specs in a
  batch are simulated once; with ``jobs > 1`` unique specs run on a
  ``ProcessPoolExecutor``; at ``jobs == 1`` a deterministic in-process
  loop keeps results bit-identical to the historical sequential path
  (the simulations themselves are deterministic, so the parallel path
  produces the same bits — only wall-clock changes).
* :class:`ResultCache` — a content-addressed on-disk store
  (``~/.cache/repro`` by default, override with ``cache_dir=`` /
  ``REPRO_CACHE_DIR``) keyed by ``RunSpec.digest()``; entries hold the
  spec and the full :meth:`RunResult.to_dict` payload.
* Observability — per-run wall time, hit/miss/dedup counters
  (:class:`EngineStats`) and a per-completion progress callback
  (:class:`RunEvent`).
* Resilience (see docs/resilience.md) — a failing run yields a
  structured :class:`~repro.harness.resilience.RunFailure` at its
  position in the batch instead of aborting the whole batch; transient
  worker failures (``BrokenProcessPool``, injected crashes) retry with
  exponential backoff under a :class:`RetryPolicy`; ``timeout=`` arms
  a wall-clock watchdog that kills hung workers; ``fail_fast=True``
  restores the historical abort-on-first-error behaviour;
  ``sanitize=True`` runs every simulation under the runtime invariant
  sanitizer (and bypasses the cache so the checks execute);
  ``faults=`` accepts a deterministic
  :class:`~repro.harness.faults.FaultInjector` for chaos testing.

Environment knobs: ``REPRO_JOBS`` (worker count when ``jobs`` is not
given), ``REPRO_CACHE_DIR`` (cache location), ``REPRO_NO_CACHE=1``
(disable the disk cache globally), ``REPRO_SANITIZE=1`` (sanitizer
default-on).  See docs/engine.md and docs/resilience.md.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from concurrent.futures import (FIRST_COMPLETED, BrokenExecutor, Future,
                                ProcessPoolExecutor, wait)
from dataclasses import asdict, dataclass, field, replace
from functools import lru_cache
from pathlib import Path
from typing import Callable, Protocol, Sequence

from repro.config import GDDRTimings, GPUConfig, LatencyConfig
from repro.core.sharing import SharedResource
from repro.harness.faults import FaultInjector
from repro.harness.resilience import (RetryPolicy, RunCancelled,
                                      RunFailure, RunTimeoutError,
                                      categorize)
from repro.harness.runner import Mode, run
from repro.isa.kernel import Kernel
from repro.obs import NULL_SINK, Observer
from repro.sim.stats import RunResult
from repro.workloads.apps import APPS, App

__all__ = ["RunSpec", "Engine", "EngineStats", "RunEvent", "ResultCache",
           "RunFailure", "RetryPolicy", "kernel_fingerprint", "code_salt",
           "default_engine"]

#: Bump when the cache entry layout changes (independent of code salt).
CACHE_SCHEMA = 1

#: Sources whose content participates in the code-version salt: anything
#: that can change simulation results.  Reports/CLI/docs are excluded.
#: ``obs`` is included not because observation may change results (it
#: must not) but because metrics/trace payloads cached alongside results
#: must be invalidated when their schema evolves.
_SALT_SOURCES = ("config.py", "core", "isa", "mem", "obs", "sched", "sim",
                 "workloads", "harness/runner.py")


@lru_cache(maxsize=1)
def code_salt() -> str:
    """Hash of the simulation-relevant source tree.

    Folded into every :meth:`RunSpec.digest`, so editing the simulator
    (or the workloads) invalidates all previously cached results without
    any manual version bookkeeping.
    """
    root = Path(__file__).resolve().parent.parent
    h = hashlib.sha256()
    for entry in _SALT_SOURCES:
        p = root / entry
        files = sorted(p.rglob("*.py")) if p.is_dir() else [p]
        for f in files:
            h.update(str(f.relative_to(root)).encode())
            h.update(f.read_bytes())
    return h.hexdigest()[:16]


def kernel_fingerprint(kernel: Kernel) -> str:
    """Content hash of a built kernel (resources + instruction stream)."""
    h = hashlib.sha256()
    h.update(repr((kernel.name, kernel.threads_per_block,
                   kernel.regs_per_thread, kernel.smem_per_block,
                   kernel.grid_blocks, kernel.seed,
                   kernel.work_variance)).encode())
    for seg in kernel.segments:
        h.update(f"|x{seg.repeat}|".encode())
        for ins in seg.instrs:
            h.update(repr(ins).encode())
    return h.hexdigest()[:16]


def _mode_to_dict(mode: Mode) -> dict:
    return {
        "label": mode.label,
        "scheduler": mode.scheduler,
        "sharing": mode.sharing.value if mode.sharing is not None else None,
        "t": mode.t,
        "unroll": mode.unroll,
        "dyn": mode.dyn,
        "early_release": mode.early_release,
    }


def _mode_from_dict(d: dict) -> Mode:
    sharing = SharedResource(d["sharing"]) if d["sharing"] is not None \
        else None
    return Mode(label=d["label"], scheduler=d["scheduler"], sharing=sharing,
                t=d["t"], unroll=d["unroll"], dyn=d["dyn"],
                early_release=d["early_release"])


def _config_from_dict(d: dict) -> GPUConfig:
    d = dict(d)
    d["timings"] = GDDRTimings(**d["timings"])
    d["latency"] = LatencyConfig(**d["latency"])
    return GPUConfig(**d)


@dataclass(frozen=True)
class RunSpec:
    """Canonical description of one simulation.

    Frozen and hashable; :meth:`to_dict` / :meth:`from_dict` give a JSON
    round trip and :meth:`digest` a stable content address.  ``app`` is
    a registry name when the target lives in :data:`APPS`; ad-hoc
    kernels (extension studies, ``.kasm`` files) ride along in the
    ``kernel`` field, which is excluded from equality/hash — the
    ``kernel_fp`` fingerprint represents them in the identity.
    """

    app: str | None
    kernel_fp: str
    mode: Mode
    config: GPUConfig
    scale: float = 1.0
    waves: float = 6.0
    grid_blocks: int | None = None
    max_cycles: int = 2_000_000
    #: Chrome trace-event output path (None = no timeline).  Part of the
    #: digest, so traced and untraced runs never share a cache entry;
    #: traced runs additionally bypass the disk cache entirely — the
    #: trace file is a side effect a cached result could not reproduce.
    trace: str | None = None
    #: Collect a metrics registry and attach it to ``RunResult.metrics``.
    #: Also part of the digest (the cached payload differs).
    metrics: bool = False
    #: Pre-built kernel for non-registry targets (identity lives in
    #: ``kernel_fp``; this field only carries the payload to workers).
    kernel: Kernel | None = field(default=None, compare=False, repr=False)

    @classmethod
    def create(cls, target: App | Kernel, mode: Mode, *,
               config: GPUConfig | None = None, scale: float = 1.0,
               waves: float = 6.0, grid_blocks: int | None = None,
               max_cycles: int = 2_000_000, trace: str | None = None,
               metrics: bool = False) -> "RunSpec":
        """Build a spec from the same arguments :func:`runner.run` takes."""
        config = config if config is not None else GPUConfig()
        if isinstance(target, App):
            kernel = target.kernel(scale)
            name = target.name if APPS.get(target.name) is target else None
        else:
            kernel, name = target, None
        return cls(app=name, kernel_fp=kernel_fingerprint(kernel),
                   mode=mode, config=config, scale=scale, waves=waves,
                   grid_blocks=grid_blocks, max_cycles=max_cycles,
                   trace=trace, metrics=metrics,
                   kernel=None if name is not None else kernel)

    def to_dict(self) -> dict:
        """JSON-serializable form (the ad-hoc kernel payload is reduced
        to its fingerprint)."""
        return {
            "app": self.app,
            "kernel_fp": self.kernel_fp,
            "mode": _mode_to_dict(self.mode),
            "config": asdict(self.config),
            "scale": self.scale,
            "waves": self.waves,
            "grid_blocks": self.grid_blocks,
            "max_cycles": self.max_cycles,
            "trace": self.trace,
            "metrics": self.metrics,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "RunSpec":
        """Rebuild a spec from :meth:`to_dict` output.

        Only registry-app specs can be fully reconstructed; ad-hoc
        kernel specs keep their identity (digest) but not the kernel
        payload, so they cannot be re-executed from JSON.
        """
        return cls(app=d["app"], kernel_fp=d["kernel_fp"],
                   mode=_mode_from_dict(d["mode"]),
                   config=_config_from_dict(d["config"]),
                   scale=d["scale"], waves=d["waves"],
                   grid_blocks=d["grid_blocks"],
                   max_cycles=d["max_cycles"],
                   trace=d.get("trace"),
                   metrics=d.get("metrics", False))

    def digest(self) -> str:
        """Content address: canonical JSON of the spec + code salt."""
        payload = json.dumps({"salt": code_salt(), "spec": self.to_dict()},
                             sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode()).hexdigest()

    def target(self) -> App | Kernel:
        """The runnable object this spec describes."""
        if self.app is not None:
            return APPS[self.app]
        if self.kernel is None:
            raise ValueError(
                "ad-hoc kernel spec has no kernel payload (deserialized "
                "from JSON?) — only registry-app specs are re-runnable")
        return self.kernel

    def execute(self, sanitize: bool = False) -> RunResult:
        """Run the simulation this spec describes (no cache, no pool).

        With ``metrics``/``trace`` set, the run is observed through an
        :class:`~repro.obs.Observer`; the trace file is written here so
        the side effect also happens inside pool workers.
        """
        obs = NULL_SINK
        if self.metrics or self.trace is not None:
            obs = Observer(metrics=self.metrics,
                           trace=self.trace is not None)
        res = run(self.target(), self.mode, config=self.config,
                  scale=self.scale, waves=self.waves,
                  grid_blocks=self.grid_blocks, max_cycles=self.max_cycles,
                  sanitize=sanitize, obs=obs)
        if self.trace is not None:
            obs.write_trace(self.trace)
        return res


def _execute_timed(spec: RunSpec, attempt: int = 1,
                   faults: FaultInjector | None = None,
                   sanitize: bool = False,
                   hard_faults: bool = False) -> tuple[RunResult, float]:
    """Worker entry point (top-level so it pickles).

    The elapsed time covers fault injection too, so an injected hang is
    visible to the in-process post-hoc timeout check.
    """
    t0 = time.perf_counter()
    if faults is not None:
        faults.fire(spec.digest(), attempt, hard=hard_faults)
    res = spec.execute(sanitize=sanitize)
    return res, time.perf_counter() - t0


class ResultCache:
    """Content-addressed on-disk store of :class:`RunResult` payloads.

    Layout: ``<root>/<digest[:2]>/<digest>.json`` holding the schema
    version, the spec (for inspection), the result and the simulation
    wall time.  All I/O failures degrade to cache misses; writes are
    atomic (temp file + rename) so concurrent engines never observe a
    torn entry.  A *corrupted* entry (truncated file, non-JSON bytes,
    wrong payload shape) is moved to ``<root>/quarantine/`` on read —
    counted in :attr:`quarantined` — so the bad bytes are re-simulated
    once instead of re-parsed forever.

    The quarantine directory is bounded: after each move, entries are
    pruned oldest-first until at most :attr:`quarantine_max_files`
    files totalling at most :attr:`quarantine_max_bytes` remain
    (pruned files are counted in :attr:`pruned` and surface in the
    engine footer).  Post-mortem evidence is useful; an unbounded
    graveyard is not.
    """

    #: Default quarantine bounds (overridable per instance).
    QUARANTINE_MAX_FILES = 32
    QUARANTINE_MAX_BYTES = 4 << 20

    def __init__(self, root: str | Path | None = None, *,
                 quarantine_max_files: int | None = None,
                 quarantine_max_bytes: int | None = None) -> None:
        self.root = Path(root if root is not None
                         else os.environ.get("REPRO_CACHE_DIR")
                         or Path.home() / ".cache" / "repro")
        #: Corrupted entries moved to quarantine by this instance.
        self.quarantined = 0
        #: Old quarantine files deleted to stay within the bounds.
        self.pruned = 0
        self.quarantine_max_files = (
            quarantine_max_files if quarantine_max_files is not None
            else self.QUARANTINE_MAX_FILES)
        self.quarantine_max_bytes = (
            quarantine_max_bytes if quarantine_max_bytes is not None
            else self.QUARANTINE_MAX_BYTES)

    def path(self, digest: str) -> Path:
        """Entry location for a digest."""
        return self.root / digest[:2] / f"{digest}.json"

    def quarantine_dir(self) -> Path:
        """Where corrupted entries are moved for post-mortem."""
        return self.root / "quarantine"

    def get(self, digest: str) -> RunResult | None:
        """Stored result for ``digest``, or None."""
        target = self.path(digest)
        try:
            text = target.read_text()
        except OSError:
            return None  # plain miss
        try:
            payload = json.loads(text)
            if payload.get("schema") != CACHE_SCHEMA:
                return None  # versioned entry from another build: miss
            return RunResult.from_dict(payload["result"])
        except (ValueError, KeyError, TypeError):
            self._quarantine(target)
            return None

    def _quarantine(self, target: Path) -> None:
        """Move a corrupted entry out of the lookup path (best-effort)."""
        self.quarantined += 1
        try:
            qdir = self.quarantine_dir()
            qdir.mkdir(parents=True, exist_ok=True)
            os.replace(target, qdir / target.name)
        except OSError:
            try:  # can't move (permissions?) — deleting also unblocks
                target.unlink()
            except OSError:
                pass
        self.prune_quarantine()

    def prune_quarantine(self) -> int:
        """Delete oldest quarantine files until within the bounds.

        Returns the number pruned this call (also accumulated into
        :attr:`pruned`).  All I/O failures are swallowed — pruning is
        hygiene, never a reason to fail a run.
        """
        try:
            entries = sorted(
                (p.stat().st_mtime, p.stat().st_size, p)
                for p in self.quarantine_dir().iterdir() if p.is_file())
        except OSError:
            return 0
        count = len(entries)
        total = sum(size for _m, size, _p in entries)
        removed = 0
        for _mtime, size, path in entries:      # oldest first
            if (count <= self.quarantine_max_files
                    and total <= self.quarantine_max_bytes):
                break
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
            count -= 1
            total -= size
        self.pruned += removed
        return removed

    def put(self, digest: str, spec: RunSpec, result: RunResult,
            elapsed: float) -> None:
        """Store ``result`` under ``digest`` (best-effort)."""
        payload = {"schema": CACHE_SCHEMA, "digest": digest,
                   "spec": spec.to_dict(), "elapsed": round(elapsed, 6),
                   "result": result.to_dict()}
        target = self.path(digest)
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=target.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as f:
                    json.dump(payload, f)
                os.replace(tmp, target)
            except BaseException:
                os.unlink(tmp)
                raise
        except OSError:
            pass  # a read-only cache dir must never fail the run


class _CancelToken(Protocol):
    """Anything with ``is_set()`` — e.g. ``threading.Event``."""

    def is_set(self) -> bool: ...  # pragma: no cover


@dataclass
class EngineStats:
    """Cumulative counters for one :class:`Engine`."""

    submitted: int = 0       #: specs passed to run_batch
    deduped: int = 0         #: specs served by an identical one in-batch
    hits: int = 0            #: specs served from the disk cache
    misses: int = 0          #: cache lookups that missed
    sims: int = 0            #: simulations actually executed
    sim_time: float = 0.0    #: summed per-simulation wall seconds
    wall_time: float = 0.0   #: wall seconds spent inside run_batch
    failures: int = 0        #: runs that ended as a RunFailure
    retries: int = 0         #: re-attempts scheduled by the retry policy
    timeouts: int = 0        #: runs killed / flagged by the watchdog
    quarantined: int = 0     #: corrupted cache entries moved aside
    quarantine_pruned: int = 0  #: old quarantine files deleted (cap)
    cancelled: int = 0       #: runs cancelled before dispatch (token)


@dataclass(frozen=True)
class RunEvent:
    """Progress-callback payload: one completed (or cache-served) run."""

    index: int           #: 1-based completion order within the batch
    total: int           #: unique runs in the batch
    spec: RunSpec
    result: RunResult
    cached: bool
    elapsed: float       #: simulation seconds (0.0 for cache hits)


def _default_jobs() -> int:
    env = os.environ.get("REPRO_JOBS")
    if env:
        return max(1, int(env))
    return os.cpu_count() or 1


class Engine:
    """Executes batches of :class:`RunSpec`, with dedup, cache and pool.

    Parameters
    ----------
    jobs:
        Worker processes.  ``None`` → ``REPRO_JOBS`` or ``os.cpu_count()``;
        ``1`` → deterministic in-process execution (no pool).
    cache:
        ``True`` (default) enables the content-addressed disk cache,
        ``False`` disables it; a :class:`ResultCache` instance is used
        as-is.  ``REPRO_NO_CACHE=1`` force-disables.
    cache_dir:
        Cache root (default ``REPRO_CACHE_DIR`` or ``~/.cache/repro``).
    progress:
        Default per-completion callback receiving a :class:`RunEvent`.
    timeout:
        Per-run wall-clock budget in seconds (``None`` → unlimited).
        On the pool a hung worker is killed and the pool rebuilt; at
        ``jobs == 1`` the check is post-hoc (the run finishes, then is
        recorded as a timeout failure if it overran).
    retry:
        :class:`RetryPolicy` governing which failure categories retry
        and with what backoff.  Default: crashes retry up to 3 attempts.
    fail_fast:
        ``True`` restores the historical behaviour — the first terminal
        failure re-raises and aborts the batch.  Default ``False``:
        failures are isolated into :class:`RunFailure` slots.
    sanitize:
        Run every simulation under the runtime invariant sanitizer
        (DESIGN.md §6).  Sanitized runs bypass the cache so the checks
        actually execute.  Default: ``REPRO_SANITIZE=1``.
    faults:
        Optional deterministic :class:`FaultInjector` for chaos testing.
    max_cycles:
        When set, overrides ``max_cycles`` on every submitted spec
        (applied before dedup, so digests reflect it).
    metrics:
        ``True`` turns on metrics collection for every submitted spec
        (``RunSpec.metrics``), attaching a registry snapshot to each
        ``RunResult.metrics``.
    trace_dir:
        When set, every submitted spec gets a Chrome trace written to
        ``<trace_dir>/<app>-<mode>.json`` (``RunSpec.trace``).  Traced
        specs bypass the disk cache — the trace file is a side effect a
        cached result could not reproduce.
    """

    def __init__(self, *, jobs: int | None = None,
                 cache: bool | ResultCache = True,
                 cache_dir: str | Path | None = None,
                 progress: Callable[[RunEvent], None] | None = None,
                 timeout: float | None = None,
                 retry: RetryPolicy | None = None,
                 fail_fast: bool = False,
                 sanitize: bool | None = None,
                 faults: FaultInjector | None = None,
                 max_cycles: int | None = None,
                 metrics: bool = False,
                 trace_dir: str | Path | None = None) -> None:
        self.jobs = max(1, jobs) if jobs is not None else _default_jobs()
        if isinstance(cache, ResultCache):
            self.cache: ResultCache | None = cache
        elif cache and os.environ.get("REPRO_NO_CACHE") != "1":
            self.cache = ResultCache(cache_dir)
        else:
            self.cache = None
        self.progress = progress
        self.timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self.fail_fast = fail_fast
        self.sanitize = (sanitize if sanitize is not None
                         else os.environ.get("REPRO_SANITIZE") == "1")
        self.faults = faults
        self.max_cycles = max_cycles
        self.metrics = metrics
        self.trace_dir = Path(trace_dir) if trace_dir is not None else None
        self.stats = EngineStats()
        #: Every RunFailure recorded across this engine's batches.
        self.failures: list[RunFailure] = []

    # ------------------------------------------------------------------
    def run_one(self, spec: RunSpec) -> RunResult | RunFailure:
        """Convenience wrapper: a batch of one."""
        return self.run_batch([spec])[0]

    def run_batch(self, specs: Sequence[RunSpec], *,
                  progress: Callable[[RunEvent], None] | None = None,
                  cancel: "_CancelToken | None" = None,
                  on_complete: Callable[[RunEvent], None] | None = None
                  ) -> list[RunResult | RunFailure]:
        """Execute ``specs``; returns results aligned with the input.

        Identical specs (same digest) are simulated once; cached results
        are loaded from disk; the rest run on the pool (``jobs > 1``) or
        in-process.  Result order is always the submission order, so a
        parallel batch is bit-identical to a sequential one.

        Failure isolation: unless ``fail_fast=True``, a run that fails
        terminally (after retries) occupies its slot in the returned
        list as a :class:`RunFailure` — check ``r.ok`` or use
        :func:`repro.harness.resilience.split_results`.  The failures
        are also appended to :attr:`failures`.

        Cooperative cancellation: ``cancel`` is an Event-style token
        (anything with ``is_set()``, e.g. ``threading.Event``) checked
        between dispatches.  Once set, no *new* simulation starts;
        in-flight simulations run to completion and keep their results,
        and every not-yet-started spec fills its slot with a
        ``category="cancelled"`` :class:`RunFailure` (counted in
        ``stats.cancelled``, *not* appended to :attr:`failures` — the
        caller asked for the drain, so these aren't errors).  This is
        the drain primitive the simulation service's graceful shutdown
        is built on: cancelled slots are requeued, completed ones kept.

        ``on_complete`` fires once per unique spec as its slot settles
        (simulated, cache-served, failed or cancelled) with the same
        :class:`RunEvent` the ``progress`` callback receives.  The two
        exist separately so UI progress and durability hooks (the
        service persists each result the moment it lands) can coexist.
        """
        t_batch = time.perf_counter()
        progress = progress if progress is not None else self.progress
        if self.max_cycles is not None:
            specs = [replace(s, max_cycles=self.max_cycles) for s in specs]
        if self.metrics or self.trace_dir is not None:
            if self.trace_dir is not None:
                self.trace_dir.mkdir(parents=True, exist_ok=True)
            specs = [self._observed(s) for s in specs]
        order: list[str] = []
        unique: dict[str, RunSpec] = {}
        for spec in specs:
            d = spec.digest()
            order.append(d)
            if d in unique:
                self.stats.deduped += 1
            else:
                unique[d] = spec
        self.stats.submitted += len(specs)

        # Sanitized runs bypass the cache: a cached result would skip
        # the invariant checks that are the whole point of the mode.
        # Traced runs do too: the trace file is a side effect a cached
        # result could not reproduce (metrics-only runs stay cacheable —
        # the registry snapshot rides inside the cached RunResult).
        cache = self.cache if not self.sanitize else None

        def cacheable(d: str) -> bool:
            return cache is not None and unique[d].trace is None

        results: dict[str, RunResult | RunFailure] = {}
        done = 0
        total = len(unique)

        def emit(d: str, res: RunResult | RunFailure, cached: bool,
                 elapsed: float) -> None:
            nonlocal done
            done += 1
            if progress is not None or on_complete is not None:
                ev = RunEvent(index=done, total=total, spec=unique[d],
                              result=res, cached=cached, elapsed=elapsed)
                if progress is not None:
                    progress(ev)
                if on_complete is not None:
                    on_complete(ev)

        todo: list[str] = []
        for d, spec in unique.items():
            if cacheable(d):
                hit = cache.get(d)
                if hit is not None:
                    self.stats.hits += 1
                    results[d] = hit
                    emit(d, hit, True, 0.0)
                    continue
                self.stats.misses += 1
            todo.append(d)

        def record(d: str, res: RunResult, elapsed: float) -> None:
            results[d] = res
            self.stats.sims += 1
            self.stats.sim_time += elapsed
            if cacheable(d):
                cache.put(d, unique[d], res, elapsed)
            emit(d, res, False, elapsed)

        def fail(d: str, failure: RunFailure) -> None:
            results[d] = failure
            self.failures.append(failure)
            self.stats.failures += 1
            emit(d, failure, False, failure.elapsed)

        def cancelled(d: str) -> None:
            # Not a failure: the caller set the token, so the slot is
            # filled with a marker record but neither retried nor
            # appended to self.failures.
            exc = RunCancelled("cancelled before dispatch "
                               "(batch cancellation token set)")
            results[d] = RunFailure.from_exception(
                unique[d], d, exc, attempts=0)
            self.stats.cancelled += 1
            emit(d, results[d], False, 0.0)

        try:
            if len(todo) > 1 and self.jobs > 1:
                self._run_pool(todo, unique, record, fail, cancelled,
                               cancel)
            else:
                for i, d in enumerate(todo):
                    if cancel is not None and cancel.is_set():
                        for rest in todo[i:]:
                            cancelled(rest)
                        break
                    self._run_inprocess(d, unique[d], record, fail)
        finally:
            if self.cache is not None:
                self.stats.quarantined = self.cache.quarantined
                self.stats.quarantine_pruned = self.cache.pruned
            self.stats.wall_time += time.perf_counter() - t_batch
        return [results[d] for d in order]

    # ------------------------------------------------------------------
    def _observed(self, spec: RunSpec) -> RunSpec:
        """Apply the engine-level ``metrics``/``trace_dir`` knobs.

        Applied before dedup, so digests reflect the observation state;
        per-spec settings win over the engine-level defaults.
        """
        changes: dict = {}
        if self.metrics and not spec.metrics:
            changes["metrics"] = True
        if self.trace_dir is not None and spec.trace is None:
            slug = "".join(c if c.isalnum() or c in "._-" else "_"
                           for c in f"{spec.app or spec.kernel_fp}"
                                    f"-{spec.mode.label}")
            changes["trace"] = str(self.trace_dir / f"{slug}.json")
        return replace(spec, **changes) if changes else spec

    # ------------------------------------------------------------------
    def _run_inprocess(self, d: str, spec: RunSpec,
                       record: Callable[[str, RunResult, float], None],
                       fail: Callable[[str, RunFailure], None]) -> None:
        """Execute one spec in this process, with retries.

        Fault injection runs in *soft* mode (``InjectedCrash`` is raised
        instead of killing the process) and the timeout check is
        post-hoc: the run completes, then is recorded as a timeout
        failure if it overran the budget.
        """
        policy = self.retry
        attempts = 0
        while True:
            attempts += 1
            t0 = time.perf_counter()
            try:
                res, elapsed = _execute_timed(
                    spec, attempts, self.faults, self.sanitize,
                    hard_faults=False)
            except Exception as exc:
                elapsed = time.perf_counter() - t0
                category = categorize(exc)
                if (policy.retryable(category)
                        and attempts < policy.max_attempts):
                    self.stats.retries += 1
                    time.sleep(policy.delay(attempts))
                    continue
                if self.fail_fast:
                    raise
                fail(d, RunFailure.from_exception(
                    spec, d, exc, attempts=attempts, elapsed=elapsed))
                return
            if self.timeout is not None and elapsed > self.timeout:
                self.stats.timeouts += 1
                exc = RunTimeoutError(
                    f"run exceeded {self.timeout:.3g}s budget "
                    f"({elapsed:.3g}s elapsed)")
                if (policy.retryable("timeout")
                        and attempts < policy.max_attempts):
                    self.stats.retries += 1
                    time.sleep(policy.delay(attempts))
                    continue
                if self.fail_fast:
                    raise exc
                fail(d, RunFailure.from_exception(
                    spec, d, exc, attempts=attempts, elapsed=elapsed))
                return
            record(d, res, elapsed)
            return

    # ------------------------------------------------------------------
    def _run_pool(self, todo: list[str], unique: dict[str, RunSpec],
                  record: Callable[[str, RunResult, float], None],
                  fail: Callable[[str, RunFailure], None],
                  cancelled: Callable[[str], None] | None = None,
                  cancel: "_CancelToken | None" = None) -> None:
        """Pool scheduler with watchdog, retries and failure isolation.

        Inflight submissions are capped at the worker count so the
        submit time of a future approximates its start time — that is
        what makes the per-run wall-clock watchdog meaningful on a
        ``ProcessPoolExecutor`` (which has no native task timeouts).

        Blame on ``BrokenProcessPool`` is imprecise: when a worker dies,
        *every* inflight future raises it.  Rather than charging a
        retry attempt to innocent co-scheduled specs, all affected
        digests are requeued un-blamed into a *solo* queue that runs
        one spec at a time — if the pool breaks again there, exactly
        one spec was inflight and the blame is precise.
        """
        policy = self.retry
        workers = min(self.jobs, len(todo))
        pending: list[str] = list(todo)      # parallel-eligible queue
        solo: list[str] = []                 # run-one-at-a-time queue
        fail_count: dict[str, int] = {}      # failed attempts so far
        not_before: dict[str, float] = {}    # backoff deadlines
        inflight: dict[Future, tuple[str, float]] = {}
        pool = ProcessPoolExecutor(max_workers=workers)
        tick = 0.05 if self.timeout is not None else 0.2

        def submit(d: str) -> None:
            attempt = fail_count.get(d, 0) + 1
            fut = pool.submit(_execute_timed, unique[d], attempt,
                              self.faults, self.sanitize, True)
            inflight[fut] = (d, time.monotonic())

        def kill_pool() -> None:
            nonlocal pool
            for proc in list(getattr(pool, "_processes", {}).values()):
                try:
                    proc.terminate()
                except Exception:
                    pass
            pool.shutdown(wait=False, cancel_futures=True)
            inflight.clear()
            pool = ProcessPoolExecutor(max_workers=workers)

        def handle_failure(d: str, exc: Exception, elapsed: float) -> None:
            """Retry a blamed failure, or record it as terminal."""
            fail_count[d] = fail_count.get(d, 0) + 1
            category = categorize(exc)
            if (policy.retryable(category)
                    and fail_count[d] < policy.max_attempts):
                self.stats.retries += 1
                not_before[d] = (time.monotonic()
                                 + policy.delay(fail_count[d]))
                # Crash suspects go to the solo queue so a repeat
                # break can be attributed precisely.
                (solo if category == "crash" else pending).append(d)
                return
            if self.fail_fast:
                raise exc
            fail(d, RunFailure.from_exception(
                unique[d], d, exc, attempts=fail_count[d], elapsed=elapsed))

        def ready(queue: list[str]) -> str | None:
            now = time.monotonic()
            for i, d in enumerate(queue):
                if not_before.get(d, 0.0) <= now:
                    return queue.pop(i)
            return None

        try:
            while pending or solo or inflight:
                # Drain request: stop feeding the pool, let inflight
                # simulations finish, mark everything queued cancelled.
                if (cancel is not None and cancel.is_set()
                        and (pending or solo)):
                    for d in pending + solo:
                        cancelled(d)
                    pending.clear()
                    solo.clear()
                    if not inflight:
                        break
                # Fill the pool: solo specs only run alone.
                while (len(inflight) < workers
                       and not (cancel is not None and cancel.is_set())):
                    if solo:
                        if inflight:
                            break  # wait for the pool to drain first
                        d = ready(solo)
                        if d is not None:
                            submit(d)
                        break  # at most one solo inflight
                    d = ready(pending)
                    if d is None:
                        break
                    submit(d)
                if not inflight:
                    # Everything runnable is backing off — sleep a beat.
                    if pending or solo:
                        time.sleep(tick)
                    continue

                done_set, _ = wait(list(inflight), timeout=tick,
                                   return_when=FIRST_COMPLETED)
                broken: Exception | None = None
                affected: list[str] = []
                for fut in done_set:
                    d, t0 = inflight.pop(fut)
                    elapsed = time.monotonic() - t0
                    try:
                        res, sim_elapsed = fut.result()
                    except BrokenExecutor as exc:
                        broken = exc
                        affected.append(d)
                        continue
                    except Exception as exc:
                        handle_failure(d, exc, elapsed)
                        continue
                    record(d, res, sim_elapsed)

                if broken is not None:
                    # The whole pool is dead; every inflight future is
                    # collateral.  Blame precisely only when exactly one
                    # spec was running (solo mode).
                    affected.extend(d for d, _ in inflight.values())
                    kill_pool()
                    if len(affected) == 1:
                        handle_failure(affected[0], broken, 0.0)
                    else:
                        # Un-blamed requeue: isolate in the solo queue.
                        solo.extend(affected)
                    continue

                if self.timeout is not None:
                    now = time.monotonic()
                    expired = [(fut, d, t0) for fut, (d, t0)
                               in inflight.items() if now - t0 > self.timeout]
                    if expired:
                        self.stats.timeouts += len(expired)
                        expired_futs = {fut for fut, _d, _t0 in expired}
                        # Co-scheduled runs die with the pool through no
                        # fault of their own: requeue without blame.
                        innocents = [d for fut, (d, _t0) in inflight.items()
                                     if fut not in expired_futs]
                        kill_pool()
                        pending.extend(innocents)
                        for _fut, d, t0 in expired:
                            exc = RunTimeoutError(
                                f"run exceeded {self.timeout:.3g}s budget "
                                f"(killed after {now - t0:.3g}s)")
                            handle_failure(d, exc, now - t0)
        finally:
            # On the normal path inflight is empty, so a blocking
            # shutdown is instant and joins the executor's management
            # thread (avoids "Exception ignored" atexit noise).  On the
            # fail-fast abort path, don't wait for running simulations.
            pool.shutdown(wait=not inflight, cancel_futures=True)


_DEFAULT_ENGINE: Engine | None = None


def default_engine() -> Engine:
    """Process-wide engine used when a caller doesn't supply one."""
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = Engine()
    return _DEFAULT_ENGINE
