"""Event queue determinism and ordering."""

import pytest

from repro.events import EventQueue


class TestOrdering:
    def test_fires_in_cycle_order(self):
        ev = EventQueue()
        out = []
        ev.push(5, lambda c: out.append("a"))
        ev.push(2, lambda c: out.append("b"))
        ev.push(9, lambda c: out.append("c"))
        ev.run_due(10)
        assert out == ["b", "a", "c"]

    def test_same_cycle_insertion_order(self):
        ev = EventQueue()
        out = []
        for tag in "abcde":
            ev.push(3, lambda c, t=tag: out.append(t))
        ev.run_due(3)
        assert out == list("abcde")

    def test_run_due_respects_boundary(self):
        ev = EventQueue()
        out = []
        ev.push(4, lambda c: out.append(4))
        ev.push(5, lambda c: out.append(5))
        assert ev.run_due(4) == 1
        assert out == [4]
        assert ev.next_cycle() == 5

    def test_cascading_events_same_cycle(self):
        ev = EventQueue()
        out = []

        def first(c):
            out.append("first")
            ev.push(c, lambda c2: out.append("second"))

        ev.push(1, first)
        ev.run_due(1)
        assert out == ["first", "second"]

    def test_cascading_event_in_future(self):
        ev = EventQueue()
        out = []
        ev.push(1, lambda c: ev.push(c + 10, lambda c2: out.append(c2)))
        ev.run_due(1)
        assert out == []
        ev.run_due(11)
        assert out == [11]

    def test_next_cycle_empty(self):
        assert EventQueue().next_cycle() is None

    def test_len(self):
        ev = EventQueue()
        assert len(ev) == 0
        ev.push(1, lambda c: None)
        assert len(ev) == 1
        ev.run_due(1)
        assert len(ev) == 0

    def test_negative_cycle_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1, lambda c: None)

    def test_callback_receives_firing_cycle(self):
        # A late-fired event sees the current simulation time, not its
        # original schedule - "now" is what timing code needs.
        ev = EventQueue()
        got = []
        ev.push(7, got.append)
        ev.run_due(100)
        assert got == [100]
