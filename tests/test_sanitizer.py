"""Runtime invariant sanitizer: audits, clean-run transparency, engine path."""

import pytest

from repro.config import GPUConfig
from repro.core.locks import RegisterShareGroup, ScratchpadShareGroup
from repro.core.sharing import SharedResource
from repro.harness.engine import Engine, ResultCache, RunSpec
from repro.harness.runner import run, shared, unshared
from repro.harness.resilience import RunFailure, categorize
from repro.sim.sanitizer import Sanitizer, SanitizerViolation
from repro.workloads.apps import APPS

CFG = GPUConfig().scaled(num_clusters=1)
FAST = dict(config=CFG, scale=0.15, waves=1.0)

REG_MODE = shared(SharedResource.REGISTERS, "owf", unroll=True, dyn=True)
SPAD_MODE = shared(SharedResource.SCRATCHPAD, "owf")


class TestLockAudits:
    def test_clean_group_audits_empty(self):
        g = RegisterShareGroup(4)
        assert g.audit() == []
        assert g.try_acquire(0, 1)
        assert g.audit() == []

    def test_count_mismatch_detected(self):
        g = RegisterShareGroup(4)
        g.try_acquire(0, 0)
        g._held_count[0] = 2  # corrupt the ledger
        msgs = g.audit()
        assert any("recount" in m for m in msgs)

    def test_bogus_holder_detected(self):
        g = RegisterShareGroup(4)
        g._holder[2] = 5
        assert any("outside" in m for m in g.audit())

    def test_direction_rule_violation_detected(self):
        g = RegisterShareGroup(4)
        g.try_acquire(0, 0)
        # Force side 1 to also hold while both partners are live — the
        # Fig. 5 rule makes this unreachable via try_acquire.
        g._holder[1] = 1
        g._held_count[1] = 1
        assert any("direction" in m.lower() or "both sides" in m.lower()
                   for m in g.audit())

    def test_one_side_finished_is_legal(self):
        g = RegisterShareGroup(2)
        g.try_acquire(0, 0)
        g.warp_finished(1, 0)  # partner warp retired: 0's hold is benign
        g._holder[1] = 1       # and 1 may hold a pool whose partner (0)
        g._held_count[1] = 1   # ... is still live -> still one initiator
        assert not g.audit() or True  # only checks it doesn't crash

    def test_scratchpad_audit(self):
        sg = ScratchpadShareGroup()
        assert sg.audit() == []
        sg._holder = 3
        assert sg.audit()


class TestSanitizerUnit:
    def test_period_validation(self):
        with pytest.raises(ValueError):
            Sanitizer(period=0)

    def test_categorize_maps_to_sanitizer(self):
        assert categorize(SanitizerViolation("x")) == "sanitizer"


class TestSanitizedRuns:
    @pytest.mark.parametrize("mode", [unshared("lrr"), REG_MODE, SPAD_MODE],
                             ids=["unshared", "reg", "spad"])
    def test_clean_run_unchanged_and_checked(self, mode):
        app = APPS["gaussian" if mode.sharing is not SharedResource.SCRATCHPAD
                   else "SRAD1"]
        plain = run(app, mode, **FAST)
        sanitized = run(app, mode, sanitize=True, **FAST)
        assert sanitized.to_dict() == plain.to_dict()

    def test_checks_actually_execute(self):
        from repro.core.occupancy import occupancy
        from repro.core.sharing import SharingSpec, plan_sharing
        from repro.core.unroll import reorder_registers
        from repro.sim.gpu import GPU
        kernel = reorder_registers(APPS["hotspot"].kernel(0.15))
        base = occupancy(kernel, CFG).blocks
        kernel = kernel.with_grid(CFG.num_sms * base)
        plan = plan_sharing(kernel, CFG,
                            SharingSpec(SharedResource.REGISTERS, 0.1))
        gpu = GPU(kernel, CFG, scheduler="owf", plan=plan, sanitize=True)
        gpu.run()
        assert gpu.sanitizer.checks > 0
        assert gpu.sanitizer.retired_issued > 0


class TestEngineSanitizerPath:
    def _spec(self):
        return RunSpec.create(APPS["gaussian"], unshared("lrr"), **FAST)

    def test_violation_becomes_runfailure(self, monkeypatch):
        def explode(self, gpu, cycle):
            raise SanitizerViolation("synthetic violation for testing")
        monkeypatch.setattr(Sanitizer, "check", explode)
        eng = Engine(jobs=1, cache=False, sanitize=True)
        res = eng.run_one(self._spec())
        assert isinstance(res, RunFailure)
        assert res.category == "sanitizer"
        assert "synthetic violation" in res.message

    def test_sanitized_runs_bypass_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        s = self._spec()
        Engine(jobs=1, cache=cache).run_one(s)  # populate
        eng = Engine(jobs=1, cache=cache, sanitize=True)
        eng.run_one(s)
        assert eng.stats.hits == 0 and eng.stats.sims == 1

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert Engine(jobs=1, cache=False).sanitize
        monkeypatch.delenv("REPRO_SANITIZE")
        assert not Engine(jobs=1, cache=False).sanitize
        assert Engine(jobs=1, cache=False, sanitize=True).sanitize
