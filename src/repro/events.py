"""Deterministic event queue for the cycle simulator.

A single global heap drives everything that is not per-cycle scheduler
work: memory responses, DRAM bank wakeups, lock releases, monitoring
windows.  Events at the same cycle fire in insertion order (a sequence
number breaks ties), so simulations are bit-reproducible.

Two kinds of entries live in the heap:

* **callback events** (:meth:`push`) — an arbitrary ``fn(cycle)``;
* **warp wakes** (:meth:`push_wake`) — the timed-retry pattern of the SM
  (scoreboard wake, MSHR retry, Dyn cooldown), stored as a plain
  ``(sm, warp, token)`` record and dispatched inline by
  :meth:`run_due`.  A wake whose warp changed state since it was pushed
  (``wake_token`` mismatch) is dropped; a valid wake always makes the
  warp READY (operand readiness can only improve while a warp is
  blocked, so re-deriving the scoreboard state is redundant — see
  docs/performance.md).  This replaces one closure allocation plus two
  Python frames per wake on the simulator's hottest path.

Both kinds return a handle that :meth:`cancel` marks dead in O(1); dead
entries are lazily discarded when they surface at the heap top (pop or
:meth:`next_cycle`), so cancellation never needs an O(n) heap rebuild.
"""

from __future__ import annotations

import heapq
from typing import Callable, TYPE_CHECKING

from repro.sim.warp import WarpState

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.sm import SMCore
    from repro.sim.warp import WarpContext

__all__ = ["EventQueue"]

_READY = WarpState.READY

#: A heap entry: ``[cycle, seq, payload]``.  The payload slot holds a
#: callback, a wake record, or None once fired/cancelled.
Event = list


class EventQueue:
    """Min-heap of ``[cycle, seq, payload]`` events with lazy deletion."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0
        #: Cancelled entries still sitting in the heap.
        self._n_cancelled = 0

    def __len__(self) -> int:
        """Number of live (non-cancelled) pending events."""
        return len(self._heap) - self._n_cancelled

    def _push(self, cycle: int, payload) -> Event:
        if cycle < 0:
            raise ValueError("cycle must be non-negative")
        ev: Event = [cycle, self._seq, payload]
        self._seq += 1
        heapq.heappush(self._heap, ev)
        return ev

    def push(self, cycle: int, fn: Callable[[int], None]) -> Event:
        """Schedule ``fn`` to run at ``cycle``; returns a cancel handle.

        The callback receives the cycle at which it actually fires (the
        current simulation time), which equals the scheduled cycle in
        normal stepping and may be later after a bulk skip.
        """
        return self._push(cycle, fn)

    def push_wake(self, cycle: int, sm: "SMCore",
                  warp: "WarpContext") -> Event:
        """Schedule ``warp`` (blocked on ``sm``) to wake READY at
        ``cycle``.  The warp's current ``wake_token`` is captured; any
        later state change invalidates the wake."""
        return self._push(cycle, (sm, warp, warp.wake_token))

    def cancel(self, ev: Event) -> bool:
        """Cancel a pending event in O(1); False if it already fired
        (or was already cancelled) — firing order of the remaining
        events is unaffected either way."""
        if ev[2] is None:
            return False
        ev[2] = None
        self._n_cancelled += 1
        return True

    def next_cycle(self) -> int | None:
        """Cycle of the earliest live event, or None if empty."""
        heap = self._heap
        while heap and heap[0][2] is None:
            heapq.heappop(heap)
            self._n_cancelled -= 1
        return heap[0][0] if heap else None

    def run_due(self, cycle: int) -> int:
        """Fire every live event scheduled at or before ``cycle``.

        Events may push new events; newly pushed events due at or before
        ``cycle`` also fire this call.  Returns the number fired.
        """
        n = 0
        heap = self._heap
        pop = heapq.heappop
        while heap and heap[0][0] <= cycle:
            ev = pop(heap)
            payload = ev[2]
            if payload is None:
                self._n_cancelled -= 1
                continue
            ev[2] = None
            if type(payload) is tuple:
                sm, warp, token = payload
                if warp.wake_token == token:
                    sm.now = cycle
                    sm._set_state(warp, _READY)
            else:
                payload(cycle)
            n += 1
        return n
