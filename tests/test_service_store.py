"""JobStore: persistence, scheduling order, state transitions."""

from repro.service.store import JOB_STATES, JobStore


def store(tmp_path):
    return JobStore(tmp_path / "jobs.sqlite")


def submit(st, n=1, **kw):
    jobs = [st.submit({"app": "gaussian", "i": i}, f"digest-{i}", **kw)
            for i in range(n)]
    return jobs[0] if n == 1 else jobs


class TestSubmitAndLookup:
    def test_submit_round_trip(self, tmp_path):
        st = store(tmp_path)
        job = st.submit({"app": "bfs"}, "d0", priority=3, client="alice")
        got = st.get(job.id)
        assert got is not None
        assert got.state == "queued"
        assert got.spec == {"app": "bfs"}
        assert got.digest == "d0"
        assert got.priority == 3
        assert got.client == "alice"
        assert not got.terminal

    def test_get_unknown_returns_none(self, tmp_path):
        assert store(tmp_path).get("nope") is None

    def test_counts_zero_filled(self, tmp_path):
        st = store(tmp_path)
        assert st.counts() == {s: 0 for s in JOB_STATES}
        submit(st, 3)
        assert st.counts()["queued"] == 3
        assert st.queue_depth() == 3

    def test_queued_bytes_tracks_spec_size(self, tmp_path):
        st = store(tmp_path)
        assert st.queued_bytes() == 0
        job = st.submit({"app": "x" * 100}, "d0")
        assert st.queued_bytes() > 100
        st.cancel(job.id)
        assert st.queued_bytes() == 0

    def test_list_filters(self, tmp_path):
        st = store(tmp_path)
        a = st.submit({"app": "a"}, "da", client="alice")
        st.submit({"app": "b"}, "db", client="bob")
        assert len(st.list_jobs()) == 2
        mine = st.list_jobs(client="alice")
        assert [j.id for j in mine] == [a.id]
        st.cancel(a.id)
        assert [j.id for j in st.list_jobs(state="cancelled")] == [a.id]
        assert len(st.list_jobs(limit=1)) == 1

    def test_list_newest_first(self, tmp_path):
        st = store(tmp_path)
        jobs = submit(st, 3)
        assert [j.id for j in st.list_jobs()] == [j.id for j in
                                                 reversed(jobs)]


class TestClaimOrdering:
    def test_fifo_within_priority(self, tmp_path):
        st = store(tmp_path)
        jobs = submit(st, 4)
        claimed = st.claim(10)
        assert [j.id for j in claimed] == [j.id for j in jobs]
        assert all(j.state == "running" for j in claimed)
        assert all(j.started_at is not None for j in claimed)
        assert st.queue_depth() == 0

    def test_priority_beats_fifo(self, tmp_path):
        st = store(tmp_path)
        low = st.submit({"app": "a"}, "da", priority=0)
        high = st.submit({"app": "b"}, "db", priority=5)
        assert [j.id for j in st.claim(10)] == [high.id, low.id]

    def test_claim_respects_limit(self, tmp_path):
        st = store(tmp_path)
        submit(st, 5)
        assert len(st.claim(2)) == 2
        assert st.queue_depth() == 3

    def test_claim_groups_by_sanitize(self, tmp_path):
        st = store(tmp_path)
        plain = st.submit({"app": "a"}, "da")
        san = st.submit({"app": "b"}, "db", sanitize=True)
        plain2 = st.submit({"app": "c"}, "dc")
        first = st.claim(10)
        assert [j.id for j in first] == [plain.id, plain2.id]
        second = st.claim(10)
        assert [j.id for j in second] == [san.id]
        assert second[0].sanitize is True

    def test_claim_empty_queue(self, tmp_path):
        assert store(tmp_path).claim(10) == []


class TestTransitions:
    def test_finish_persists_result(self, tmp_path):
        st = store(tmp_path)
        job = submit(st)
        st.claim(1)
        st.finish(job.id, {"ok": True, "cycles": 42})
        got = st.get(job.id)
        assert got.state == "done"
        assert got.result == {"ok": True, "cycles": 42}
        assert got.finished_at is not None
        assert got.terminal

    def test_fail_persists_failure(self, tmp_path):
        st = store(tmp_path)
        job = submit(st)
        st.claim(1)
        st.fail(job.id, {"ok": False, "category": "crash"})
        got = st.get(job.id)
        assert got.state == "failed"
        assert got.failure == {"ok": False, "category": "crash"}

    def test_finish_requires_running(self, tmp_path):
        st = store(tmp_path)
        job = submit(st)  # still queued
        st.finish(job.id, {"ok": True})
        assert st.get(job.id).state == "queued"

    def test_cancel_only_queued(self, tmp_path):
        st = store(tmp_path)
        job = submit(st)
        assert st.cancel(job.id) is True
        assert st.get(job.id).state == "cancelled"
        assert st.cancel(job.id) is False  # already terminal
        running = submit(st)
        st.claim(1)
        assert st.cancel(running.id) is False
        assert st.get(running.id).state == "running"

    def test_requeue_running(self, tmp_path):
        st = store(tmp_path)
        jobs = submit(st, 3)
        st.claim(10)
        n = st.requeue([jobs[0].id, jobs[2].id])
        assert n == 2
        assert st.get(jobs[0].id).state == "queued"
        assert st.get(jobs[0].id).started_at is None
        assert st.get(jobs[1].id).state == "running"

    def test_recover_requeues_stranded(self, tmp_path):
        st = store(tmp_path)
        jobs = submit(st, 3)
        st.claim(10)
        st.finish(jobs[0].id, {"ok": True})
        assert st.recover() == 2  # the two still "running"
        counts = st.counts()
        assert counts["queued"] == 2
        assert counts["done"] == 1


class TestPersistence:
    def test_survives_reopen(self, tmp_path):
        path = tmp_path / "jobs.sqlite"
        st = JobStore(path)
        job = st.submit({"app": "bfs"}, "d0", priority=2)
        done = st.submit({"app": "lud"}, "d1")
        st.claim(1)  # claims priority-2 job
        st.finish(job.id, {"ok": True, "x": 1})
        st.close()

        st2 = JobStore(path)
        assert st2.get(job.id).result == {"ok": True, "x": 1}
        assert st2.get(done.id).state == "queued"
        # FIFO seq survives too: a new submission lands after d1.
        late = st2.submit({"app": "nw"}, "d2")
        assert [j.id for j in st2.claim(10)] == [done.id, late.id]

    def test_recover_on_fresh_open(self, tmp_path):
        path = tmp_path / "jobs.sqlite"
        st = JobStore(path)
        submit(st, 2)
        st.claim(10)
        st.close()  # process "died" with jobs running
        st2 = JobStore(path)
        assert st2.recover() == 2
        assert st2.queue_depth() == 2


class TestWireForm:
    def test_to_dict_extracts_app_and_mode(self, tmp_path):
        st = store(tmp_path)
        job = st.submit(
            {"app": "gaussian", "mode": {"label": "unshared-lrr"}}, "d0")
        d = job.to_dict()
        assert d["app"] == "gaussian"
        assert d["mode"] == "unshared-lrr"
        assert "spec" not in d and "result" not in d

    def test_to_dict_with_payloads(self, tmp_path):
        st = store(tmp_path)
        job = submit(st)
        st.claim(1)
        st.finish(job.id, {"ok": True})
        d = st.get(job.id).to_dict(with_payloads=True)
        assert d["result"] == {"ok": True}
        assert d["spec"] == job.spec
