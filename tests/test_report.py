"""Report rendering: table edge cases and bar-chart geometry.

Regression coverage for the bar_chart fix: every nonzero value renders
at least one glyph (small positives used to round to an empty bar while
negatives were forced to one), zero renders a bare axis, and the
forced glyph is clamped so no bar overflows the chart width.
"""

from repro.harness.report import bar_chart, format_table

WIDTH = 44  # bar_chart default


def bars(rows, **kw):
    """Chart body lines (header stripped), one per row."""
    return bar_chart(rows, "app", "v", **kw).splitlines()[1:]


class TestFormatTable:
    def test_empty_rows_keeps_header(self):
        out = format_table(["alpha", "b"], [])
        header, rule = out.splitlines()
        assert header.split() == ["alpha", "b"]
        assert rule == "-----  -"

    def test_empty_rows_header_sets_width(self):
        # no max() over an empty cell sequence: widths fall back to the
        # column names themselves
        out = format_table(["a_very_long_column"], [])
        assert len(out.splitlines()[1]) == len("a_very_long_column")

    def test_none_renders_dash(self):
        out = format_table(["a"], [{"a": None}])
        assert out.splitlines()[2].strip() == "-"


class TestBarChartGeometry:
    def test_small_positive_gets_a_glyph(self):
        # 0.01 vs 100: the small bar used to round to zero glyphs
        rows = [{"app": "t", "v": 0.01}, {"app": "b", "v": 100.0}]
        tiny, big = bars(rows)
        assert tiny.count("#") >= 1
        assert big.count("#") > tiny.count("#")

    def test_small_negative_gets_a_glyph(self):
        rows = [{"app": "t", "v": -0.01}, {"app": "b", "v": -100.0}]
        tiny, big = bars(rows)
        assert tiny.count("#") >= 1
        assert big.count("#") > tiny.count("#")

    def test_zero_renders_bare_axis(self):
        rows = [{"app": "z", "v": 0.0}, {"app": "p", "v": 5.0}]
        zero, pos = bars(rows)
        assert zero.count("#") == 0 and "|" in zero
        assert pos.count("#") >= 1

    def test_mixed_signs_share_one_axis(self):
        rows = [{"app": "up", "v": 10.0}, {"app": "dn", "v": -10.0},
                {"app": "z", "v": 0.0}]
        up, dn, z = bars(rows)
        axis = up.index("|")
        assert dn.index("|") == axis and z.index("|") == axis
        assert up.index("#") > axis      # positives extend right
        assert dn.index("#") < axis      # negatives extend left

    def test_no_bar_overflows_width(self):
        # extreme skew: axis rounds to the chart edge, yet the forced
        # glyph must stay inside the bar field (value column intact)
        for rows in (
            [{"app": "p", "v": 1e-9}, {"app": "n", "v": -1e9}],
            [{"app": "p", "v": 1e9}, {"app": "n", "v": -1e-9}],
            [{"app": "a", "v": 0.01}, {"app": "b", "v": 100.0},
             {"app": "c", "v": -0.01}, {"app": "d", "v": -50.0}],
        ):
            for line in bars(rows):
                # label(1) + 2 spaces + bar field (WIDTH+2) + space + value
                head, value = line.rsplit(None, 1)
                float(value)  # value column survives as a parsable number
                assert len(head.rstrip()) <= 1 + 2 + WIDTH + 2

    def test_every_nonzero_row_has_a_glyph(self):
        rows = [{"app": c, "v": v} for c, v in
                zip("abcdefg", (-300.0, -1.0, -0.001, 0.0, 0.001, 1.0,
                                300.0))]
        for line, r in zip(bars(rows), rows):
            if r["v"] == 0:
                assert line.count("#") == 0
            else:
                assert line.count("#") >= 1

    def test_all_equal_values(self):
        rows = [{"app": "a", "v": 3.0}, {"app": "b", "v": 3.0}]
        a, b = bars(rows)
        assert a.count("#") == b.count("#") >= 1

    def test_int_values_accepted(self):
        (line,) = bars([{"app": "a", "v": 7}])
        assert line.count("#") >= 1 and line.rstrip().endswith("7.00")

    def test_non_numeric_rows_skipped(self):
        assert bar_chart([{"app": "x", "v": "n/a"}], "app", "v") == \
            "(no numeric data)"
