"""CLI: ``python -m repro.harness <experiment-id> [...]``.

Examples::

    python -m repro.harness fig8c
    python -m repro.harness table5 --clusters 14 --scale 2 --waves 4
    python -m repro.harness all --jobs 8

Runs execute through the shared engine: ``--jobs N`` simulates in N
worker processes (results are bit-identical to ``--jobs 1``), and the
content-addressed result cache (``--cache-dir``, ``--no-cache``) makes
repeat invocations — e.g. re-rendering ``all`` after a report tweak —
skip every already-simulated configuration.  See docs/engine.md.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.config import GPUConfig
from repro.harness.engine import Engine
from repro.harness.experiments import EXPERIMENTS, run_experiment
from repro.harness.report import bar_chart, render_experiment
from repro.harness.resilience import RetryPolicy


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Reproduce a paper table/figure.")
    p.add_argument("experiment",
                   help=f"experiment id or 'all' ({', '.join(sorted(EXPERIMENTS))})")
    p.add_argument("--clusters", type=int, default=4,
                   help="SM clusters to simulate (paper: 14; default 4)")
    p.add_argument("--scale", type=float, default=1.0,
                   help="kernel loop-count scale factor")
    p.add_argument("--waves", type=float, default=6.0,
                   help="grid waves per SM (short grids inflate "
                        "end-of-grid tail effects)")
    p.add_argument("--chart", metavar="COLUMN", default=None,
                   help="also render an ASCII bar chart of COLUMN")
    p.add_argument("--jobs", type=int, default=None,
                   help="simulation worker processes (default: "
                        "$REPRO_JOBS or CPU count; 1 = in-process)")
    p.add_argument("--cache-dir", default=None,
                   help="result-cache directory (default: $REPRO_CACHE_DIR "
                        "or ~/.cache/repro)")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the on-disk result cache")
    p.add_argument("--max-cycles", type=int, default=None,
                   help="override the per-run simulation cycle limit")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-run wall-clock budget in seconds (hung "
                        "workers are killed and recorded as timeouts)")
    p.add_argument("--retries", type=int, default=None,
                   help="max attempts for transient failures (default 3)")
    p.add_argument("--fail-fast", action="store_true",
                   help="abort on the first failure instead of isolating "
                        "it into an annotated FAIL cell")
    p.add_argument("--sanitize", action="store_true",
                   help="validate runtime invariants during simulation "
                        "(bypasses the result cache; see docs/resilience.md)")
    p.add_argument("--profile", action="store_true",
                   help="run under cProfile and print the top-20 "
                        "functions by cumulative time to stderr "
                        "(forces --jobs 1 so the work stays in-process)")
    p.add_argument("--metrics", action="store_true",
                   help="collect the observability metrics registry for "
                        "every run (lands on RunResult.metrics; see "
                        "docs/observability.md)")
    p.add_argument("--trace", metavar="DIR", default=None,
                   help="write one Chrome trace-event timeline per run "
                        "into DIR (load in Perfetto / chrome://tracing; "
                        "traced runs bypass the result cache)")
    args = p.parse_args(argv)

    if args.profile:
        from repro.profiling import profiled
        args.jobs = 1  # profile the simulation, not worker plumbing
        return profiled(_dispatch, args)
    return _dispatch(args)


def _dispatch(args: argparse.Namespace) -> int:
    cfg = GPUConfig().scaled(num_clusters=args.clusters)
    retry = RetryPolicy(max_attempts=max(1, args.retries)) \
        if args.retries is not None else None
    engine = Engine(jobs=args.jobs, cache=not args.no_cache,
                    cache_dir=args.cache_dir, timeout=args.timeout,
                    retry=retry, fail_fast=args.fail_fast,
                    sanitize=args.sanitize or None,
                    max_cycles=args.max_cycles,
                    metrics=args.metrics, trace_dir=args.trace)
    ids = sorted(EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    for exp_id in ids:
        t0 = time.perf_counter()
        sims0, hits0 = engine.stats.sims, engine.stats.hits
        nfail0 = len(engine.failures)
        res = run_experiment(exp_id, config=cfg, scale=args.scale,
                             waves=args.waves, engine=engine)
        dt = time.perf_counter() - t0
        sims = engine.stats.sims - sims0
        hits = engine.stats.hits - hits0
        print(render_experiment(res))
        if args.chart and res.rows and args.chart in res.rows[0]:
            label = res.columns[0]
            print(bar_chart(res.rows, label, args.chart))
            print()
        footer = (f"[{exp_id}: {dt:.1f}s | {sims} sims, {hits} cache hits, "
                  f"jobs {engine.jobs}")
        if engine.stats.failures:
            footer += f", {engine.stats.failures} failures"
        if engine.stats.quarantined:
            footer += f", {engine.stats.quarantined} quarantined"
        if engine.stats.quarantine_pruned:
            footer += (f", {engine.stats.quarantine_pruned} "
                       f"quarantine-pruned")
        print(footer + "]")
        for f in engine.failures[nfail0:]:
            print(f"  FAILED: {f.describe()}", file=sys.stderr)
        print()
    return 1 if engine.failures else 0


if __name__ == "__main__":
    sys.exit(main())
