"""Fig. 10: sharing vs the stronger GTO and two-level baselines."""

from conftest import run_once

from repro.harness.experiments import run_experiment
from repro.harness.report import render_experiment


def test_fig10a_scratchpad_vs_gto(benchmark, bench_config, bench_params,
                                  capsys):
    res = run_once(benchmark, run_experiment, exp_id="fig10a",
                   config=bench_config, **bench_params)
    with capsys.disabled():
        print("\n" + render_experiment(res))
    rows = {r["app"]: r for r in res.rows}
    # Paper: up to 30% over GTO, led by lavaMD.
    assert rows["lavaMD"]["improvement_pct"] > 15


def test_fig10b_register_vs_gto(benchmark, bench_config, bench_params,
                                capsys):
    res = run_once(benchmark, run_experiment, exp_id="fig10b",
                   config=bench_config, **bench_params)
    with capsys.disabled():
        print("\n" + render_experiment(res))
    # Paper: gains over GTO are modest (up to ~3.9%); assert the sweep
    # is not uniformly negative.
    assert max(r["improvement_pct"] for r in res.rows) > 0


def test_fig10c_register_vs_two_level(benchmark, bench_config,
                                      bench_params, capsys):
    res = run_once(benchmark, run_experiment, exp_id="fig10c",
                   config=bench_config, **bench_params)
    with capsys.disabled():
        print("\n" + render_experiment(res))
    # Paper: up to 27.2% over two-level.
    assert max(r["improvement_pct"] for r in res.rows) > 10


def test_fig10d_scratchpad_vs_two_level(benchmark, bench_config,
                                        bench_params, capsys):
    res = run_once(benchmark, run_experiment, exp_id="fig10d",
                   config=bench_config, **bench_params)
    with capsys.disabled():
        print("\n" + render_experiment(res))
    assert max(r["improvement_pct"] for r in res.rows) > 10
