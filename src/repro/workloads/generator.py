"""Parametric random-kernel generator for stress and property testing.

Generates structurally valid kernels across the whole feature space —
register/scratchpad pressure, loops, barriers, every access pattern,
work variance — from a seed, deterministically.  Used by the robustness
test suite ("any generated kernel completes under any mode") and handy
for fuzzing scheduler/sharing interactions.
"""

from __future__ import annotations

import numpy as np

from repro.config import GPUConfig, WARP_SIZE
from repro.isa.builder import KernelBuilder
from repro.isa.kernel import Kernel
from repro.isa.opcodes import Pattern

__all__ = ["GeneratorParams", "generate_kernel"]

KB = 1024


class GeneratorParams:
    """Bounds for random kernel generation (all inclusive)."""

    def __init__(self, *,
                 min_warps: int = 1, max_warps: int = 16,
                 min_regs: int = 4, max_regs: int = 48,
                 max_smem: int = 8 * KB,
                 max_loops: int = 3, max_loop_trip: int = 20,
                 max_body: int = 8,
                 barrier_prob: float = 0.3,
                 variance_prob: float = 0.4) -> None:
        self.min_warps = min_warps
        self.max_warps = max_warps
        self.min_regs = min_regs
        self.max_regs = max_regs
        self.max_smem = max_smem
        self.max_loops = max_loops
        self.max_loop_trip = max_loop_trip
        self.max_body = max_body
        self.barrier_prob = barrier_prob
        self.variance_prob = variance_prob


def generate_kernel(seed: int, params: GeneratorParams | None = None,
                    config: GPUConfig | None = None) -> Kernel:
    """Deterministically generate a valid kernel that fits on an SM."""
    p = params or GeneratorParams()
    cfg = config or GPUConfig()
    rng = np.random.Generator(np.random.PCG64(seed))

    warps = int(rng.integers(p.min_warps, p.max_warps + 1))
    threads = warps * WARP_SIZE
    # Keep one block launchable: regs_per_thread * threads <= R.
    max_regs_fit = max(p.min_regs,
                       min(p.max_regs, cfg.registers_per_sm // threads))
    regs = int(rng.integers(p.min_regs, max_regs_fit + 1))
    smem = int(rng.integers(0, min(p.max_smem, cfg.scratchpad_per_sm) + 1))
    smem = (smem // 64) * 64  # realistic 64 B granularity

    use_variance = bool(rng.random() < p.variance_prob)
    # barriers inside loops are incompatible with variance (CUDA UB)
    allow_loop_bar = not use_variance

    b = KernelBuilder(
        f"gen{seed}", block_size=threads, regs=regs, smem=smem, seed=seed,
        alloc="high_first" if rng.random() < 0.5 else "low_first",
        variance=float(rng.uniform(0.1, 0.6)) if use_variance else 0.0)

    def emit_body(in_loop: bool) -> None:
        n = int(rng.integers(1, p.max_body + 1))
        for _ in range(n):
            kind = rng.random()
            if kind < 0.45:
                if rng.random() < 0.5:
                    b.alu_chain(int(rng.integers(1, 4)))
                else:
                    b.alu_indep(int(rng.integers(1, 4)))
            elif kind < 0.55:
                b.sfu(1)
            elif kind < 0.75:
                pat = rng.choice(list(Pattern))
                txn = (int(rng.integers(1, 9))
                       if pat in (Pattern.STRIDED, Pattern.RANDOM) else 1)
                b.ldg(region=f"r{int(rng.integers(0, 3))}",
                      footprint=int(rng.integers(1, 65)) * 8 * KB,
                      pattern=pat, txn=txn,
                      block_private=bool(rng.random() < 0.5))
            elif kind < 0.85:
                b.stg(footprint=int(rng.integers(1, 65)) * 8 * KB)
            elif smem > 0 and kind < 0.97:
                off = int(rng.integers(0, smem))
                wrap = int(rng.integers(off + 1, smem + 1)) \
                    if rng.random() < 0.5 else 0
                stride = int(rng.integers(0, 256)) if wrap else 0
                conflicts = int(rng.integers(1, 5)) \
                    if rng.random() < 0.2 else 1
                if rng.random() < 0.5:
                    b.lds(offset=off, stride=stride, wrap=wrap,
                          conflicts=conflicts)
                else:
                    b.sts(offset=off, stride=stride, wrap=wrap,
                          conflicts=conflicts)
            else:
                if (allow_loop_bar or not in_loop) \
                        and rng.random() < p.barrier_prob:
                    b.bar()
                else:
                    b.alu_indep(1)

    emit_body(in_loop=False)
    for _ in range(int(rng.integers(0, p.max_loops + 1))):
        with b.loop(int(rng.integers(2, p.max_loop_trip + 1))):
            emit_body(in_loop=True)
        if rng.random() < p.barrier_prob:
            b.bar()
    emit_body(in_loop=False)
    return b.build()
