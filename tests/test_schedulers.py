"""Warp scheduling policies (unit level, with minimal stub warps)."""

import pytest

from repro.sched.base import SCHEDULERS, SortedWarpList, make_scheduler
from repro.sim.warp import WarpState


class StubWarp:
    """Minimal stand-in carrying just what schedulers consume."""

    def __init__(self, dynamic_id, cls=1):
        self.dynamic_id = dynamic_id
        self.state = WarpState.READY
        self._cls = cls

    def owf_class(self):
        return self._cls

    def __repr__(self):
        return f"W{self.dynamic_id}"


def always(_w):
    return True


class TestSortedWarpList:
    def test_sorted_insertion(self):
        lst = SortedWarpList()
        for i in (5, 1, 3):
            lst.add(StubWarp(i))
        assert [w.dynamic_id for w in lst] == [1, 3, 5]

    def test_duplicate_rejected(self):
        lst = SortedWarpList()
        w = StubWarp(1)
        lst.add(w)
        with pytest.raises(ValueError):
            lst.add(StubWarp(1))

    def test_discard(self):
        lst = SortedWarpList()
        w = StubWarp(1)
        lst.add(w)
        lst.discard(w)
        assert len(lst) == 0
        lst.discard(w)  # idempotent

    def test_contains(self):
        lst = SortedWarpList()
        w = StubWarp(4)
        assert w not in lst
        lst.add(w)
        assert w in lst

    def test_round_robin_iteration(self):
        lst = SortedWarpList()
        for i in range(4):
            lst.add(StubWarp(i))
        assert [w.dynamic_id for w in lst.iter_round_robin(1)] == [2, 3, 0, 1]
        assert [w.dynamic_id for w in lst.iter_round_robin(-1)] == [0, 1, 2, 3]
        assert [w.dynamic_id for w in lst.iter_round_robin(99)] == [0, 1, 2, 3]


class TestFactory:
    def test_known_names(self):
        assert set(SCHEDULERS) == {"lrr", "gto", "two_level", "owf"}

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_scheduler("fifo", 0)


class TestLRR:
    def test_rotates(self):
        s = make_scheduler("lrr", 0)
        ws = [StubWarp(i) for i in range(3)]
        for w in ws:
            s.on_ready(w)
        picked = []
        for _ in range(6):
            w = s.pick(0, always)
            picked.append(w.dynamic_id)
            s.on_issued(w)
        assert picked == [0, 1, 2, 0, 1, 2]

    def test_skips_unissuable(self):
        s = make_scheduler("lrr", 0)
        ws = [StubWarp(i) for i in range(3)]
        for w in ws:
            s.on_ready(w)
        assert s.pick(0, lambda w: w.dynamic_id == 2).dynamic_id == 2

    def test_none_when_empty(self):
        assert make_scheduler("lrr", 0).pick(0, always) is None


class TestGTO:
    def test_greedy_sticks_with_last(self):
        s = make_scheduler("gto", 0)
        ws = [StubWarp(i) for i in range(3)]
        for w in ws:
            s.on_ready(w)
        w = s.pick(0, always)
        assert w.dynamic_id == 0  # oldest first
        s.on_issued(w)
        assert s.pick(1, always) is w  # greedy

    def test_falls_back_to_oldest(self):
        s = make_scheduler("gto", 0)
        ws = [StubWarp(i) for i in range(3)]
        for w in ws:
            s.on_ready(w)
        s.on_issued(ws[0])
        ws[0].state = WarpState.BLOCK_MEM
        s.on_unready(ws[0])
        assert s.pick(1, always) is ws[1]

    def test_ignores_unissuable_last(self):
        s = make_scheduler("gto", 0)
        ws = [StubWarp(i) for i in range(2)]
        for w in ws:
            s.on_ready(w)
        s.on_issued(ws[0])
        assert s.pick(0, lambda w: w is not ws[0]) is ws[1]


class TestTwoLevel:
    def test_stays_in_active_group(self):
        s = make_scheduler("two_level", 0, fetch_group_size=2)
        ws = [StubWarp(i) for i in range(4)]  # groups {0,1}, {2,3}
        for w in ws:
            s.on_ready(w)
        picked = []
        for _ in range(4):
            w = s.pick(0, always)
            picked.append(w.dynamic_id)
            s.on_issued(w)
        assert set(picked) == {0, 1}  # round robin inside group 0

    def test_switches_group_when_active_stalls(self):
        s = make_scheduler("two_level", 0, fetch_group_size=2)
        ws = [StubWarp(i) for i in range(4)]
        for w in ws:
            s.on_ready(w)
        s.on_issued(s.pick(0, always))
        for w in ws[:2]:
            w.state = WarpState.BLOCK_MEM
            s.on_unready(w)
        w = s.pick(1, always)
        assert w.dynamic_id in (2, 3)
        s.on_issued(w)
        # now sticks with group 1
        assert s.pick(2, always).dynamic_id in (2, 3)

    def test_group_size_validation(self):
        with pytest.raises(ValueError):
            make_scheduler("two_level", 0, fetch_group_size=0)


class TestOWF:
    def test_class_priority(self):
        s = make_scheduler("owf", 0)
        owner = StubWarp(5, cls=0)
        unshared = StubWarp(1, cls=1)
        nonowner = StubWarp(0, cls=2)
        for w in (owner, unshared, nonowner):
            s.on_ready(w)
        assert s.pick(0, always) is owner

    def test_unshared_beats_nonowner(self):
        s = make_scheduler("owf", 0)
        unshared = StubWarp(9, cls=1)
        nonowner = StubWarp(0, cls=2)
        s.on_ready(unshared)
        s.on_ready(nonowner)
        assert s.pick(0, always) is unshared

    def test_nonowner_used_as_last_resort(self):
        s = make_scheduler("owf", 0)
        nonowner = StubWarp(0, cls=2)
        s.on_ready(nonowner)
        assert s.pick(0, always) is nonowner

    def test_oldest_within_class(self):
        s = make_scheduler("owf", 0)
        for i in (4, 2, 7):
            s.on_ready(StubWarp(i, cls=1))
        assert s.pick(0, always).dynamic_id == 2

    def test_greedy_within_class(self):
        s = make_scheduler("owf", 0)
        a, b = StubWarp(1, cls=1), StubWarp(2, cls=1)
        s.on_ready(a)
        s.on_ready(b)
        s.on_issued(b)
        assert s.pick(0, always) is b  # sticks with last, same class

    def test_greedy_never_crosses_class(self):
        s = make_scheduler("owf", 0)
        last = StubWarp(2, cls=1)
        owner = StubWarp(5, cls=0)
        s.on_ready(last)
        s.on_ready(owner)
        s.on_issued(last)
        assert s.pick(0, always) is owner

    def test_equals_gto_when_all_unshared(self):
        owf = make_scheduler("owf", 0)
        gto = make_scheduler("gto", 0)
        ws_o = [StubWarp(i, cls=1) for i in range(6)]
        ws_g = [StubWarp(i, cls=1) for i in range(6)]
        for a, b in zip(ws_o, ws_g):
            owf.on_ready(a)
            gto.on_ready(b)
        import random
        rng = random.Random(7)
        for step in range(200):
            po = owf.pick(step, always)
            pg = gto.pick(step, always)
            assert (po.dynamic_id if po else None) == \
                (pg.dynamic_id if pg else None)
            if po is None:
                for a, b in zip(ws_o, ws_g):
                    if a.state is not WarpState.READY:
                        a.state = WarpState.READY
                        b.state = WarpState.READY
                        owf.on_ready(a)
                        gto.on_ready(b)
                continue
            owf.on_issued(po)
            gto.on_issued(pg)
            if rng.random() < 0.4:  # randomly block the issued warp
                po.state = WarpState.BLOCK_MEM
                owf.on_unready(po)
                pg.state = WarpState.BLOCK_MEM
                gto.on_unready(pg)
