"""Memory hierarchy substrate: coalescer, caches, DRAM, plumbing.

Models the Table I memory system at first order: a 16 KB 4-way L1 with
MSHRs per SM, a shared 768 KB 8-way L2 split into address-interleaved
partitions, and one FR-FCFS DRAM controller per partition with per-bank
row buffers and GDDR timing parameters.  Everything is event-driven on
the core clock (see DESIGN.md §4).
"""

from repro.mem.request import AddressMap, coalesce_lines
from repro.mem.cache import Cache, CacheStats
from repro.mem.dram import DramController, DramStats
from repro.mem.hierarchy import MemoryHierarchy

__all__ = [
    "AddressMap",
    "coalesce_lines",
    "Cache",
    "CacheStats",
    "DramController",
    "DramStats",
    "MemoryHierarchy",
]
