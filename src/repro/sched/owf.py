"""Owner Warp First — the paper's scheduler (Sec. IV-A).

Priority classes: **shared owner** (0) > **unshared** (1) > **shared
non-owner** (2).  Owner warps finish sooner so their dependent non-owner
warps unblock; non-owner warps run only when nothing else can, so their
memory traffic does not interfere with the rest of the SM.

Within a class the policy is greedy-then-oldest.  When no shared blocks
exist every warp is class 1 and OWF degenerates to exactly GTO — the
paper leans on this for its Set-3 analysis ("Shared-OWF ... is similar
to Unshared-GTO"), and our tests assert it cycle-for-cycle.

Class membership is evaluated at pick time (ownership moves when locks
are acquired or a partner block completes), so no per-class containers
are kept.
"""

from __future__ import annotations

from typing import Callable, Optional, TYPE_CHECKING

from repro.sched.base import SCHEDULERS, WarpScheduler
from repro.sim.warp import WarpState

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.warp import WarpContext

__all__ = ["OWFScheduler"]


class OWFScheduler(WarpScheduler):
    """Owner > unshared > non-owner; greedy-then-oldest within a class."""

    name = "owf"

    def pick(self, cycle: int,
             issuable: Optional[Callable[["WarpContext"], bool]] = None
             ) -> Optional["WarpContext"]:
        best: Optional["WarpContext"] = None
        best_cls = 3
        if issuable is None:
            # Inlined owf_class(): this loop runs for every ready warp
            # on every pick of the paper's headline scheduler.
            for w in self.ready:  # id order ⇒ first hit per class oldest
                blk = w.block
                pair = blk.pair
                cls = 1 if pair is None else (
                    0 if pair.owner_side() == blk.side else 2)
                if cls < best_cls:
                    best = w
                    best_cls = cls
                    if cls == 0:
                        break
        else:
            for w in self.ready:
                cls = w.owf_class()
                if cls < best_cls and issuable(w):
                    best = w
                    best_cls = cls
                    if cls == 0:
                        break
        if best is None:
            return None
        last = self.last
        if (last is not None and last is not best
                and last.state is WarpState.READY and last in self.ready
                and last.owf_class() == best_cls
                and (issuable is None or issuable(last))):
            return last  # greedy stickiness within the winning class
        return best


SCHEDULERS["owf"] = OWFScheduler
