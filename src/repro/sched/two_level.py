"""Two-level warp scheduling (Narasiman et al., MICRO-44).

Warps are partitioned into *fetch groups* of ``fetch_group_size``
consecutive dynamic ids.  The scheduler round-robins *within* the active
group and only moves to the next group when no warp of the active group
can issue — so groups drift out of lockstep and long latencies are
covered by the next group while the active one waits.
"""

from __future__ import annotations

from typing import Callable, Optional, TYPE_CHECKING

from repro.sched.base import SCHEDULERS, WarpScheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.warp import WarpContext

__all__ = ["TwoLevelScheduler"]


class TwoLevelScheduler(WarpScheduler):
    """Fetch-group round robin with group switching on stall."""

    name = "two_level"

    def __init__(self, sched_id: int, *, fetch_group_size: int = 8,
                 **kw: object) -> None:
        super().__init__(sched_id, **kw)
        if fetch_group_size < 1:
            raise ValueError("fetch_group_size must be >= 1")
        self.group_size = fetch_group_size
        self._active_group = 0
        self._after = -1

    def _group_of(self, warp: "WarpContext") -> int:
        return warp.dynamic_id // self.group_size

    def pick(self, cycle: int,
             issuable: Optional[Callable[["WarpContext"], bool]] = None
             ) -> Optional["WarpContext"]:
        ready = self.ready
        if not len(ready):
            return None
        if issuable is None:
            # Pass 1: round-robin inside the active group.
            for w in ready.iter_round_robin(self._after):
                if self._group_of(w) == self._active_group:
                    return w
            # Pass 2: no ready warp is in the active group, so the oldest
            # ready warp is in another group — switch to it.
            w = ready.first()
            self._active_group = self._group_of(w)
            return w
        # Pass 1: round-robin inside the active group.
        for w in ready.iter_round_robin(self._after):
            if self._group_of(w) == self._active_group and issuable(w):
                return w
        # Pass 2: switch to the first other group with an issuable warp
        # (ordered by id, i.e. group age).
        for w in ready:
            if self._group_of(w) != self._active_group and issuable(w):
                self._active_group = self._group_of(w)
                return w
        return None

    def on_issued(self, warp: "WarpContext") -> None:
        super().on_issued(warp)
        self._after = warp.dynamic_id
        self._active_group = self._group_of(warp)


SCHEDULERS["two_level"] = TwoLevelScheduler
