"""Thread-block context and sharing pairs."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.locks import RegisterShareGroup, ScratchpadShareGroup
from repro.core.sharing import SharedResource

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.warp import WarpContext

__all__ = ["BlockContext", "SharePair"]


class BlockContext:
    """One resident thread block."""

    __slots__ = ("linear_id", "sm_id", "n_warps", "warps", "active_warps",
                 "bar_count", "pair", "side", "launched_cycle")

    def __init__(self, linear_id: int, sm_id: int, n_warps: int,
                 launched_cycle: int) -> None:
        self.linear_id = linear_id
        self.sm_id = sm_id
        self.n_warps = n_warps
        self.warps: list["WarpContext"] = []
        self.active_warps = n_warps
        self.bar_count = 0
        #: SharePair this block belongs to (None → unshared block).
        self.pair: Optional["SharePair"] = None
        #: 0 or 1 — which member of the pair (meaningless when unshared).
        self.side = 0
        self.launched_cycle = launched_cycle

    @property
    def done(self) -> bool:
        """True once every warp has executed EXIT."""
        return self.active_warps == 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = f" pair@{self.side}" if self.pair is not None else ""
        return f"<Block {self.linear_id} sm={self.sm_id}{tag}>"


class SharePair:
    """A two-block sharing group (paper Sec. III).

    Holds either a :class:`RegisterShareGroup` (warp-pair locks) or a
    :class:`ScratchpadShareGroup` (one block-level lock), depending on the
    shared resource.  A side may be temporarily empty while the dispatcher
    launches a replacement block into it.
    """

    __slots__ = ("resource", "blocks", "reg_group", "spad_group",
                 "owner_sticky")

    def __init__(self, resource: SharedResource, warps_per_block: int) -> None:
        self.resource = resource
        self.blocks: list[Optional[BlockContext]] = [None, None]
        #: Side that first acquired a shared pool; transfers to the
        #: partner when the owning *block* completes (paper Sec. IV-A).
        self.owner_sticky: Optional[int] = None
        if resource is SharedResource.REGISTERS:
            self.reg_group: Optional[RegisterShareGroup] = \
                RegisterShareGroup(warps_per_block)
            self.spad_group: Optional[ScratchpadShareGroup] = None
        else:
            self.reg_group = None
            self.spad_group = ScratchpadShareGroup()

    # ------------------------------------------------------------------
    def attach(self, block: BlockContext, side: int) -> None:
        """Install ``block`` as member ``side`` of the pair."""
        if self.blocks[side] is not None:
            raise RuntimeError("pair side already occupied")
        self.blocks[side] = block
        block.pair = self
        block.side = side

    def detach(self, block: BlockContext) -> None:
        """Remove a completed block, releasing everything it held."""
        side = block.side
        if self.blocks[side] is not block:
            raise RuntimeError("block not attached to this pair")
        if self.reg_group is not None:
            self.reg_group.reset_side(side)
        if self.spad_group is not None:
            self.spad_group.release(side)
        self.blocks[side] = None
        block.pair = None
        if self.owner_sticky == side:
            # Ownership transfers to the surviving partner (if any).
            other = 1 - side
            self.owner_sticky = other if self.blocks[other] is not None \
                else None

    # ------------------------------------------------------------------
    def owner_side(self) -> int:
        """Which side currently plays the *owner* role (paper Sec. IV-A).

        The side that first acquired a shared pool, until its block
        completes (then ownership transfers to the partner).  Before any
        acquisition, the older (earlier-launched) live block — it is
        ahead and will acquire the shared pool first.
        """
        if self.owner_sticky is not None:
            return self.owner_sticky
        a, b = self.blocks
        if a is None:
            return 1
        if b is None:
            return 0
        return 0 if a.launched_cycle <= b.launched_cycle else 1

    def note_acquired(self, side: int) -> None:
        """Record the first shared-pool acquisition (fixes ownership)."""
        if self.owner_sticky is None:
            self.owner_sticky = side

    def live_blocks(self) -> int:
        """Number of occupied sides."""
        return sum(1 for b in self.blocks if b is not None)
