"""SM core: warp contexts, dual schedulers, issue logic, cycle taxonomy.

Issue model (see DESIGN.md §4): each of the SM's two schedulers issues at
most one instruction per cycle from its warp partition
(``dynamic_id % num_schedulers``); the two schedulers share a single
LD/ST port (one memory instruction per SM per cycle).  Warps are in-order
with a per-register scoreboard; ALU/SFU results are pipelined.

All of the paper's run-time machinery lives in :meth:`SMCore._try_issue`:
the Fig. 3 register access check, the Fig. 4 scratchpad access check, the
busy-wait on shared-pool locks, and the Sec. IV-C Dyn gate for non-owner
memory instructions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.config import GPUConfig
from repro.core.dynwarp import DynWarpController
from repro.core.liverange import SharedLiveness
from repro.core.sharing import SharedResource
from repro.events import EventQueue
from repro.isa.kernel import Kernel
from repro.isa.opcodes import Op, op_group
from repro.mem.hierarchy import MemoryHierarchy
from repro.mem.request import AddressMap, coalesce_lines
from repro.sched.base import WarpScheduler, make_scheduler
from repro.sim.block import BlockContext, SharePair
from repro.sim.stats import SMStats
from repro.sim.warp import REG_PENDING, WarpContext, WarpState

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.dispatcher import Dispatcher
    from repro.sim.sanitizer import Sanitizer

__all__ = ["SharingRuntime", "SMCore"]

#: Cycles before a warp rejected by a full MSHR array retries.
_MSHR_RETRY = 4

#: Cooldown before a Dyn-refused warp retries its memory instruction (it
#: is also released at the next monitoring-window boundary).
_DYN_COOLDOWN = 64

#: Extra cycles per additional scratchpad bank-conflict way.
_BANK_CONFLICT = 8

#: op → functional group, precomputed for the hot path.
_GROUP: dict[Op, str] = {op: op_group(op) for op in Op}

_STALL_STATES = frozenset({WarpState.BLOCK_SB, WarpState.BLOCK_MEM,
                           WarpState.BLOCK_RETRY})
_IDLE_STATES = frozenset({WarpState.BLOCK_BAR, WarpState.BLOCK_LOCK,
                          WarpState.BLOCK_DYN})


@dataclass(frozen=True)
class SharingRuntime:
    """Run-time sharing parameters the SM consults on every access.

    ``private_regs`` — per-thread register index threshold: indices below
    it are private (Fig. 3 step (c) compares against ``Rw·t``).
    ``private_smem`` — scratchpad byte-offset threshold (Fig. 4 step (c)).
    """

    resource: SharedResource
    private_regs: int
    private_smem: int


class SMCore:
    """One streaming multiprocessor."""

    def __init__(self, sm_id: int, kernel: Kernel, config: GPUConfig,
                 events: EventQueue, hierarchy: MemoryHierarchy,
                 amap: AddressMap, scheduler: str,
                 sharing: Optional[SharingRuntime] = None,
                 dyn: Optional[DynWarpController] = None,
                 liveness: Optional[SharedLiveness] = None,
                 sanitizer: Optional["Sanitizer"] = None) -> None:
        self.sm_id = sm_id
        self.kernel = kernel
        self.cfg = config
        self.lat = config.latency
        self.events = events
        self.hierarchy = hierarchy
        self.amap = amap
        self.sharing = sharing
        self.dyn = dyn
        #: Live-range tables for the early-release extension (None = off).
        self.liveness = liveness
        #: Runtime invariant checker (None = sanitizer off).
        self.sanitizer = sanitizer
        self.schedulers: list[WarpScheduler] = [
            make_scheduler(scheduler, i,
                           fetch_group_size=config.fetch_group_size)
            for i in range(config.num_schedulers)
        ]
        self.stats = SMStats(sm_id=sm_id)
        self.warps: list[WarpContext] = []
        self.resident_blocks = 0
        self.dispatcher: Optional["Dispatcher"] = None
        self.now = 0
        self._next_warp_id = 0
        self._mem_port_free = True
        self._lock_blocked: list[WarpContext] = []
        self._dyn_blocked: list[WarpContext] = []

    # ------------------------------------------------------------------
    # block/warp lifecycle
    # ------------------------------------------------------------------
    def wire_pair(self, pair: SharePair) -> None:
        """Point the pair's lock-release callback at this SM."""
        if pair.reg_group is not None:
            pair.reg_group.on_release = self._on_lock_release
        if pair.spad_group is not None:
            pair.spad_group.on_release = self._on_lock_release

    def launch_block(self, block: BlockContext, cycle: int) -> None:
        """Create and enqueue the block's warps."""
        for slot in range(block.n_warps):
            w = WarpContext(self._next_warp_id, slot, block, self.kernel)
            self._next_warp_id += 1
            block.warps.append(w)
            self.warps.append(w)
            self._sched_of(w).on_ready(w)
        self.resident_blocks += 1
        self.stats.blocks_launched += 1
        if self.resident_blocks > self.stats.max_resident_blocks:
            self.stats.max_resident_blocks = self.resident_blocks

    def _sched_of(self, warp: WarpContext) -> WarpScheduler:
        return self.schedulers[warp.dynamic_id % len(self.schedulers)]

    # ------------------------------------------------------------------
    # state transitions
    # ------------------------------------------------------------------
    def _set_state(self, warp: WarpContext, state: WarpState) -> None:
        old = warp.state
        if old is state:
            return
        if old is WarpState.READY:
            self._sched_of(warp).on_unready(warp)
        elif state is WarpState.READY:
            self._sched_of(warp).on_ready(warp)
        warp.state = state
        warp.wake_token += 1

    def _timed_wake(self, warp: WarpContext, at: int,
                    expected: WarpState) -> None:
        token = warp.wake_token

        def _fire(cycle: int) -> None:
            if warp.wake_token == token and warp.state is expected:
                self.now = cycle
                self._update_readiness(warp, cycle)

        self.events.push(at, _fire)

    def _update_readiness(self, warp: WarpContext, cycle: int) -> None:
        """Re-derive a warp's scoreboard wait state for its next instr."""
        e = warp.earliest_issue()
        if e >= REG_PENDING:
            self._set_state(warp, WarpState.BLOCK_MEM)
        elif e <= cycle + 1:
            self._set_state(warp, WarpState.READY)
        else:
            self._set_state(warp, WarpState.BLOCK_SB)
            self._timed_wake(warp, e, WarpState.BLOCK_SB)

    # ------------------------------------------------------------------
    # wake paths
    # ------------------------------------------------------------------
    def _on_load_done(self, warp: WarpContext, dst: tuple[int, ...],
                      cycle: int) -> None:
        self.now = cycle
        for r in dst:
            warp.reg_ready[r] = cycle
        warp.outstanding_loads -= 1
        if warp.state is WarpState.BLOCK_MEM:
            self._update_readiness(warp, cycle)

    def _on_lock_release(self) -> None:
        """A shared pool was released: retry every lock-blocked warp."""
        if not self._lock_blocked:
            return
        waiters, self._lock_blocked = self._lock_blocked, []
        for w in waiters:
            if w.state is WarpState.BLOCK_LOCK:
                self._update_readiness(w, self.now)

    def release_dyn_blocked(self, cycle: int) -> None:
        """Dyn monitoring window ended: unblock refused warps."""
        self.now = cycle
        waiters, self._dyn_blocked = self._dyn_blocked, []
        for w in waiters:
            if w.state is WarpState.BLOCK_DYN:
                self._update_readiness(w, cycle)

    # ------------------------------------------------------------------
    # per-cycle issue
    # ------------------------------------------------------------------
    def has_ready(self) -> bool:
        """True if any scheduler has a READY warp."""
        return any(len(s.ready) for s in self.schedulers)

    def _issuable(self, warp: WarpContext) -> bool:
        g = _GROUP[warp.current_instr.op]
        if g == "global" or g == "shared":
            return self._mem_port_free
        return True

    def step(self, cycle: int) -> int:
        """Run one SM cycle; returns instructions issued (0..2)."""
        self.now = cycle
        self._mem_port_free = True
        issued = 0
        for sched in self.schedulers:
            while True:
                w = sched.pick(cycle, self._issuable)
                if w is None:
                    break
                if self._try_issue(w, cycle, sched):
                    issued += 1
                    break
                # otherwise the warp blocked and left the ready list;
                # give the scheduler another chance this cycle.
        return issued

    # ------------------------------------------------------------------
    def _dyn_critical(self, warp: WarpContext) -> bool:
        """True when throttling ``warp`` would stall the partner block.

        Priority-inversion escape hatch for the Dyn gate: if this
        warp's block holds a shared pool that a partner-side warp is
        lock-blocked on, refusing its memory instructions cannot be
        "protecting the owner" — it *is* the owner's critical path
        (pools release only as the holding block progresses).  On SM0,
        whose throttle probability is pinned to 0, refusing such a warp
        forever would livelock the pair outright.
        """
        pair = warp.block.pair
        if pair is None:
            return False
        side = warp.block.side
        partner = pair.blocks[1 - side]
        if partner is None:
            return False
        g, sg = pair.reg_group, pair.spad_group
        for w in self._lock_blocked:
            if w.state is not WarpState.BLOCK_LOCK or w.block is not partner:
                continue
            if g is not None and g.holder(w.slot) == side:
                return True
            if sg is not None and sg.holder == side:
                return True
        return False

    def _try_issue(self, warp: WarpContext, cycle: int,
                   sched: WarpScheduler) -> bool:
        ins = warp.current_instr
        grp = _GROUP[ins.op]
        block = warp.block
        pair = block.pair
        stats = self.stats

        # --- Dyn gate (Sec. IV-C): non-owner global memory only ---
        if (self.dyn is not None and grp == "global" and pair is not None
                and warp.owf_class() == 2):
            if (not self.dyn.allow(self.sm_id)
                    and not self._dyn_critical(warp)):
                stats.dyn_refusals += 1
                self._set_state(warp, WarpState.BLOCK_DYN)
                self._dyn_blocked.append(warp)
                self._timed_wake(warp, cycle + _DYN_COOLDOWN,
                                 WarpState.BLOCK_DYN)
                return False

        # --- register sharing access check (Fig. 3) ---
        if (self.sharing is not None
                and self.sharing.resource is SharedResource.REGISTERS
                and pair is not None):
            pr = self.sharing.private_regs
            if any(r >= pr for r in ins.regs):
                g = pair.reg_group
                assert g is not None
                if not g.holds(block.side, warp.slot):
                    if g.try_acquire(block.side, warp.slot):
                        stats.lock_acquires += 1
                        pair.note_acquired(block.side)
                    else:
                        stats.lock_waits += 1
                        self._set_state(warp, WarpState.BLOCK_LOCK)
                        self._lock_blocked.append(warp)
                        return False

        # --- scratchpad sharing access check (Fig. 4) ---
        smem_off = 0
        if grp == "shared":
            m = ins.mem
            assert m is not None
            smem_off = (m.offset if m.wrap == 0
                        else (m.offset + warp.iter_idx * m.stride) % m.wrap)
            if (self.sharing is not None
                    and self.sharing.resource is SharedResource.SCRATCHPAD
                    and pair is not None
                    and smem_off >= self.sharing.private_smem):
                g = pair.spad_group
                assert g is not None
                if not g.holds(block.side):
                    if g.try_acquire(block.side):
                        stats.lock_acquires += 1
                        pair.note_acquired(block.side)
                    else:
                        stats.lock_waits += 1
                        self._set_state(warp, WarpState.BLOCK_LOCK)
                        self._lock_blocked.append(warp)
                        return False

        # --- execute side effects ---
        if grp == "global":
            m = ins.mem
            assert m is not None
            lines = coalesce_lines(
                m, self.amap, block_linear=block.linear_id,
                warp_in_block=warp.slot, warps_per_block=block.n_warps,
                iter_idx=warp.iter_idx, line_size=self.cfg.line_size,
                seed=self.kernel.seed)
            if ins.op is Op.LDG:
                dst = ins.dst
                on_done: Callable[[int], None] = (
                    lambda c, w=warp, d=dst: self._on_load_done(w, d, c))
                if not self.hierarchy.try_load(self.sm_id, lines, cycle,
                                               on_done):
                    stats.mshr_stalls += 1
                    self._set_state(warp, WarpState.BLOCK_RETRY)
                    self._timed_wake(warp, cycle + _MSHR_RETRY,
                                     WarpState.BLOCK_RETRY)
                    return False
                for r in dst:
                    warp.reg_ready[r] = REG_PENDING
                warp.outstanding_loads += 1
            else:
                self.hierarchy.store(self.sm_id, lines, cycle)
            self._mem_port_free = False
            stats.mem_instructions += 1
        elif grp == "shared":
            m = ins.mem
            assert m is not None
            # An n-way bank conflict serialises into n bank accesses.
            lat = self.lat.scratchpad + (m.conflicts - 1) * _BANK_CONFLICT
            for r in ins.dst:
                warp.reg_ready[r] = cycle + lat
            self._mem_port_free = False
            stats.mem_instructions += 1
        elif grp == "alu":
            for r in ins.dst:
                warp.reg_ready[r] = cycle + self.lat.alu
        elif grp == "sfu":
            for r in ins.dst:
                warp.reg_ready[r] = cycle + self.lat.sfu

        # --- retire bookkeeping ---
        warp.issued += 1
        stats.instructions += 1
        cls = warp.owf_class()
        if cls == 0:
            stats.issued_owner += 1
        elif cls == 1:
            stats.issued_unshared += 1
        else:
            stats.issued_nonowner += 1
        sched.on_issued(warp)

        if grp == "exit":
            self._finish_warp(warp, cycle)
            return True

        warp.advance()
        if self.liveness is not None:
            self._maybe_early_release(warp)

        if grp == "bar":
            block.bar_count += 1
            if block.bar_count == block.n_warps:
                block.bar_count = 0
                stats.barriers += 1
                for w2 in block.warps:
                    if w2.state is WarpState.BLOCK_BAR:
                        self._update_readiness(w2, cycle)
                self._update_readiness(warp, cycle)
            else:
                self._set_state(warp, WarpState.BLOCK_BAR)
            return True

        self._update_readiness(warp, cycle)
        return True

    # ------------------------------------------------------------------
    def _maybe_early_release(self, warp: WarpContext) -> None:
        """Live-range extension (paper Sec. VIII): hand the shared pool to
        the partner warp as soon as this warp provably stops needing it."""
        if warp.shared_done:
            return
        pair = warp.block.pair
        if pair is None or pair.reg_group is None or self.sharing is None:
            return
        seg, rep, pc = warp.trace_position
        assert self.liveness is not None
        if self.liveness.done_with_shared(seg, rep, pc, warp.repeats,
                                          self.sharing.private_regs):
            warp.shared_done = True
            if pair.reg_group.holds(warp.block.side, warp.slot):
                self.stats.early_releases += 1
            pair.reg_group.warp_finished(warp.block.side, warp.slot)

    def _finish_warp(self, warp: WarpContext, cycle: int) -> None:
        if self.sanitizer is not None:
            self.sanitizer.on_warp_finished(warp)
        self._set_state(warp, WarpState.FINISHED)
        block = warp.block
        block.active_warps -= 1
        pair = block.pair
        if pair is not None and pair.reg_group is not None:
            # Paper Sec. III-A: the shared pool passes to the partner
            # warp the moment its holder finishes.
            pair.reg_group.warp_finished(block.side, warp.slot)
        if block.active_warps == 0:
            self._complete_block(block, cycle)

    def _complete_block(self, block: BlockContext, cycle: int) -> None:
        self.now = cycle
        self.stats.blocks_completed += 1
        self.resident_blocks -= 1
        for w in block.warps:
            self.warps.remove(w)
        assert self.dispatcher is not None
        # detach (inside on_block_done) releases the scratchpad lock and
        # wakes partner warps; then the slot is refilled.
        self.dispatcher.on_block_done(self, block, cycle)

    # ------------------------------------------------------------------
    # cycle taxonomy (paper Fig. 9 metrics)
    # ------------------------------------------------------------------
    def classify(self) -> str:
        """Classify a no-issue cycle as 'stall', 'idle' or 'empty'."""
        saw_warp = False
        for w in self.warps:
            st = w.state
            if st in _STALL_STATES:
                return "stall"
            if st is not WarpState.FINISHED:
                saw_warp = True
        return "idle" if saw_warp else "empty"

    def account(self, kind: str, n: int = 1) -> None:
        """Add ``n`` cycles of class ``kind`` to the counters."""
        if kind == "active":
            self.stats.active_cycles += n
        elif kind == "stall":
            self.stats.stall_cycles += n
        elif kind == "idle":
            self.stats.idle_cycles += n
        else:
            self.stats.empty_cycles += n
