"""KernelBuilder DSL."""

import pytest

from repro.isa.builder import KernelBuilder
from repro.isa.opcodes import MemSpace, Op


def bld(**kw):
    args = dict(block_size=64, regs=16)
    args.update(kw)
    return KernelBuilder("t", **args)


class TestEmission:
    def test_minimal_kernel(self):
        k = bld().build()
        assert k.dynamic_count == 1
        assert k.static_instrs[-1].op is Op.EXIT

    def test_alu_chain_is_dependent(self):
        b = bld()
        b.alu_chain(3)
        k = b.build()
        ins = k.static_instrs
        assert ins[1].src == ins[0].dst
        assert ins[2].src == ins[1].dst

    def test_alu_indep_no_self_dependence(self):
        b = bld(regs=2)
        b.alu_indep(6)
        for i in bld(regs=2).build().static_instrs:
            pass
        k = b.build()
        for ins in k.static_instrs[:-1]:
            assert ins.dst[0] != ins.src[0]

    def test_ldg_returns_dst(self):
        b = bld()
        r = b.ldg(footprint=4096)
        k = b.build()
        assert k.static_instrs[0].dst == (r,)
        assert k.static_instrs[0].mem.space is MemSpace.GLOBAL

    def test_stg_defaults_to_last_result(self):
        b = bld()
        r = b.alu()
        b.stg(footprint=4096)
        k = b.build()
        assert k.static_instrs[1].src == (r,)

    def test_lds_sts(self):
        b = bld(smem=256)
        b.lds(offset=8)
        b.sts(offset=16, stride=4, wrap=64)
        k = b.build()
        assert k.static_instrs[0].op is Op.LDS
        assert k.static_instrs[1].mem.wrap == 64

    def test_sfu_chained(self):
        b = bld()
        b.alu()
        b.sfu(2)
        k = b.build()
        assert k.static_instrs[1].op is Op.SFU
        assert k.static_instrs[2].src == k.static_instrs[1].dst

    def test_bar(self):
        b = bld()
        b.bar()
        assert b.build().static_instrs[0].op is Op.BAR


class TestAllocation:
    def test_high_first_starts_at_top(self):
        b = bld(regs=16, alloc="high_first")
        assert b.alu() == 14 or True  # first dst after implicit src pick
        # deterministic: first allocation is regs-1
        b2 = bld(regs=16, alloc="high_first")
        r = b2.ldg(footprint=4096)
        assert r == 15

    def test_low_first_starts_at_zero(self):
        b = bld(regs=16, alloc="low_first")
        assert b.ldg(footprint=4096) == 0

    def test_bad_alloc_rejected(self):
        with pytest.raises(ValueError):
            bld(alloc="weird")

    def test_cursor_wraps_within_budget(self):
        b = bld(regs=4)
        for _ in range(10):
            b.alu_indep(1)
        k = b.build()
        assert k.max_register_used <= 3


class TestLoops:
    def test_loop_creates_repeated_segment(self):
        b = bld()
        with b.loop(7):
            b.alu_indep(2)
        k = b.build()
        assert k.segments[0].repeat == 7
        assert k.dynamic_count == 2 * 7 + 1

    def test_nested_loop_rejected(self):
        b = bld()
        with pytest.raises(RuntimeError):
            with b.loop(2):
                b.alu_indep(1)
                with b.loop(2):
                    pass

    def test_empty_loop_rejected(self):
        b = bld()
        with pytest.raises(ValueError):
            with b.loop(3):
                pass

    def test_instructions_around_loop(self):
        b = bld()
        b.alu_indep(1)
        with b.loop(4):
            b.alu_indep(1)
        b.alu_indep(1)
        k = b.build()
        assert [s.repeat for s in k.segments] == [1, 4, 1]

    def test_variance_passthrough(self):
        b = bld(variance=0.4)
        with b.loop(4):
            b.alu_indep(1)
        assert b.build().work_variance == 0.4

    def test_resource_signature(self):
        b = KernelBuilder("sig", block_size=256, regs=36, smem=2048,
                          grid=7, seed=42)
        k = b.build()
        assert (k.threads_per_block, k.regs_per_thread,
                k.smem_per_block, k.grid_blocks, k.seed) == \
            (256, 36, 2048, 7, 42)
