"""Greedy-Then-Oldest: stick with the last warp, else oldest ready."""

from __future__ import annotations

from typing import Callable, Optional, TYPE_CHECKING

from repro.sched.base import SCHEDULERS, WarpScheduler
from repro.sim.warp import WarpState

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.warp import WarpContext

__all__ = ["GTOScheduler"]


class GTOScheduler(WarpScheduler):
    """GTO keeps issuing from one warp until it stalls, then the oldest."""

    name = "gto"

    def pick(self, cycle: int,
             issuable: Optional[Callable[["WarpContext"], bool]] = None
             ) -> Optional["WarpContext"]:
        last = self.last
        if (last is not None and last.state is WarpState.READY
                and last in self.ready
                and (issuable is None or issuable(last))):
            return last
        if issuable is None:
            return self.ready.first()  # sorted by dynamic id == age
        for w in self.ready:
            if issuable(w):
                return w
        return None


SCHEDULERS["gto"] = GTOScheduler
