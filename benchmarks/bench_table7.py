"""Tables VII & VIII: IPC and resident blocks vs scratchpad sharing."""

from conftest import run_once

from repro.harness.experiments import run_experiment
from repro.harness.report import render_experiment

#: Paper Table VIII, reproduced exactly by Eq. 4.
PAPER_TABLE8 = {
    "CONV1": [6, 6, 6, 6, 7, 8],
    "CONV2": [3, 3, 3, 3, 3, 4],
    "lavaMD": [2, 2, 2, 2, 2, 4],
    "NW1": [7, 7, 7, 8, 8, 8],
    "NW2": [7, 7, 7, 8, 8, 8],
    "SRAD1": [2, 2, 2, 3, 4, 4],
    "SRAD2": [3, 3, 3, 3, 3, 5],
}

PCTS = ["0%", "10%", "30%", "50%", "70%", "90%"]


def test_table8_resident_blocks(benchmark, bench_config, bench_params,
                                capsys):
    res = run_once(benchmark, run_experiment, exp_id="table8",
                   config=bench_config, **bench_params)
    with capsys.disabled():
        print("\n" + render_experiment(res))
    for row in res.rows:
        assert [row[p] for p in PCTS] == PAPER_TABLE8[row["app"]], row["app"]


def test_table7_ipc_sweep(benchmark, bench_config, bench_params, capsys):
    res = run_once(benchmark, run_experiment, exp_id="table7",
                   config=bench_config, **bench_params)
    with capsys.disabled():
        print("\n" + render_experiment(res))
    rows = {r["app"]: r for r in res.rows}
    for row in res.rows:
        assert row["0%"] == row["10%"], row["app"]
    # Paper: lavaMD only jumps at 90% (blocks 2 -> 4 happens at t=0.1).
    lv = rows["lavaMD"]
    assert lv["90%"] > lv["0%"] * 1.1
    assert abs(lv["70%"] - lv["0%"]) / lv["0%"] < 0.05
