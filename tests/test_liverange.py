"""Live-range analysis and the early-release extension."""

import pytest

from repro.config import GPUConfig
from repro.core.liverange import SharedLiveness
from repro.core.sharing import SharedResource, SharingSpec, plan_sharing
from repro.harness.extensions import tail_heavy_kernel
from repro.harness.runner import run, shared
from repro.isa.instructions import Instr
from repro.isa.kernel import Kernel, Segment
from repro.isa.opcodes import Op
from repro.sim.gpu import GPU


def alu(d, s):
    return Instr(Op.FADD, dst=(d,), src=(s,))


def mk(segs, regs=16):
    return Kernel(name="k", threads_per_block=64, regs_per_thread=regs,
                  smem_per_block=0, grid_blocks=1, segments=segs)


class TestSharedLiveness:
    def test_straight_line_suffix_max(self):
        segs = (Segment((alu(9, 1), alu(2, 3), alu(0, 1), Instr(Op.EXIT)),),)
        lv = SharedLiveness(mk(segs))
        reps = (1,)
        assert lv.future_max_reg(0, 0, 0, reps) == 9
        assert lv.future_max_reg(0, 0, 1, reps) == 3
        assert lv.future_max_reg(0, 0, 2, reps) == 1
        assert lv.future_max_reg(0, 0, 3, reps) == -1

    def test_loop_counts_body_until_last_rep(self):
        segs = (Segment((alu(9, 1), alu(2, 3)), repeat=3),
                Segment((alu(0, 1), Instr(Op.EXIT)),))
        lv = SharedLiveness(mk(segs))
        reps = (3, 1)
        # mid-loop at pc 1: rep 0 -> body runs again, max is 9
        assert lv.future_max_reg(0, 0, 1, reps) == 9
        # final repetition at pc 1: only alu(2,3) + next segment remain
        assert lv.future_max_reg(0, 2, 1, reps) == 3

    def test_respects_warp_specific_repeats(self):
        segs = (Segment((alu(9, 1),), repeat=5), Segment((Instr(Op.EXIT),),))
        lv = SharedLiveness(mk(segs))
        # A warp whose variance-scaled trip count is 2 finishes earlier.
        assert lv.future_max_reg(0, 1, 0, (2, 1)) == 9
        assert lv.future_max_reg(0, 2, 0, (5, 1)) == 9

    def test_done_with_shared(self):
        segs = (Segment((alu(9, 1), alu(1, 0), Instr(Op.EXIT)),),)
        lv = SharedLiveness(mk(segs))
        assert not lv.done_with_shared(0, 0, 0, (1,), private_regs=3)
        assert lv.done_with_shared(0, 0, 1, (1,), private_regs=3)

    def test_past_end_is_done(self):
        segs = (Segment((Instr(Op.EXIT),),),)
        lv = SharedLiveness(mk(segs))
        assert lv.done_with_shared(1, 0, 0, (1,), private_regs=0)


class TestEarlyReleaseEndToEnd:
    CFG = GPUConfig().scaled(num_clusters=1)

    def _run(self, early):
        k = tail_heavy_kernel(0.4).with_grid(8)
        plan = plan_sharing(k, self.CFG,
                            SharingSpec(SharedResource.REGISTERS, 0.1))
        assert plan.enabled
        from repro.core.unroll import reorder_registers
        k = reorder_registers(k)
        gpu = GPU(k, self.CFG, scheduler="owf", plan=plan,
                  early_release=early)
        return gpu.run()

    def test_early_releases_counted(self):
        r = self._run(True)
        assert sum(s.early_releases for s in r.sm_stats) > 0

    def test_off_by_default(self):
        r = self._run(False)
        assert sum(s.early_releases for s in r.sm_stats) == 0

    def test_conservation_unaffected(self):
        a = self._run(False)
        b = self._run(True)
        assert a.instructions == b.instructions

    def test_er_never_slower_on_tail_heavy(self):
        a = self._run(False)
        b = self._run(True)
        assert b.cycles <= a.cycles * 1.02

    def test_mode_validation(self):
        with pytest.raises(ValueError):
            shared(SharedResource.SCRATCHPAD, "owf", early_release=True)

    def test_mode_label(self):
        m = shared(SharedResource.REGISTERS, "owf", unroll=True,
                   early_release=True)
        assert m.label == "Shared-OWF-Unroll-ER"

    def test_runner_integration(self):
        from repro.harness.extensions import TAIL_APP
        cfg = GPUConfig().scaled(num_clusters=2)
        r = run(TAIL_APP, shared(SharedResource.REGISTERS, "owf",
                                 unroll=True, early_release=True),
                config=cfg, scale=0.3, waves=2)
        assert r.ipc > 0
