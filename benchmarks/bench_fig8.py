"""Fig. 8: headline results — resident blocks and IPC improvements."""

from conftest import run_once

from repro.harness.experiments import run_experiment
from repro.harness.report import render_experiment


def test_fig8a_register_blocks(benchmark, bench_config, bench_params,
                               capsys):
    res = run_once(benchmark, run_experiment, exp_id="fig8a",
                   config=bench_config, **bench_params)
    with capsys.disabled():
        print("\n" + render_experiment(res))
    for row in res.rows:  # Eq. 4 block counts are exact vs the paper
        assert row["blocks_shared"] == row["paper_shared"]


def test_fig8b_scratchpad_blocks(benchmark, bench_config, bench_params,
                                 capsys):
    res = run_once(benchmark, run_experiment, exp_id="fig8b",
                   config=bench_config, **bench_params)
    with capsys.disabled():
        print("\n" + render_experiment(res))
    for row in res.rows:
        assert row["blocks_shared"] == row["paper_shared"]


def test_fig8c_register_sharing_ipc(benchmark, bench_config, bench_params,
                                    capsys):
    res = run_once(benchmark, run_experiment, exp_id="fig8c",
                   config=bench_config, **bench_params)
    with capsys.disabled():
        print("\n" + render_experiment(res))
    rows = {r["app"]: r for r in res.rows}
    # Shape assertions: flagship apps clearly improve, LIB/mri-q stay
    # near zero — the paper's qualitative result.
    assert rows["hotspot"]["improvement_pct"] > 10
    assert rows["stencil"]["improvement_pct"] > 5
    assert rows["b+tree"]["improvement_pct"] > 0
    assert abs(rows["LIB"]["improvement_pct"]) < 8
    assert rows["mri-q"]["improvement_pct"] < 15


def test_fig8d_scratchpad_sharing_ipc(benchmark, bench_config,
                                      bench_params, capsys):
    res = run_once(benchmark, run_experiment, exp_id="fig8d",
                   config=bench_config, **bench_params)
    with capsys.disabled():
        print("\n" + render_experiment(res))
    rows = {r["app"]: r for r in res.rows}
    # lavaMD is the biggest winner (paper: ~30%), everything else >= ~0.
    best = max(res.rows, key=lambda r: r["improvement_pct"])
    assert best["app"] == "lavaMD"
    assert rows["lavaMD"]["improvement_pct"] > 20
    for row in res.rows:
        assert row["improvement_pct"] > -5
