"""Extension ablations: early release (Sec. VIII) and the t frontier."""

from conftest import run_once

from repro.harness.experiments import run_experiment
from repro.harness.report import render_experiment


def test_ext_early_release(benchmark, bench_config, bench_params, capsys):
    res = run_once(benchmark, run_experiment, exp_id="ext_early_release",
                   config=bench_config, **bench_params)
    with capsys.disabled():
        print("\n" + render_experiment(res))
    rows = {r["app"]: r for r in res.rows}
    # ER must fire on the tail-heavy kernel and never regress materially.
    assert rows["tailheavy"]["early_releases"] > 0
    for row in res.rows:
        assert row["impr_er_pct"] >= row["impr_shared_pct"] - 2.0


def test_ext_threshold_frontier(benchmark, bench_config, bench_params,
                                capsys):
    res = run_once(benchmark, run_experiment,
                   exp_id="ext_threshold_frontier",
                   config=bench_config, **bench_params)
    with capsys.disabled():
        print("\n" + render_experiment(res))
    # Block counts are monotone non-increasing in t (Eq. 4).
    for app in {r["app"] for r in res.rows}:
        rows = [r for r in res.rows if r["app"] == app]
        rows.sort(key=lambda r: r["t"])
        blocks = [r["blocks"] for r in rows]
        assert blocks == sorted(blocks, reverse=True)
