"""Scheduler interface and the sorted ready-warp container.

Each SM has ``num_schedulers`` scheduler instances (Table I: two); warps
are statically partitioned by ``dynamic_id % num_schedulers``, mirroring
GPGPU-Sim.  A scheduler owns the READY warps of its partition in a list
kept sorted by dynamic id (launch age), which every policy is defined
over: LRR rotates through it, GTO/OWF take the oldest, two-level walks it
in fetch groups.

``pick(cycle, issuable)`` returns a READY warp for which the
``issuable`` predicate holds (the SM uses the predicate for same-cycle
structural constraints such as the single LD/ST port), or None.
``issuable=None`` means *every* ready warp is issuable — the common case
(LD/ST port still free), which every policy short-circuits without any
per-candidate predicate calls.  The SM then attempts the issue; if the
warp turns out to be blocked (shared-pool lock, Dyn refusal, MSHR
rejection) it leaves the ready list and ``pick`` is consulted again in
the same cycle.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Callable, Iterator, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.warp import WarpContext

__all__ = ["SortedWarpList", "WarpScheduler", "make_scheduler", "SCHEDULERS"]


class SortedWarpList:
    """Warps kept sorted by ``dynamic_id`` with O(log n) add/remove."""

    __slots__ = ("_ids", "_warps")

    def __init__(self) -> None:
        self._ids: list[int] = []
        self._warps: list["WarpContext"] = []

    def __len__(self) -> int:
        return len(self._ids)

    def __iter__(self) -> Iterator["WarpContext"]:
        return iter(self._warps)

    def __contains__(self, warp: "WarpContext") -> bool:
        i = bisect_left(self._ids, warp.dynamic_id)
        return i < len(self._ids) and self._ids[i] == warp.dynamic_id

    def add(self, warp: "WarpContext") -> None:
        """Insert ``warp`` (ids are unique per SM; double-add is a bug)."""
        i = bisect_left(self._ids, warp.dynamic_id)
        if i < len(self._ids) and self._ids[i] == warp.dynamic_id:
            raise ValueError("warp already in ready list")
        self._ids.insert(i, warp.dynamic_id)
        self._warps.insert(i, warp)

    def discard(self, warp: "WarpContext") -> None:
        """Remove ``warp`` if present."""
        i = bisect_left(self._ids, warp.dynamic_id)
        if i < len(self._ids) and self._ids[i] == warp.dynamic_id:
            del self._ids[i]
            del self._warps[i]

    def iter_round_robin(self, after_id: int) -> Iterator["WarpContext"]:
        """Iterate all warps starting just after ``after_id``, wrapping."""
        i = bisect_right(self._ids, after_id)
        yield from self._warps[i:]
        yield from self._warps[:i]

    def first(self) -> Optional["WarpContext"]:
        """Lowest-id (oldest) warp, or None when empty."""
        return self._warps[0] if self._warps else None

    def first_after(self, after_id: int) -> Optional["WarpContext"]:
        """First warp strictly after ``after_id``, wrapping; None if empty."""
        if not self._warps:
            return None
        i = bisect_right(self._ids, after_id)
        return self._warps[i] if i < len(self._warps) else self._warps[0]


class WarpScheduler:
    """Base class; subclasses implement :meth:`pick`.

    Two views of the partition coexist:

    ``ready``
        The sorted READY-warp list every :meth:`pick` policy is defined
        over.  The reference core maintains it on every state
        transition.
    ``warps`` / ``n_ready``
        The *static* partition (all resident warps, appended in launch
        order, i.e. ascending ``dynamic_id``) plus an O(1) READY count.
        The fast core maintains only ``n_ready`` on state transitions
        and evaluates the four built-in policies inline over ``warps``
        (see ``SMCore.step``), skipping the sorted-list churn entirely;
        the two formulations are proved pick-for-pick equivalent by the
        differential golden suite.
    """

    name = "base"

    def __init__(self, sched_id: int, **_: object) -> None:
        self.sched_id = sched_id
        self.ready = SortedWarpList()
        #: Static partition: every resident warp, ascending dynamic_id.
        self.warps: list["WarpContext"] = []
        #: Number of READY warps in the partition (fast-core counter).
        self.n_ready = 0
        self.last: Optional["WarpContext"] = None

    # -- ready-list maintenance (driven by the SM) ---------------------
    def on_ready(self, warp: "WarpContext") -> None:
        """Register a newly launched (READY) warp with this scheduler."""
        self.ready.add(warp)
        self.warps.append(warp)
        self.n_ready += 1

    def on_unready(self, warp: "WarpContext") -> None:
        self.ready.discard(warp)
        self.n_ready -= 1

    def on_issued(self, warp: "WarpContext") -> None:
        self.last = warp

    # -- policy ---------------------------------------------------------
    def pick(self, cycle: int,
             issuable: Optional[Callable[["WarpContext"], bool]] = None
             ) -> Optional["WarpContext"]:
        """Select a ready warp (``issuable=None`` → all are issuable)."""
        raise NotImplementedError


def make_scheduler(name: str, sched_id: int, *,
                   fetch_group_size: int = 8) -> WarpScheduler:
    """Factory over the registered scheduling policies."""
    try:
        cls = SCHEDULERS[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; choose from {sorted(SCHEDULERS)}"
        ) from None
    return cls(sched_id, fetch_group_size=fetch_group_size)


# Populated by the policy modules at import time (see package __init__).
SCHEDULERS: dict[str, type[WarpScheduler]] = {}
