"""One function per paper table/figure (see DESIGN.md §5 for the index).

Every experiment returns an :class:`ExperimentResult` whose rows carry
both our measurement and, where available, the paper's reported value —
EXPERIMENTS.md is generated from these.

Defaults are laptop-scale: 4 SM clusters instead of 14 and ``waves=3``
grid waves.  Per-SM resources are untouched, so every occupancy/sharing
decision matches the full Table I machine; pass
``config=GPUConfig()`` for the full-size run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.config import GPUConfig
from repro.core.occupancy import occupancy
from repro.core.overhead import overhead_summary
from repro.core.sharing import SharedResource, SharingSpec, plan_sharing
from repro.harness.runner import Mode, improvement, run, shared, unshared
from repro.workloads.apps import APPS
from repro.workloads.suites import SET1, SET2, SET3

__all__ = ["ExperimentResult", "EXPERIMENTS", "run_experiment"]

REG = SharedResource.REGISTERS
SPAD = SharedResource.SCRATCHPAD

#: The t-sweep of Tables V-VIII: sharing% = (1-t)*100.
SHARING_PCTS = (0, 10, 30, 50, 70, 90)


@dataclass
class ExperimentResult:
    """Rows reproducing one paper artifact."""

    id: str
    title: str
    columns: list[str]
    rows: list[dict] = field(default_factory=list)
    notes: str = ""


EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {}


def _experiment(fn: Callable[..., ExperimentResult]):
    EXPERIMENTS[fn.__name__] = fn
    return fn


def run_experiment(exp_id: str, **kwargs) -> ExperimentResult:
    """Run a registered experiment by id (e.g. ``"fig8c"``)."""
    try:
        fn = EXPERIMENTS[exp_id]
    except KeyError:
        raise ValueError(f"unknown experiment {exp_id!r}; "
                         f"available: {sorted(EXPERIMENTS)}") from None
    return fn(**kwargs)


def _cfg(config: GPUConfig | None) -> GPUConfig:
    return config if config is not None else GPUConfig().scaled(num_clusters=4)


def _pct_t(pct: int) -> float:
    """Sharing percentage → threshold t; 0 % means t = 1 (no sharing)."""
    return 1.0 - pct / 100.0


# ----------------------------------------------------------------------
# Fig. 1 — motivation: occupancy and waste (no simulation needed)
# ----------------------------------------------------------------------

@_experiment
def fig1(config: GPUConfig | None = None, scale: float = 1.0,
         waves: float = 3.0) -> ExperimentResult:
    """Fig. 1(a-d): resident blocks and resource underutilisation."""
    cfg = _cfg(config)
    res = ExperimentResult(
        "fig1", "Fig 1: resident thread blocks and resource waste",
        ["app", "set", "blocks", "limiter", "reg_waste_pct",
         "smem_waste_pct"])
    for name in SET1 + SET2:
        app = APPS[name]
        occ = occupancy(app.kernel(scale), cfg)
        res.rows.append({
            "app": name,
            "set": app.set_id,
            "blocks": occ.blocks,
            "limiter": occ.limiter,
            "reg_waste_pct": round(occ.register_waste_pct, 2),
            "smem_waste_pct": round(occ.scratchpad_waste_pct, 2),
        })
    res.notes = ("Set-1 rows reproduce Fig 1(a)/(b) (blocks, register "
                 "waste); Set-2 rows reproduce Fig 1(c)/(d).")
    return res


# ----------------------------------------------------------------------
# Fig. 8 — headline results
# ----------------------------------------------------------------------

def _blocks_rows(names: tuple[str, ...], resource: SharedResource,
                 cfg: GPUConfig, scale: float) -> list[dict]:
    rows = []
    for name in names:
        app = APPS[name]
        kernel = app.kernel(scale)
        plan = plan_sharing(kernel, cfg, SharingSpec(resource, 0.1))
        rows.append({
            "app": name,
            "blocks_unshared": plan.baseline,
            "blocks_shared": plan.total,
            "paper_unshared": app.paper.get("blocks_base"),
            "paper_shared": app.paper.get("blocks_shared"),
        })
    return rows


@_experiment
def fig8a(config: GPUConfig | None = None, scale: float = 1.0,
          waves: float = 3.0) -> ExperimentResult:
    """Fig. 8(a): resident blocks, register sharing vs baseline."""
    cfg = _cfg(config)
    res = ExperimentResult(
        "fig8a", "Fig 8(a): resident thread blocks (register sharing)",
        ["app", "blocks_unshared", "blocks_shared", "paper_unshared",
         "paper_shared"],
        _blocks_rows(SET1, REG, cfg, scale))
    return res


@_experiment
def fig8b(config: GPUConfig | None = None, scale: float = 1.0,
          waves: float = 3.0) -> ExperimentResult:
    """Fig. 8(b): resident blocks, scratchpad sharing vs baseline."""
    cfg = _cfg(config)
    res = ExperimentResult(
        "fig8b", "Fig 8(b): resident thread blocks (scratchpad sharing)",
        ["app", "blocks_unshared", "blocks_shared", "paper_unshared",
         "paper_shared"],
        _blocks_rows(SET2, SPAD, cfg, scale))
    return res


def _improvement_rows(names: tuple[str, ...], base_mode: Mode,
                      new_mode: Mode, cfg: GPUConfig, scale: float,
                      waves: float, paper_key: str = "fig8_impr"
                      ) -> list[dict]:
    rows = []
    for name in names:
        app = APPS[name]
        base = run(app, base_mode, config=cfg, scale=scale, waves=waves)
        new = run(app, new_mode, config=cfg, scale=scale, waves=waves)
        rows.append({
            "app": name,
            "ipc_base": round(base.ipc, 2),
            "ipc_shared": round(new.ipc, 2),
            "improvement_pct": round(improvement(base, new), 2),
            "paper_pct": app.paper.get(paper_key),
        })
    return rows


@_experiment
def fig8c(config: GPUConfig | None = None, scale: float = 1.0,
          waves: float = 3.0) -> ExperimentResult:
    """Fig. 8(c): IPC improvement of register sharing (full stack)."""
    cfg = _cfg(config)
    res = ExperimentResult(
        "fig8c", "Fig 8(c): % IPC improvement, register sharing "
        "(Shared-OWF-Unroll-Dyn vs Unshared-LRR)",
        ["app", "ipc_base", "ipc_shared", "improvement_pct", "paper_pct"],
        _improvement_rows(SET1, unshared("lrr"),
                          shared(REG, "owf", unroll=True, dyn=True),
                          cfg, scale, waves))
    return res


@_experiment
def fig8d(config: GPUConfig | None = None, scale: float = 1.0,
          waves: float = 3.0) -> ExperimentResult:
    """Fig. 8(d): IPC improvement of scratchpad sharing (Shared-OWF)."""
    cfg = _cfg(config)
    res = ExperimentResult(
        "fig8d", "Fig 8(d): % IPC improvement, scratchpad sharing "
        "(Shared-OWF vs Unshared-LRR)",
        ["app", "ipc_base", "ipc_shared", "improvement_pct", "paper_pct"],
        _improvement_rows(SET2, unshared("lrr"), shared(SPAD, "owf"),
                          cfg, scale, waves))
    return res


# ----------------------------------------------------------------------
# Fig. 9 — optimisation ablations and cycle taxonomy
# ----------------------------------------------------------------------

@_experiment
def fig9a(config: GPUConfig | None = None, scale: float = 1.0,
          waves: float = 3.0) -> ExperimentResult:
    """Fig. 9(a): register-sharing optimisation ablation."""
    cfg = _cfg(config)
    variants = [
        shared(REG, "lrr"),                                 # NoOpt
        shared(REG, "lrr", unroll=True),                    # Unroll
        shared(REG, "lrr", unroll=True, dyn=True),          # Unroll-Dyn
        shared(REG, "owf", unroll=True, dyn=True),          # OWF-Unroll-Dyn
    ]
    res = ExperimentResult(
        "fig9a", "Fig 9(a): register sharing ablation (% IPC vs "
        "Unshared-LRR)",
        ["app"] + [m.label for m in variants])
    for name in SET1:
        app = APPS[name]
        base = run(app, unshared("lrr"), config=cfg, scale=scale,
                   waves=waves)
        row: dict = {"app": name}
        for m in variants:
            r = run(app, m, config=cfg, scale=scale, waves=waves)
            row[m.label] = round(improvement(base, r), 2)
        res.rows.append(row)
    return res


@_experiment
def fig9b(config: GPUConfig | None = None, scale: float = 1.0,
          waves: float = 3.0) -> ExperimentResult:
    """Fig. 9(b): scratchpad sharing with/without OWF."""
    cfg = _cfg(config)
    variants = [shared(SPAD, "lrr"), shared(SPAD, "owf")]
    res = ExperimentResult(
        "fig9b", "Fig 9(b): scratchpad sharing ablation (% IPC vs "
        "Unshared-LRR)",
        ["app"] + [m.label for m in variants])
    for name in SET2:
        app = APPS[name]
        base = run(app, unshared("lrr"), config=cfg, scale=scale,
                   waves=waves)
        row: dict = {"app": name}
        for m in variants:
            r = run(app, m, config=cfg, scale=scale, waves=waves)
            row[m.label] = round(improvement(base, r), 2)
        res.rows.append(row)
    return res


def _cycles_rows(names: tuple[str, ...], new_mode: Mode, cfg: GPUConfig,
                 scale: float, waves: float) -> list[dict]:
    """Fig. 9(c)/(d) cycle taxonomy, mapped onto the paper's buckets.

    The paper's *idle* cycle is "all the available warps are issued, but
    no warp is ready to execute" — warps waiting on in-flight latencies.
    In our taxonomy that is the **stall** bucket (scoreboard/memory
    waits).  The paper's *stall* is a pipeline stall — our *structural*
    hazards (MSHR exhaustion).  The columns below use the paper's names
    with that mapping; raw bucket counts are included for transparency.
    """
    rows = []
    for name in names:
        app = APPS[name]
        base = run(app, unshared("lrr"), config=cfg, scale=scale,
                   waves=waves)
        new = run(app, new_mode, config=cfg, scale=scale, waves=waves)

        def dec(b: int, n: int) -> float:
            return 100.0 * (b - n) / b if b else 0.0

        base_struct = sum(s.mshr_stalls for s in base.sm_stats)
        new_struct = sum(s.mshr_stalls for s in new.sm_stats)
        rows.append({
            "app": name,
            "idle_decrease_pct": round(dec(base.stall_cycles,
                                           new.stall_cycles), 2),
            "stall_decrease_pct": round(dec(base_struct, new_struct), 2),
            "base_latency_waits": base.stall_cycles,
            "shared_latency_waits": new.stall_cycles,
            "base_structural": base_struct,
            "shared_structural": new_struct,
        })
    return rows


@_experiment
def fig9c(config: GPUConfig | None = None, scale: float = 1.0,
          waves: float = 3.0) -> ExperimentResult:
    """Fig. 9(c): % decrease in stall/idle cycles, register sharing."""
    cfg = _cfg(config)
    res = ExperimentResult(
        "fig9c", "Fig 9(c): % decrease in stall and idle cycles "
        "(register sharing)",
        ["app", "idle_decrease_pct", "stall_decrease_pct",
         "base_latency_waits", "shared_latency_waits", "base_structural",
         "shared_structural"],
        _cycles_rows(SET1, shared(REG, "owf", unroll=True, dyn=True),
                     cfg, scale, waves))
    res.notes = ("Column mapping: the paper's 'idle' = warps waiting on "
                 "in-flight latencies (our stall bucket); the paper's "
                 "'stall' = pipeline/structural stalls (our MSHR "
                 "rejections).")
    return res


@_experiment
def fig9d(config: GPUConfig | None = None, scale: float = 1.0,
          waves: float = 3.0) -> ExperimentResult:
    """Fig. 9(d): % decrease in stall/idle cycles, scratchpad sharing."""
    cfg = _cfg(config)
    res = ExperimentResult(
        "fig9d", "Fig 9(d): % decrease in stall and idle cycles "
        "(scratchpad sharing)",
        ["app", "idle_decrease_pct", "stall_decrease_pct",
         "base_latency_waits", "shared_latency_waits", "base_structural",
         "shared_structural"],
        _cycles_rows(SET2, shared(SPAD, "owf"), cfg, scale, waves))
    res.notes = ("Column mapping as in fig9c.")
    return res


# ----------------------------------------------------------------------
# Fig. 10 — against stronger baselines (GTO, two-level)
# ----------------------------------------------------------------------

def _vs_baseline(names: tuple[str, ...], base_sched: str, new_mode: Mode,
                 cfg: GPUConfig, scale: float, waves: float) -> list[dict]:
    rows = []
    for name in names:
        app = APPS[name]
        base = run(app, unshared(base_sched), config=cfg, scale=scale,
                   waves=waves)
        new = run(app, new_mode, config=cfg, scale=scale, waves=waves)
        rows.append({
            "app": name,
            "ipc_base": round(base.ipc, 2),
            "ipc_shared": round(new.ipc, 2),
            "improvement_pct": round(improvement(base, new), 2),
        })
    return rows


@_experiment
def fig10a(config: GPUConfig | None = None, scale: float = 1.0,
           waves: float = 3.0) -> ExperimentResult:
    """Fig. 10(a): scratchpad sharing vs the GTO baseline."""
    cfg = _cfg(config)
    return ExperimentResult(
        "fig10a", "Fig 10(a): scratchpad sharing vs Unshared-GTO",
        ["app", "ipc_base", "ipc_shared", "improvement_pct"],
        _vs_baseline(SET2, "gto", shared(SPAD, "owf"), cfg, scale, waves))


@_experiment
def fig10b(config: GPUConfig | None = None, scale: float = 1.0,
           waves: float = 3.0) -> ExperimentResult:
    """Fig. 10(b): register sharing vs the GTO baseline."""
    cfg = _cfg(config)
    return ExperimentResult(
        "fig10b", "Fig 10(b): register sharing vs Unshared-GTO",
        ["app", "ipc_base", "ipc_shared", "improvement_pct"],
        _vs_baseline(SET1, "gto", shared(REG, "owf", unroll=True, dyn=True),
                     cfg, scale, waves))


@_experiment
def fig10c(config: GPUConfig | None = None, scale: float = 1.0,
           waves: float = 3.0) -> ExperimentResult:
    """Fig. 10(c): register sharing vs the two-level baseline."""
    cfg = _cfg(config)
    return ExperimentResult(
        "fig10c", "Fig 10(c): register sharing vs Unshared-2LV",
        ["app", "ipc_base", "ipc_shared", "improvement_pct"],
        _vs_baseline(SET1, "two_level",
                     shared(REG, "owf", unroll=True, dyn=True),
                     cfg, scale, waves))


@_experiment
def fig10d(config: GPUConfig | None = None, scale: float = 1.0,
           waves: float = 3.0) -> ExperimentResult:
    """Fig. 10(d): scratchpad sharing vs the two-level baseline."""
    cfg = _cfg(config)
    return ExperimentResult(
        "fig10d", "Fig 10(d): scratchpad sharing vs Unshared-2LV",
        ["app", "ipc_base", "ipc_shared", "improvement_pct"],
        _vs_baseline(SET2, "two_level", shared(SPAD, "owf"), cfg, scale,
                     waves))


# ----------------------------------------------------------------------
# Fig. 11 — sharing vs doubling the physical resource
# ----------------------------------------------------------------------

@_experiment
def fig11a(config: GPUConfig | None = None, scale: float = 1.0,
           waves: float = 3.0) -> ExperimentResult:
    """Fig. 11(a): Unshared-LRR @64K registers vs sharing @32K."""
    from dataclasses import replace
    cfg = _cfg(config)
    big = replace(cfg, registers_per_sm=cfg.registers_per_sm * 2)
    res = ExperimentResult(
        "fig11a", "Fig 11(a): IPC, 2x registers (LRR) vs register sharing",
        ["app", "ipc_2x_regs", "ipc_shared", "shared_wins"])
    for name in SET1:
        app = APPS[name]
        kernel = app.kernel(scale)
        grid = max(1, round(waves * cfg.num_sms
                            * occupancy(kernel, cfg).blocks))
        base = run(app, unshared("lrr"), config=big, scale=scale,
                   grid_blocks=grid)
        new = run(app, shared(REG, "owf", unroll=True, dyn=True),
                  config=cfg, scale=scale, grid_blocks=grid)
        res.rows.append({
            "app": name,
            "ipc_2x_regs": round(base.ipc, 2),
            "ipc_shared": round(new.ipc, 2),
            "shared_wins": new.ipc >= base.ipc,
        })
    res.notes = ("Paper: sharing at 32K registers beats the 64K-register "
                 "LRR baseline on 5 of 8 applications.")
    return res


@_experiment
def fig11b(config: GPUConfig | None = None, scale: float = 1.0,
           waves: float = 3.0) -> ExperimentResult:
    """Fig. 11(b): Unshared-LRR @32K scratchpad vs sharing @16K."""
    from dataclasses import replace
    cfg = _cfg(config)
    big = replace(cfg, scratchpad_per_sm=cfg.scratchpad_per_sm * 2)
    res = ExperimentResult(
        "fig11b", "Fig 11(b): IPC, 2x scratchpad (LRR) vs scratchpad "
        "sharing",
        ["app", "ipc_2x_smem", "ipc_shared", "shared_wins"])
    for name in SET2:
        app = APPS[name]
        kernel = app.kernel(scale)
        grid = max(1, round(waves * cfg.num_sms
                            * occupancy(kernel, cfg).blocks))
        base = run(app, unshared("lrr"), config=big, scale=scale,
                   grid_blocks=grid)
        new = run(app, shared(SPAD, "owf"), config=cfg, scale=scale,
                  grid_blocks=grid)
        res.rows.append({
            "app": name,
            "ipc_2x_smem": round(base.ipc, 2),
            "ipc_shared": round(new.ipc, 2),
            "shared_wins": new.ipc >= base.ipc,
        })
    return res


# ----------------------------------------------------------------------
# Fig. 12 — Set-3 (no extra blocks possible)
# ----------------------------------------------------------------------

@_experiment
def fig12a(config: GPUConfig | None = None, scale: float = 1.0,
           waves: float = 3.0) -> ExperimentResult:
    """Fig. 12(a): Set-3 IPC across scheduler combos, register sharing."""
    cfg = _cfg(config)
    modes = [
        unshared("lrr"),
        shared(REG, "lrr", unroll=True, dyn=True),
        unshared("gto"),
        shared(REG, "gto", unroll=True, dyn=True),
        shared(REG, "owf", unroll=True, dyn=True),
    ]
    res = ExperimentResult(
        "fig12a", "Fig 12(a): Set-3 IPC (register sharing variants)",
        ["app"] + [m.label for m in modes])
    for name in SET3:
        row: dict = {"app": name}
        for m in modes:
            r = run(APPS[name], m, config=cfg, scale=scale, waves=waves)
            row[m.label] = round(r.ipc, 2)
        res.rows.append(row)
    res.notes = ("Paper: Shared-LRR == Unshared-LRR and Shared-GTO == "
                 "Unshared-GTO exactly (no extra blocks are launched); "
                 "Shared-OWF tracks Unshared-GTO.")
    return res


@_experiment
def fig12b(config: GPUConfig | None = None, scale: float = 1.0,
           waves: float = 3.0) -> ExperimentResult:
    """Fig. 12(b): Set-3 IPC across scheduler combos, scratchpad."""
    cfg = _cfg(config)
    modes = [
        unshared("lrr"),
        shared(SPAD, "lrr"),
        unshared("gto"),
        shared(SPAD, "gto"),
        shared(SPAD, "owf"),
    ]
    res = ExperimentResult(
        "fig12b", "Fig 12(b): Set-3 IPC (scratchpad sharing variants)",
        ["app"] + [m.label for m in modes])
    for name in SET3:
        row: dict = {"app": name}
        for m in modes:
            r = run(APPS[name], m, config=cfg, scale=scale, waves=waves)
            row[m.label] = round(r.ipc, 2)
        res.rows.append(row)
    return res


# ----------------------------------------------------------------------
# Tables V-VIII — sharing fraction sweeps
# ----------------------------------------------------------------------

def _sweep(names: tuple[str, ...], resource: SharedResource,
           scheduler: str, unroll: bool, dyn: bool, cfg: GPUConfig,
           scale: float, waves: float) -> tuple[list[dict], list[dict]]:
    ipc_rows, blk_rows = [], []
    for name in names:
        app = APPS[name]
        ipc_row: dict = {"app": name}
        blk_row: dict = {"app": name}
        for pct in SHARING_PCTS:
            mode = shared(resource, scheduler, t=_pct_t(pct),
                          unroll=unroll, dyn=dyn)
            r = run(app, mode, config=cfg, scale=scale, waves=waves)
            ipc_row[f"{pct}%"] = round(r.ipc, 2)
            blk_row[f"{pct}%"] = r.blocks_total
        ipc_rows.append(ipc_row)
        blk_rows.append(blk_row)
    return ipc_rows, blk_rows


@_experiment
def table5(config: GPUConfig | None = None, scale: float = 1.0,
           waves: float = 3.0) -> ExperimentResult:
    """Table V: IPC vs register-sharing percentage."""
    cfg = _cfg(config)
    ipc_rows, _ = _sweep(SET1, REG, "owf", True, True, cfg, scale, waves)
    cols = ["app"] + [f"{p}%" for p in SHARING_PCTS]
    return ExperimentResult(
        "table5", "Table V: IPC vs % register sharing", cols, ipc_rows)


@_experiment
def table6(config: GPUConfig | None = None, scale: float = 1.0,
           waves: float = 3.0) -> ExperimentResult:
    """Table VI: resident blocks vs register-sharing percentage."""
    cfg = _cfg(config)
    res = ExperimentResult(
        "table6", "Table VI: resident blocks vs % register sharing",
        ["app"] + [f"{p}%" for p in SHARING_PCTS])
    for name in SET1:
        app = APPS[name]
        kernel = app.kernel(scale)
        row: dict = {"app": name}
        for pct in SHARING_PCTS:
            plan = plan_sharing(kernel, cfg, SharingSpec(REG, _pct_t(pct)))
            row[f"{pct}%"] = plan.total
        res.rows.append(row)
    return res


@_experiment
def table7(config: GPUConfig | None = None, scale: float = 1.0,
           waves: float = 3.0) -> ExperimentResult:
    """Table VII: IPC vs scratchpad-sharing percentage."""
    cfg = _cfg(config)
    ipc_rows, _ = _sweep(SET2, SPAD, "owf", False, False, cfg, scale,
                         waves)
    cols = ["app"] + [f"{p}%" for p in SHARING_PCTS]
    return ExperimentResult(
        "table7", "Table VII: IPC vs % scratchpad sharing", cols, ipc_rows)


@_experiment
def table8(config: GPUConfig | None = None, scale: float = 1.0,
           waves: float = 3.0) -> ExperimentResult:
    """Table VIII: resident blocks vs scratchpad-sharing percentage."""
    cfg = _cfg(config)
    res = ExperimentResult(
        "table8", "Table VIII: resident blocks vs % scratchpad sharing",
        ["app"] + [f"{p}%" for p in SHARING_PCTS])
    for name in SET2:
        app = APPS[name]
        kernel = app.kernel(scale)
        row: dict = {"app": name}
        for pct in SHARING_PCTS:
            plan = plan_sharing(kernel, cfg, SharingSpec(SPAD, _pct_t(pct)))
            row[f"{pct}%"] = plan.total
        res.rows.append(row)
    return res


# ----------------------------------------------------------------------
# Sec. V — hardware overhead
# ----------------------------------------------------------------------

@_experiment
def hw_overhead(config: GPUConfig | None = None, scale: float = 1.0,
                waves: float = 3.0) -> ExperimentResult:
    """Sec. V storage formulas evaluated on the Table I machine."""
    cfg = config if config is not None else GPUConfig()
    s = overhead_summary(cfg)
    res = ExperimentResult(
        "hw_overhead", "Sec. V: storage overhead (bits)",
        ["quantity", "value"])
    for k, v in s.items():
        res.rows.append({"quantity": k, "value": v})
    res.notes = ("Register sharing additionally needs one comparator per "
                 "scheduler for the Fig. 3/4 steps (b) and (c).")
    return res
