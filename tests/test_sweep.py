"""Sweep utility and CSV export."""

import pytest

from repro.config import GPUConfig
from repro.core.sharing import SharedResource
from repro.harness.runner import shared, unshared
from repro.harness.sweep import CSV_COLUMNS, Sweep, result_row, rows_to_csv

FAST = dict(config=GPUConfig().scaled(num_clusters=1), scale=0.2, waves=1.0)


def small_sweep():
    s = Sweep(**FAST)
    s.add_apps(["gaussian"])
    s.add_modes([unshared("lrr"), unshared("gto")])
    return s


class TestSweep:
    def test_size(self):
        s = small_sweep()
        assert s.size == 2

    def test_run_produces_rows(self):
        s = small_sweep()
        rows = s.run()
        assert len(rows) == 2
        assert {r["mode"] for r in rows} == {"Unshared-LRR", "Unshared-GTO"}
        for r in rows:
            for col in CSV_COLUMNS:
                assert col in r

    def test_empty_sweep_rejected(self):
        with pytest.raises(ValueError):
            Sweep(**FAST).run()

    def test_csv_before_run_rejected(self):
        with pytest.raises(ValueError):
            small_sweep().to_csv()

    def test_csv_shape(self):
        s = small_sweep()
        s.run()
        lines = s.to_csv().strip().splitlines()
        assert lines[0] == ",".join(CSV_COLUMNS)
        assert len(lines) == 3
        assert all(len(l.split(",")) == len(CSV_COLUMNS) for l in lines)

    def test_best_mode_per_app(self):
        s = small_sweep()
        s.run()
        best = s.best_mode_per_app()
        assert set(best) == {"gaussian"}
        assert best["gaussian"] in ("Unshared-LRR", "Unshared-GTO")

    def test_sharing_columns_populated(self):
        s = Sweep(**FAST)
        s.add_apps(["CONV1"])
        s.add_modes([shared(SharedResource.SCRATCHPAD, "owf")])
        (row,) = s.run()
        assert row["blocks_total"] == 8
        assert row["blocks_baseline"] == 6

    def test_app_objects_accepted(self):
        from repro.workloads.apps import APPS
        s = Sweep(**FAST)
        s.add_apps([APPS["gaussian"]])
        s.add_modes([unshared("lrr")])
        assert s.size == 1


class TestRowsToCsv:
    def test_missing_keys_blank(self):
        text = rows_to_csv([{"app": "x", "ipc": 1.0}])
        line = text.strip().splitlines()[1]
        assert line.startswith("x,")
        assert line.split(",")[6] == ""  # cycles missing -> blank
