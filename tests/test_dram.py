"""FR-FCFS DRAM controller timing and scheduling."""


from repro.config import GPUConfig
from repro.events import EventQueue
from repro.mem.dram import DramController


def setup(**cfg_kw):
    cfg = GPUConfig(**cfg_kw)
    ev = EventQueue()
    return cfg, ev, DramController(cfg, ev)


def drain(ev, horizon=1_000_000):
    while len(ev):
        nxt = ev.next_cycle()
        assert nxt is not None and nxt <= horizon
        ev.run_due(nxt)


class TestMapping:
    def test_locate_consistency(self):
        _, _, d = setup()
        bank, row = d.locate(0)
        assert 0 <= bank < len(d.banks)
        assert row >= 0

    def test_consecutive_lines_same_row_until_boundary(self):
        cfg, _, d = setup()
        # lines within one row (same partition stride) share (bank, row)
        stride = cfg.line_size * cfg.num_mem_partitions
        b0, r0 = d.locate(0)
        b1, r1 = d.locate(stride)
        assert (b0, r0) == (b1, r1)


class TestTiming:
    def test_row_hit_faster_than_conflict(self):
        _, ev, d = setup()
        done = []
        stride = 128 * 6  # same partition, consecutive columns
        d.access(0, 0, is_store=False, on_complete=lambda c: done.append(c))
        drain(ev)
        first = done[-1]
        # row hit: same row
        d.access(stride, first, is_store=False,
                 on_complete=lambda c: done.append(c))
        drain(ev)
        hit_time = done[-1] - first
        # row conflict: far row, same bank
        far = stride * 128 * 5  # same bank (16 lines/row x 8 banks), distant row
        bank0 = d.locate(0)[0]
        assert d.locate(far)[0] == bank0
        t0 = done[-1]
        d.access(far, t0, is_store=False,
                 on_complete=lambda c: done.append(c))
        drain(ev)
        conflict_time = done[-1] - t0
        assert hit_time < conflict_time

    def test_stats_classification(self):
        _, ev, d = setup()
        stride = 128 * 6
        for i, t in [(0, 0), (1, 500), (2, 1000)]:
            d.access(i * stride, t, is_store=False, on_complete=lambda c: None)
            drain(ev)
        assert d.stats.requests == 3
        assert d.stats.row_opens == 1
        assert d.stats.row_hits == 2

    def test_store_counted(self):
        _, ev, d = setup()
        d.access(0, 0, is_store=True, on_complete=lambda c: None)
        drain(ev)
        assert d.stats.stores == 1

    def test_every_request_completes_exactly_once(self):
        _, ev, d = setup()
        done = []
        for i in range(50):
            d.access(i * 128 * 6 * 17, i, is_store=(i % 3 == 0),
                     on_complete=lambda c, i=i: done.append(i))
        drain(ev)
        assert sorted(done) == list(range(50))

    def test_completions_monotone_per_bank(self):
        _, ev, d = setup()
        order = []
        stride = 128 * 6
        for i in range(10):
            d.access(i * stride, 0, is_store=False,
                     on_complete=lambda c, i=i: order.append((c, i)))
        drain(ev)
        times = [c for c, _ in sorted(order)]
        assert times == sorted(times)


class TestFRFCFS:
    def test_row_hits_served_before_older_miss(self):
        cfg, ev, d = setup()
        stride = 128 * 6
        far = stride * 128 * 5  # same bank (16 lines/row x 8 banks), distant row
        done = []
        # first request opens row 0 and occupies the bank
        d.access(0, 0, is_store=False, on_complete=lambda c: done.append("warm"))
        # while busy, enqueue: an older row-miss then a younger row-hit
        d.access(far, 1, is_store=False, on_complete=lambda c: done.append("miss"))
        d.access(stride, 2, is_store=False, on_complete=lambda c: done.append("hit"))
        drain(ev)
        assert done == ["warm", "hit", "miss"]

    def test_starvation_cap_forces_oldest(self):
        # A row-miss request buried under an endless stream of row hits
        # must still be serviced once its age exceeds STARVE_CAP.
        cfg, ev, d = setup()
        stride = 128 * 6
        far = stride * 128 * 5  # same bank (16 lines/row x 8 banks), distant row
        done = []
        d.access(0, 0, is_store=False, on_complete=lambda c: done.append("warm"))
        d.access(far, 1, is_store=False, on_complete=lambda c: done.append("old"))
        for i in range(300):
            d.access((i % 16) * stride, 2 + i, is_store=False,
                     on_complete=lambda c, i=i: done.append(f"hit{i}"))
        drain(ev)
        assert "old" in done
        # served well before the row-hit stream drains completely
        assert done.index("old") < done.index("hit299")

    def test_queued_counter(self):
        _, ev, d = setup()
        d.access(0, 0, is_store=False, on_complete=lambda c: None)
        d.access(128 * 6, 0, is_store=False, on_complete=lambda c: None)
        assert d.queued == 1  # one in service, one waiting
        drain(ev)
        assert d.queued == 0
