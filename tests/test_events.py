"""Event queue determinism and ordering."""

import pytest

from repro.events import EventQueue


class TestOrdering:
    def test_fires_in_cycle_order(self):
        ev = EventQueue()
        out = []
        ev.push(5, lambda c: out.append("a"))
        ev.push(2, lambda c: out.append("b"))
        ev.push(9, lambda c: out.append("c"))
        ev.run_due(10)
        assert out == ["b", "a", "c"]

    def test_same_cycle_insertion_order(self):
        ev = EventQueue()
        out = []
        for tag in "abcde":
            ev.push(3, lambda c, t=tag: out.append(t))
        ev.run_due(3)
        assert out == list("abcde")

    def test_run_due_respects_boundary(self):
        ev = EventQueue()
        out = []
        ev.push(4, lambda c: out.append(4))
        ev.push(5, lambda c: out.append(5))
        assert ev.run_due(4) == 1
        assert out == [4]
        assert ev.next_cycle() == 5

    def test_cascading_events_same_cycle(self):
        ev = EventQueue()
        out = []

        def first(c):
            out.append("first")
            ev.push(c, lambda c2: out.append("second"))

        ev.push(1, first)
        ev.run_due(1)
        assert out == ["first", "second"]

    def test_cascading_event_in_future(self):
        ev = EventQueue()
        out = []
        ev.push(1, lambda c: ev.push(c + 10, lambda c2: out.append(c2)))
        ev.run_due(1)
        assert out == []
        ev.run_due(11)
        assert out == [11]

    def test_next_cycle_empty(self):
        assert EventQueue().next_cycle() is None

    def test_len(self):
        ev = EventQueue()
        assert len(ev) == 0
        ev.push(1, lambda c: None)
        assert len(ev) == 1
        ev.run_due(1)
        assert len(ev) == 0

    def test_negative_cycle_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1, lambda c: None)

    def test_callback_receives_firing_cycle(self):
        # A late-fired event sees the current simulation time, not its
        # original schedule - "now" is what timing code needs.
        ev = EventQueue()
        got = []
        ev.push(7, got.append)
        ev.run_due(100)
        assert got == [100]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        ev = EventQueue()
        out = []
        h = ev.push(3, lambda c: out.append("dead"))
        ev.push(3, lambda c: out.append("live"))
        assert ev.cancel(h) is True
        ev.run_due(5)
        assert out == ["live"]

    def test_cancel_after_fire_returns_false(self):
        ev = EventQueue()
        h = ev.push(1, lambda c: None)
        ev.run_due(1)
        assert ev.cancel(h) is False

    def test_double_cancel_returns_false(self):
        ev = EventQueue()
        h = ev.push(1, lambda c: None)
        assert ev.cancel(h) is True
        assert ev.cancel(h) is False

    def test_len_accounts_for_cancellations(self):
        ev = EventQueue()
        handles = [ev.push(i, lambda c: None) for i in range(5)]
        assert len(ev) == 5
        ev.cancel(handles[1])
        ev.cancel(handles[3])
        assert len(ev) == 3
        ev.run_due(10)
        assert len(ev) == 0

    def test_next_cycle_skips_cancelled_top(self):
        ev = EventQueue()
        h = ev.push(2, lambda c: None)
        ev.push(7, lambda c: None)
        ev.cancel(h)
        assert ev.next_cycle() == 7

    def test_next_cycle_all_cancelled(self):
        ev = EventQueue()
        h = ev.push(2, lambda c: None)
        ev.cancel(h)
        assert ev.next_cycle() is None
        assert len(ev) == 0

    def test_cancellation_preserves_same_cycle_order(self):
        # Removing one of several same-cycle events must not disturb the
        # insertion order of the survivors.
        ev = EventQueue()
        out = []
        handles = {}
        for tag in "abcde":
            handles[tag] = ev.push(4, lambda c, t=tag: out.append(t))
        ev.cancel(handles["b"])
        ev.cancel(handles["d"])
        ev.run_due(4)
        assert out == ["a", "c", "e"]

    def test_run_due_count_excludes_cancelled(self):
        ev = EventQueue()
        h = ev.push(1, lambda c: None)
        ev.push(1, lambda c: None)
        ev.cancel(h)
        assert ev.run_due(1) == 1


class _FakeSM:
    """Duck-typed SMCore stand-in for wake-record dispatch."""

    def __init__(self):
        self.now = -1
        self.woken = []

    def _set_state(self, warp, state):
        warp.state = state
        warp.wake_token += 1
        self.woken.append(warp)


class _FakeWarp:
    def __init__(self):
        self.state = "blocked"
        self.wake_token = 0


class TestWakeRecords:
    def test_valid_wake_makes_warp_ready(self):
        from repro.sim.warp import WarpState
        ev = EventQueue()
        sm, warp = _FakeSM(), _FakeWarp()
        ev.push_wake(9, sm, warp)
        ev.run_due(9)
        assert warp.state is WarpState.READY
        assert sm.now == 9
        assert sm.woken == [warp]

    def test_stale_token_drops_wake(self):
        ev = EventQueue()
        sm, warp = _FakeSM(), _FakeWarp()
        ev.push_wake(9, sm, warp)
        warp.wake_token += 1  # state changed since the wake was pushed
        ev.run_due(9)
        assert warp.state == "blocked"
        assert sm.woken == []

    def test_cancelled_wake_does_not_fire(self):
        ev = EventQueue()
        sm, warp = _FakeSM(), _FakeWarp()
        h = ev.push_wake(9, sm, warp)
        assert ev.cancel(h) is True
        ev.run_due(9)
        assert sm.woken == []

    def test_wakes_and_callbacks_share_one_order(self):
        # Wake records and callback events at the same cycle must fire in
        # insertion order: the fast core relies on heap order matching
        # the reference core's closure-based events exactly.
        from repro.sim.warp import WarpState
        ev = EventQueue()
        sm, warp = _FakeSM(), _FakeWarp()
        out = []
        ev.push(5, lambda c: out.append("before"))
        ev.push_wake(5, sm, warp)
        ev.push(5, lambda c: out.append("after"))

        orig = sm._set_state

        def record(w, s):
            out.append("wake")
            orig(w, s)

        sm._set_state = record
        ev.run_due(5)
        assert out == ["before", "wake", "after"]
        assert warp.state is WarpState.READY
