"""Simulation statistics.

The cycle taxonomy follows the paper's Fig. 9 definitions:

* **active** — the SM issued at least one instruction this cycle;
* **stall**  — nothing issued and some resident warp is blocked on a
  *pipeline or memory dependency* (scoreboard hazard, outstanding load,
  or a structural hazard such as a full MSHR array) — "pipeline stall";
* **idle**   — nothing issued and no warp is pipeline-blocked: warps are
  only waiting at barriers / for shared-resource locks / for the Dyn
  window, or have all finished ("all available warps issued, none ready");
* **empty**  — the SM has no resident warps at all (tail of the grid).
  Reported separately but grouped with idle in paper-style summaries.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

__all__ = ["SMStats", "RunResult"]


@dataclass
class SMStats:
    """Per-SM counters."""

    sm_id: int = 0
    instructions: int = 0
    mem_instructions: int = 0
    active_cycles: int = 0
    stall_cycles: int = 0
    idle_cycles: int = 0
    empty_cycles: int = 0
    # issue counts by warp class (paper: unshared / owner / non-owner)
    issued_unshared: int = 0
    issued_owner: int = 0
    issued_nonowner: int = 0
    # sharing machinery
    lock_acquires: int = 0
    lock_waits: int = 0
    dyn_refusals: int = 0
    #: Shared pools handed over before warp exit (live-range extension).
    early_releases: int = 0
    # structural
    mshr_stalls: int = 0
    barriers: int = 0
    blocks_launched: int = 0
    blocks_completed: int = 0
    max_resident_blocks: int = 0

    @property
    def total_cycles(self) -> int:
        """Sum of the four cycle classes (== GPU cycles once finished)."""
        return (self.active_cycles + self.stall_cycles + self.idle_cycles
                + self.empty_cycles)

    @property
    def idle_like_cycles(self) -> int:
        """Idle + empty: the paper's 'idle cycles' bucket."""
        return self.idle_cycles + self.empty_cycles

    def to_dict(self) -> dict:
        """Flat JSON-serializable form (all counters)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "SMStats":
        """Inverse of :meth:`to_dict` (exact round trip)."""
        return cls(**d)


@dataclass
class RunResult:
    """Outcome of one kernel simulation."""

    kernel: str
    mode: str
    cycles: int
    instructions: int
    sm_stats: list[SMStats] = field(default_factory=list)
    mem: dict[str, int | float] = field(default_factory=dict)
    #: Blocks/SM the dispatcher planned: (baseline D, total with sharing).
    blocks_baseline: int = 0
    blocks_total: int = 0
    #: Observability snapshot (``MetricsRegistry.to_dict()``) when the
    #: run was made with ``--metrics``; None otherwise.  Deliberately
    #: absent from :meth:`to_dict` when None so results of unobserved
    #: runs — including the pinned golden_core.json cells — are
    #: byte-identical to those produced before this field existed.
    metrics: dict | None = None

    #: Success marker, mirroring ``RunFailure.ok = False`` — lets batch
    #: consumers branch on ``r.ok`` without isinstance checks.
    ok = True

    @property
    def ipc(self) -> float:
        """GPU-wide instructions per cycle (the paper's headline metric)."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def stall_cycles(self) -> int:
        """Total pipeline-stall cycles across SMs."""
        return sum(s.stall_cycles for s in self.sm_stats)

    @property
    def idle_cycles(self) -> int:
        """Total idle(+empty) cycles across SMs (paper's idle bucket)."""
        return sum(s.idle_like_cycles for s in self.sm_stats)

    @property
    def max_resident_blocks(self) -> int:
        """Peak blocks resident on any SM (paper Fig. 8a/8b metric)."""
        return max((s.max_resident_blocks for s in self.sm_stats), default=0)

    def to_dict(self) -> dict:
        """JSON-serializable form; :meth:`from_dict` restores it exactly
        (ints stay ints, floats stay floats — the engine's disk cache
        relies on the round trip being bit-exact)."""
        d = {
            "kernel": self.kernel,
            "mode": self.mode,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "sm_stats": [s.to_dict() for s in self.sm_stats],
            "mem": dict(self.mem),
            "blocks_baseline": self.blocks_baseline,
            "blocks_total": self.blocks_total,
        }
        if self.metrics is not None:
            d["metrics"] = self.metrics
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "RunResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            kernel=d["kernel"], mode=d["mode"], cycles=d["cycles"],
            instructions=d["instructions"],
            sm_stats=[SMStats.from_dict(s) for s in d["sm_stats"]],
            mem=dict(d["mem"]), blocks_baseline=d["blocks_baseline"],
            blocks_total=d["blocks_total"], metrics=d.get("metrics"))

    def summary(self) -> dict[str, int | float]:
        """Flat dict of the headline numbers (for reports/tests).

        Values keep their native types: integer ``mem`` counters (e.g.
        ``dram_requests``) stay ints, matching :meth:`to_dict` and the
        sweep CSV — they were previously coerced to float here, making
        the three disagree.
        """
        out: dict[str, int | float] = {
            "ipc": self.ipc,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "stall_cycles": self.stall_cycles,
            "idle_cycles": self.idle_cycles,
            "max_resident_blocks": self.max_resident_blocks,
        }
        out.update(self.mem)
        return out
