"""Golden-file regression layer for the deterministic experiments.

The sim-free experiments (occupancy, Eq. 4 block counts, overhead bits)
are exact reproductions of paper tables and must never drift.  Their
canonical outputs are committed in ``golden_data.json``;
:func:`check_goldens` re-runs them and reports any mismatch.  Regenerate
with ``python -m repro.harness.golden`` after an *intentional* change.

A second golden layer pins the *simulator core* itself:
``golden_core.json`` holds full :class:`RunResult` fingerprints for a
small app × mode matrix (:func:`core_matrix`), captured from the
original scan-based core before the event-driven fast core existed.
Both cores must reproduce every fingerprint bit-for-bit
(``tests/test_core_equivalence.py``), so the two implementations cannot
drift — jointly or individually — without the suite failing.
Regenerating this file is almost never correct: it amounts to declaring
a new simulation semantics.  If a model change intentionally alters
results, regenerate with ``python -m repro.harness.golden --core`` and
say so loudly in the commit message.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Iterator

from repro.config import GPUConfig
from repro.core.sharing import SharedResource
from repro.harness.experiments import run_experiment
from repro.harness.runner import Mode, run, shared, unshared
from repro.workloads.apps import APPS

__all__ = ["GOLDEN_EXPERIMENTS", "collect", "check_goldens", "golden_path",
           "CORE_APPS", "core_matrix", "core_config", "collect_core",
           "check_core_goldens", "golden_core_path"]

#: Deterministic, simulation-free experiments safe to pin exactly.
GOLDEN_EXPERIMENTS = ("fig1", "fig8a", "fig8b", "table6", "table8",
                      "hw_overhead")

# ---------------------------------------------------------------------------
# simulator-core fingerprints
# ---------------------------------------------------------------------------

#: Apps in the core matrix and the kernel scale each runs at (chosen so
#: the matrix exercises register locks, Dyn refusals, MSHR-retry storms
#: (BFS) and scratchpad locks while staying a few-second job).
CORE_APPS: dict[str, float] = {
    "MUM": 0.25,
    "hotspot": 0.25,
    "BFS": 0.1,
    "SRAD1": 0.25,
    "CONV1": 0.25,
}
_REG_APPS = ("MUM", "hotspot", "BFS")
_SPAD_APPS = ("SRAD1", "CONV1")
_SCHEDS = ("lrr", "gto", "two_level", "owf")


def core_config() -> GPUConfig:
    """Machine used for the core fingerprints (2 clusters keeps it fast)."""
    return GPUConfig().scaled(num_clusters=2)


def core_matrix() -> Iterator[tuple[str, Mode]]:
    """(app, mode) pairs covered by ``golden_core.json``."""
    for app in CORE_APPS:
        for s in _SCHEDS:
            yield app, unshared(s)
    for app in _REG_APPS:
        for s in _SCHEDS:
            yield app, shared(SharedResource.REGISTERS, s)
            yield app, shared(SharedResource.REGISTERS, s, dyn=True)
    for app in _SPAD_APPS:
        for s in _SCHEDS:
            yield app, shared(SharedResource.SCRATCHPAD, s)
    for app in ("MUM", "hotspot"):
        yield app, shared(SharedResource.REGISTERS, "owf",
                          unroll=True, dyn=True)
        yield app, shared(SharedResource.REGISTERS, "owf",
                          unroll=True, early_release=True)


def core_key(app: str, mode: Mode) -> str:
    """Golden-file key of one matrix cell."""
    return f"{app}|{mode.label}"


def collect_core(core: str = "fast", *, sanitize: bool = False) -> dict:
    """Run the full core matrix on ``core``; key → RunResult dict."""
    cfg = core_config()
    out: dict[str, dict] = {}
    for app, mode in core_matrix():
        res = run(APPS[app], mode, config=cfg, scale=CORE_APPS[app],
                  waves=1.0, sanitize=sanitize, core=core)
        out[core_key(app, mode)] = res.to_dict()
    return out


def check_core_goldens(core: str = "fast") -> list[str]:
    """Run the matrix on ``core`` and diff against ``golden_core.json``."""
    path = golden_core_path()
    if not path.is_file():
        return [f"core golden file missing: {path}"]
    want = json.loads(path.read_text())
    got = collect_core(core)
    problems: list[str] = []
    for key, w in want.items():
        g = got.get(key)
        if g is None:
            problems.append(f"{key}: not produced by core matrix")
        elif g != w:
            problems.append(f"{key}: core {core!r} diverges from golden")
    for key in got:
        if key not in want:
            problems.append(f"{key}: missing from golden file")
    return problems


def golden_path() -> Path:
    """Location of the committed golden data."""
    return Path(__file__).with_name("golden_data.json")


def golden_core_path() -> Path:
    """Location of the committed simulator-core fingerprints."""
    return Path(__file__).with_name("golden_core.json")


def collect() -> dict:
    """Run every golden experiment on the Table I machine."""
    cfg = GPUConfig()
    out: dict[str, list[dict]] = {}
    for exp_id in GOLDEN_EXPERIMENTS:
        res = run_experiment(exp_id, config=cfg)
        out[exp_id] = res.rows
    return out


def check_goldens() -> list[str]:
    """Compare current outputs against the committed goldens.

    Returns a list of human-readable mismatch descriptions (empty =
    everything matches).
    """
    path = golden_path()
    if not path.is_file():
        return [f"golden file missing: {path}"]
    want = json.loads(path.read_text())
    got = collect()
    problems: list[str] = []
    for exp_id in GOLDEN_EXPERIMENTS:
        if exp_id not in want:
            problems.append(f"{exp_id}: missing from golden file")
            continue
        if got[exp_id] != want[exp_id]:
            for i, (g, w) in enumerate(zip(got[exp_id], want[exp_id])):
                if g != w:
                    problems.append(f"{exp_id} row {i}: {w!r} -> {g!r}")
            if len(got[exp_id]) != len(want[exp_id]):
                problems.append(f"{exp_id}: row count "
                                f"{len(want[exp_id])} -> {len(got[exp_id])}")
    return problems


def regenerate() -> Path:
    """Rewrite the golden file from the current implementation."""
    path = golden_path()
    path.write_text(json.dumps(collect(), indent=1, sort_keys=True) + "\n")
    return path


def regenerate_core() -> Path:
    """Rewrite the core fingerprints (see module docstring: rarely right).

    Captured from the *reference* core so the oracle, not the optimised
    path, defines the semantics being pinned.
    """
    path = golden_core_path()
    path.write_text(
        json.dumps(collect_core("reference"), indent=1, sort_keys=True)
        + "\n")
    return path


if __name__ == "__main__":  # pragma: no cover
    if "--core" in sys.argv[1:]:
        print(f"wrote {regenerate_core()}")
    else:
        print(f"wrote {regenerate()}")
