"""Loose Round Robin — the paper's baseline scheduler (Table I)."""

from __future__ import annotations

from typing import Callable, Optional, TYPE_CHECKING

from repro.sched.base import SCHEDULERS, WarpScheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.warp import WarpContext

__all__ = ["LRRScheduler"]


class LRRScheduler(WarpScheduler):
    """Rotate through ready warps, resuming after the last issued id."""

    name = "lrr"

    def __init__(self, sched_id: int, **kw: object) -> None:
        super().__init__(sched_id, **kw)
        self._after = -1

    def pick(self, cycle: int,
             issuable: Optional[Callable[["WarpContext"], bool]] = None
             ) -> Optional["WarpContext"]:
        if issuable is None:
            return self.ready.first_after(self._after)
        for w in self.ready.iter_round_robin(self._after):
            if issuable(w):
                return w
        return None

    def on_issued(self, warp: "WarpContext") -> None:
        super().on_issued(warp)
        self._after = warp.dynamic_id


SCHEDULERS["lrr"] = LRRScheduler
