"""Fig. 1: resident thread blocks and resource underutilisation."""

from conftest import run_once

from repro.harness.experiments import run_experiment
from repro.harness.report import render_experiment


def test_fig1_occupancy_and_waste(benchmark, bench_config, bench_params,
                                  capsys):
    res = run_once(benchmark, run_experiment, exp_id="fig1",
                   config=bench_config, **bench_params)
    with capsys.disabled():
        print("\n" + render_experiment(res))
    rows = {r["app"]: r for r in res.rows}
    # Paper Sec. I-A worked examples.
    assert rows["hotspot"]["blocks"] == 3
    assert abs(rows["hotspot"]["reg_waste_pct"] - 15.62) < 0.01
    assert rows["lavaMD"]["blocks"] == 2
    assert abs(rows["lavaMD"]["smem_waste_pct"] - 12.11) < 0.01
