"""L1 → interconnect → L2 → DRAM plumbing.

The SM's LD/ST unit calls :meth:`MemoryHierarchy.try_load` /
:meth:`MemoryHierarchy.store` with the coalesced line addresses of one
warp memory instruction.  Loads complete via a countdown token — the
warp's destination register becomes ready when the *last* transaction
returns, matching how a warp's scoreboard works.  Stores are
write-through/no-allocate at L1 and write-allocate at L2, and never block
the warp (no destination register).
"""

from __future__ import annotations

from typing import Callable

from repro.config import GPUConfig
from repro.events import EventQueue
from repro.mem.cache import Cache
from repro.mem.dram import DramController
from repro.obs.sink import NULL_SINK, ObsSink

__all__ = ["MemoryHierarchy"]

#: Cycles before a load rejected by a full L2 MSHR array is retried.
_L2_RETRY = 8


class _LoadToken:
    """Counts outstanding transactions of one warp load."""

    __slots__ = ("remaining", "on_done")

    def __init__(self, remaining: int,
                 on_done: Callable[[int], None]) -> None:
        self.remaining = remaining
        self.on_done = on_done

    def line_done(self, cycle: int) -> None:
        self.remaining -= 1
        if self.remaining == 0:
            self.on_done(cycle)


class MemoryHierarchy:
    """Per-SM L1s, partitioned shared L2, per-partition DRAM."""

    def __init__(self, config: GPUConfig, events: EventQueue,
                 num_sms: int, obs: ObsSink = NULL_SINK) -> None:
        self.cfg = config
        self.lat = config.latency
        self.events = events
        self.obs = obs
        self._obs_on = obs.enabled
        self.l1 = [
            Cache(size=config.l1_size, assoc=config.l1_assoc,
                  line_size=config.line_size, mshrs=config.l1_mshrs,
                  name=f"L1[{i}]")
            for i in range(num_sms)
        ]
        n_part = config.num_mem_partitions
        self.l2 = [
            Cache(size=config.l2_size // n_part, assoc=config.l2_assoc,
                  line_size=config.line_size, mshrs=config.l2_mshrs,
                  name=f"L2[{p}]")
            for p in range(n_part)
        ]
        self.dram = [DramController(config, events) for _ in range(n_part)]

    # ------------------------------------------------------------------
    def _partition(self, line_addr: int) -> int:
        return (line_addr // self.cfg.line_size) % self.cfg.num_mem_partitions

    # ------------------------------------------------------------------
    # load path
    # ------------------------------------------------------------------
    def try_load(self, sm_id: int, lines: tuple[int, ...], now: int,
                 on_done: Callable[[int], None], *,
                 assume_unique: bool = False) -> bool:
        """Issue a warp load for ``lines``; False on L1 MSHR exhaustion.

        All-or-nothing: either every transaction is accepted (hits respond
        after the L1 hit latency, misses propagate down) or the access has
        no side effects (beyond the reject counter) and the warp must
        retry (structural stall).  ``assume_unique=True`` promises that
        ``lines`` carries no duplicates (the SM's pending-access cache
        stores deduplicated tuples), skipping the dedup pass.
        """
        l1 = self.l1[sm_id]
        uniq = lines if assume_unique else tuple(dict.fromkeys(lines))
        mshr = l1.mshr
        present = l1._present
        new = 0
        for ln in uniq:
            if ln not in present and ln not in mshr:
                new += 1
        if new > l1.mshr_free:
            l1.stats.mshr_rejects += 1
            if self._obs_on:
                self.obs.mshr_reject(sm_id, now)
            return False
        if self._obs_on:
            self.obs.mshr_sample(sm_id, len(mshr) + new, l1.n_mshrs, now)
            on_done = self.obs.mem_request(sm_id, len(uniq), now, on_done)
        token = _LoadToken(len(uniq), on_done)
        for ln in uniq:
            res = l1.lookup(ln, token)
            if res == "hit":
                self.events.push(now + self.lat.l1_hit, token.line_done)
            elif res == "miss":
                self._send_to_l2(sm_id, ln, now)
            else:  # merge: token fires when the in-flight fill returns
                assert res == "merge"
        return True

    def _send_to_l2(self, sm_id: int, line: int, now: int) -> None:
        arrive = now + self.lat.interconnect

        def _at_l2(cycle: int) -> None:
            self._l2_load(sm_id, line, cycle)

        self.events.push(arrive, _at_l2)

    def _l2_load(self, sm_id: int, line: int, now: int) -> None:
        p = self._partition(line)
        l2 = self.l2[p]

        def _deliver(cycle: int) -> None:
            self.events.push(cycle + self.lat.interconnect,
                             lambda c: self._l1_fill(sm_id, line, c))

        res = l2.lookup(line, _deliver)
        if res == "hit":
            self.events.push(now + self.lat.l2_hit, _deliver)
        elif res == "miss":
            def _from_dram(cycle: int) -> None:
                for waiter in l2.fill(line):
                    waiter(cycle)
            self.dram[p].access(
                line, now + self.lat.l2_hit + self.lat.dram_fixed,
                is_store=False, on_complete=_from_dram)
        elif res == "reject":
            self.events.push(now + _L2_RETRY,
                             lambda c: self._l2_load(sm_id, line, c))
        # merge: nothing to do, the pending fill will call _deliver

    def _l1_fill(self, sm_id: int, line: int, cycle: int) -> None:
        for token in self.l1[sm_id].fill(line):
            token.line_done(cycle)

    # ------------------------------------------------------------------
    # store path
    # ------------------------------------------------------------------
    def store(self, sm_id: int, lines: tuple[int, ...], now: int) -> None:
        """Issue a warp store (write-through, never blocks the warp)."""
        l1 = self.l1[sm_id]
        for ln in dict.fromkeys(lines):
            l1.lookup(ln, None, allocate=False)
            self.events.push(now + self.lat.interconnect,
                             lambda c, ln=ln: self._l2_store(ln, c))

    def _l2_store(self, line: int, now: int) -> None:
        p = self._partition(line)
        l2 = self.l2[p]
        res = l2.lookup(line, None, allocate=False)
        if res == "bypass":
            # Write-allocate at L2: install the line when DRAM acks.
            self.dram[p].access(
                line, now + self.lat.dram_fixed, is_store=True,
                on_complete=lambda c: l2.fill(line))

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    def totals(self) -> dict[str, int | float]:
        """Aggregate cache/DRAM counters for reporting."""
        l1_acc = sum(c.stats.accesses for c in self.l1)
        l1_miss = sum(c.stats.misses for c in self.l1)
        l2_acc = sum(c.stats.accesses for c in self.l2)
        l2_miss = sum(c.stats.misses for c in self.l2)
        dreq = sum(d.stats.requests for d in self.dram)
        dhit = sum(d.stats.row_hits for d in self.dram)
        return {
            "l1_accesses": l1_acc,
            "l1_misses": l1_miss,
            "l1_miss_rate": l1_miss / l1_acc if l1_acc else 0.0,
            "l2_accesses": l2_acc,
            "l2_misses": l2_miss,
            "l2_miss_rate": l2_miss / l2_acc if l2_acc else 0.0,
            "dram_requests": dreq,
            "dram_row_hit_rate": dhit / dreq if dreq else 0.0,
        }

    @property
    def in_flight(self) -> bool:
        """True while any load/store is still outstanding anywhere."""
        return (any(c.mshr for c in self.l1) or any(c.mshr for c in self.l2)
                or any(d.queued or any(b.busy for b in d.banks)
                       for d in self.dram))
