"""Deterministic event queue for the cycle simulator.

A single global heap drives everything that is not per-cycle scheduler
work: memory responses, DRAM bank wakeups, lock releases, monitoring
windows.  Events at the same cycle fire in insertion order (a sequence
number breaks ties), so simulations are bit-reproducible.
"""

from __future__ import annotations

import heapq
from typing import Callable

__all__ = ["EventQueue"]


class EventQueue:
    """Min-heap of ``(cycle, seq, callback)`` events."""

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Callable[[int], None]]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, cycle: int, fn: Callable[[int], None]) -> None:
        """Schedule ``fn`` to run at ``cycle``.

        The callback receives the cycle at which it actually fires (the
        current simulation time), which equals the scheduled cycle in
        normal stepping and may be later after a bulk skip.
        """
        if cycle < 0:
            raise ValueError("cycle must be non-negative")
        heapq.heappush(self._heap, (cycle, self._seq, fn))
        self._seq += 1

    def next_cycle(self) -> int | None:
        """Cycle of the earliest pending event, or None if empty."""
        return self._heap[0][0] if self._heap else None

    def run_due(self, cycle: int) -> int:
        """Fire every event scheduled at or before ``cycle``.

        Events may push new events; newly pushed events due at or before
        ``cycle`` also fire this call.  Returns the number fired.
        """
        n = 0
        while self._heap and self._heap[0][0] <= cycle:
            _, _, fn = heapq.heappop(self._heap)
            fn(cycle)
            n += 1
        return n
