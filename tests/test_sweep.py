"""Sweep utility and CSV export."""

import pytest

from repro.config import GPUConfig
from repro.core.sharing import SharedResource
from repro.harness.runner import shared, unshared
from repro.harness.sweep import CSV_COLUMNS, Sweep, result_row, rows_to_csv

FAST = dict(config=GPUConfig().scaled(num_clusters=1), scale=0.2, waves=1.0)


def small_sweep():
    s = Sweep(**FAST)
    s.add_apps(["gaussian"])
    s.add_modes([unshared("lrr"), unshared("gto")])
    return s


class TestSweep:
    def test_size(self):
        s = small_sweep()
        assert s.size == 2

    def test_run_produces_rows(self):
        s = small_sweep()
        rows = s.run()
        assert len(rows) == 2
        assert {r["mode"] for r in rows} == {"Unshared-LRR", "Unshared-GTO"}
        for r in rows:
            for col in CSV_COLUMNS:
                assert col in r

    def test_empty_sweep_rejected(self):
        with pytest.raises(ValueError):
            Sweep(**FAST).run()

    def test_csv_before_run_rejected(self):
        with pytest.raises(ValueError):
            small_sweep().to_csv()

    def test_csv_shape(self):
        s = small_sweep()
        s.run()
        lines = s.to_csv().strip().splitlines()
        assert lines[0] == ",".join(CSV_COLUMNS)
        assert len(lines) == 3
        assert all(len(l.split(",")) == len(CSV_COLUMNS) for l in lines)

    def test_best_mode_per_app(self):
        s = small_sweep()
        s.run()
        best = s.best_mode_per_app()
        assert set(best) == {"gaussian"}
        assert best["gaussian"] in ("Unshared-LRR", "Unshared-GTO")

    def test_sharing_columns_populated(self):
        s = Sweep(**FAST)
        s.add_apps(["CONV1"])
        s.add_modes([shared(SharedResource.SCRATCHPAD, "owf")])
        (row,) = s.run()
        assert row["blocks_total"] == 8
        assert row["blocks_baseline"] == 6

    def test_app_objects_accepted(self):
        from repro.workloads.apps import APPS
        s = Sweep(**FAST)
        s.add_apps([APPS["gaussian"]])
        s.add_modes([unshared("lrr")])
        assert s.size == 1


class TestRowsToCsv:
    def test_missing_keys_blank(self):
        from repro.harness.sweep import CSV_COLUMNS
        text = rows_to_csv([{"app": "x", "ipc": 1.0}])
        line = text.strip().splitlines()[1]
        assert line.startswith("x,")
        cycles_col = CSV_COLUMNS.index("cycles")
        assert line.split(",")[cycles_col] == ""  # cycles missing -> blank

    def test_extra_keys_ignored(self):
        text = rows_to_csv([{"app": "x", "not_a_column": 9}])
        assert "not_a_column" not in text
        assert "9" not in text

    def test_comma_in_field_quoted(self):
        import csv
        import io
        text = rows_to_csv([{"app": "x", "mode": "Shared,OWF"}])
        (row,) = list(csv.DictReader(io.StringIO(text)))
        assert row["mode"] == "Shared,OWF"
        assert row["clusters"] == ""


class TestSweepEngine:
    def test_duplicate_grid_entries_simulated_once(self):
        s = Sweep(**FAST)
        s.add_apps(["gaussian"])
        s.add_modes([unshared("lrr"), unshared("gto"), unshared("lrr")])
        assert s.size == 3
        rows = s.run()
        assert len(rows) == 2  # one row per unique run
        assert s.engine.stats.sims == 2

    def test_cache_knob(self, tmp_path):
        s1 = Sweep(**FAST, cache=True, cache_dir=tmp_path)
        s1.add_apps(["gaussian"]).add_modes([unshared("lrr")])
        s1.run()
        assert s1.engine.stats.sims == 1

        s2 = Sweep(**FAST, cache=True, cache_dir=tmp_path)
        s2.add_apps(["gaussian"]).add_modes([unshared("lrr")])
        rows = s2.run()
        assert s2.engine.stats.sims == 0 and s2.engine.stats.hits == 1
        assert rows == s1.rows

    def test_cache_off_by_default(self):
        assert Sweep(**FAST).engine.cache is None

    def test_shared_engine(self):
        from repro.harness.engine import Engine
        eng = Engine(jobs=1, cache=False)
        s = Sweep(**FAST, engine=eng)
        s.add_apps(["gaussian"]).add_modes([unshared("lrr")])
        s.run()
        assert eng.stats.sims == 1
