#!/usr/bin/env python3
"""Scratchpad-sharing deep dive (paper Sec. III-B, Fig. 8d/9b).

Runs the Set-2 suite under scratchpad sharing, showing per-app resident
blocks, IPC gains, and the lock behaviour that explains them — including
lavaMD's special case where *no* access ever lands in the shared region,
so both blocks of every pair run unhindered (the paper's +30% headline).

Run:  python examples/scratchpad_sharing_study.py
"""

from repro import (APPS, GPUConfig, SET2, SharedResource, improvement,
                   plan_sharing, run, shared, unshared)
from repro.core.sharing import SharingSpec

SPAD = SharedResource.SCRATCHPAD
cfg = GPUConfig().scaled(num_clusters=4)

print(f"{'app':8s} {'blocks':>12s} {'IPC base':>9s} {'IPC shared':>10s} "
      f"{'gain':>8s} {'locks':>7s} {'waits':>7s}  note")
for name in SET2:
    app = APPS[name]
    kernel = app.kernel()
    plan = plan_sharing(kernel, cfg, SharingSpec(SPAD, 0.1))
    base = run(app, unshared("lrr"), config=cfg)
    best = run(app, shared(SPAD, "owf"), config=cfg)
    locks = sum(s.lock_acquires for s in best.sm_stats)
    waits = sum(s.lock_waits for s in best.sm_stats)
    note = ""
    if locks == 0:
        note = "never touches the shared region (paper's lavaMD case)"
    print(f"{name:8s} {plan.baseline:5d} -> {plan.total:3d} "
          f"{base.ipc:9.2f} {best.ipc:10.2f} "
          f"{improvement(base, best):+7.2f}% {locks:7d} {waits:7d}  {note}")

print("""
Reading the table:
* blocks — resident thread blocks per SM, baseline vs t=0.1 sharing
  (matches the paper's Fig. 8b / Table VIII exactly).
* locks/waits — shared-region acquisitions and busy-wait episodes; a
  non-owner block stalls at its first shared-offset access until the
  owner block completes (Fig. 4).
* lavaMD declares 7200 B but touches only a 640 B prefix, so every
  access stays inside the private partition: the extra blocks are pure
  thread-level parallelism.
""")
