"""Issue-trace recording for debugging and teaching.

Wraps an :class:`~repro.sim.gpu.GPU` so that every instruction issue is
recorded as a :class:`TraceEvent`.  The recorder hooks the SMs'
``_try_issue`` non-invasively (the hot path stays untouched when tracing
is off) and offers simple queries plus a compact textual timeline —
useful for demonstrating, e.g., exactly when a non-owner warp blocks on
a shared pool and when the handoff wakes it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.gpu import GPU
from repro.sim.sm import SMCore
from repro.sim.stats import RunResult
from repro.sim.warp import WarpContext

__all__ = ["TraceEvent", "TraceRecorder"]


@dataclass(frozen=True)
class TraceEvent:
    """One issued instruction."""

    cycle: int
    sm: int
    warp: int
    block: int
    slot: int
    op: str
    #: 0 owner / 1 unshared / 2 non-owner at issue time.
    warp_class: int


class TraceRecorder:
    """Record every issue of a GPU run.

    Usage::

        gpu = GPU(kernel, cfg, plan=plan)
        trace = TraceRecorder(gpu)
        result = trace.run()
        print(trace.timeline(sm=0, first=40))
    """

    def __init__(self, gpu: GPU, *, max_events: int = 1_000_000) -> None:
        self.gpu = gpu
        self.events: list[TraceEvent] = []
        self.max_events = max_events
        self._truncated = False
        for sm in gpu.sms:
            self._hook(sm)

    def _hook(self, sm: SMCore) -> None:
        original = sm._try_issue

        def traced(warp: WarpContext, cycle: int, sched) -> bool:
            # class and block must be sampled before the issue: an EXIT
            # can complete the block and detach its pair.
            cls = warp.owf_class() if warp.block.pair is not None else 1
            block_id = warp.block.linear_id
            ok = original(warp, cycle, sched)
            if ok:
                if len(self.events) < self.max_events:
                    self.events.append(TraceEvent(
                        cycle=cycle, sm=sm.sm_id, warp=warp.dynamic_id,
                        block=block_id, slot=warp.slot,
                        op=self._last_op(warp), warp_class=cls))
                else:
                    self._truncated = True
            return ok

        sm._try_issue = traced  # type: ignore[method-assign]

    @staticmethod
    def _last_op(warp: WarpContext) -> str:
        # after a successful issue the pointer moved; for EXIT it did not.
        from repro.sim.warp import WarpState
        if warp.state is WarpState.FINISHED:
            return "EXIT"
        seg, rep, pc = warp.trace_position
        k = warp.kernel
        # step back one instruction
        if pc > 0:
            return k.segments[seg].instrs[pc - 1].op.name
        if rep > 0 or seg == 0:
            s = k.segments[seg if rep > 0 else max(seg - 1, 0)]
            return s.instrs[-1].op.name
        return k.segments[seg - 1].instrs[-1].op.name

    # ------------------------------------------------------------------
    def run(self, **kw) -> RunResult:
        """Run the wrapped GPU and return its result."""
        return self.gpu.run(**kw)

    @property
    def truncated(self) -> bool:
        """True if the event cap was hit (trace is a prefix)."""
        return self._truncated

    # ------------------------------------------------------------------
    def for_sm(self, sm: int) -> list[TraceEvent]:
        """Events of one SM, in issue order."""
        return [e for e in self.events if e.sm == sm]

    def for_warp(self, sm: int, warp: int) -> list[TraceEvent]:
        """Events of one warp."""
        return [e for e in self.events if e.sm == sm and e.warp == warp]

    def issue_gaps(self, sm: int, warp: int) -> list[int]:
        """Cycle gaps between consecutive issues of one warp — long gaps
        are stalls (memory, locks, barriers)."""
        ev = self.for_warp(sm, warp)
        return [b.cycle - a.cycle for a, b in zip(ev, ev[1:])]

    def timeline(self, sm: int = 0, first: int = 50) -> str:
        """Compact textual timeline of one SM's first ``first`` issues."""
        cls_tag = {0: "OWN", 1: "UNS", 2: "NON"}
        lines = [f"cycle  warp blk slot cls  op  (SM{sm})"]
        for e in self.for_sm(sm)[:first]:
            lines.append(f"{e.cycle:6d} w{e.warp:<3d} b{e.block:<3d} "
                         f"s{e.slot:<2d} {cls_tag[e.warp_class]} {e.op}")
        return "\n".join(lines)
