"""Experiment harness: run modes, reproduce every paper table/figure."""

from repro.harness.runner import Mode, run, unshared, shared, improvement
from repro.harness.engine import (Engine, EngineStats, ResultCache, RunSpec,
                                  default_engine)
from repro.harness.resilience import (BatchReport, RetryPolicy, RunFailure,
                                      split_results)
from repro.harness.faults import FaultInjector, corrupt_cache_entry
from repro.harness.experiments import EXPERIMENTS, run_experiment, ExperimentResult
# Imported for its side effect: registers the ext_* experiments.
from repro.harness import extensions as _extensions  # noqa: F401
from repro.harness.report import format_table, render_experiment
from repro.harness.sweep import Sweep, rows_to_csv

__all__ = [
    "Mode",
    "run",
    "Engine",
    "EngineStats",
    "ResultCache",
    "RunSpec",
    "default_engine",
    "BatchReport",
    "RetryPolicy",
    "RunFailure",
    "split_results",
    "FaultInjector",
    "corrupt_cache_entry",
    "unshared",
    "shared",
    "improvement",
    "EXPERIMENTS",
    "run_experiment",
    "ExperimentResult",
    "format_table",
    "render_experiment",
    "Sweep",
    "rows_to_csv",
]
