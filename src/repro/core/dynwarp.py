"""Dynamic warp execution (paper Sec. IV-C).

Extra (non-owner) warps can raise L1/L2 misses on memory-bound kernels.
The controller throttles *global memory* instructions issued by non-owner
warps with a per-SM probability ``p``:

* SM0's ``p`` is pinned to 0 — it never issues non-owner memory
  instructions and serves as the reference.
* Every ``period`` cycles (1000 in the paper), each other SM compares the
  stall cycles it accumulated over the window with SM0's.  More stalls
  than SM0 → ``p -= step``; fewer → ``p += step`` (step 0.1), saturating
  in [0, 1].  All SMs except SM0 start at ``p = 1``.

The paper does not specify what happens to a *refused* instruction; a
per-cycle retry would reduce ``p`` to a one-cycle delay, so we block the
refused warp until the end of the current monitoring window (see
DESIGN.md §4).  Draws come from a seeded PCG64 stream per SM, so runs are
deterministic.

One escape hatch lives in ``SMCore._dyn_critical``: a non-owner warp
whose block holds a shared pool that a partner-side warp is lock-blocked
on is never refused.  Without it, SM0 (``p`` pinned to 0) would refuse
such a warp forever and livelock the pair — the owner waits on a pool
that only the throttled block can release.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DynWarpController"]


class DynWarpController:
    """Per-SM saturating-probability throttle for non-owner memory ops."""

    def __init__(self, num_sms: int, *, period: int = 1000,
                 step: float = 0.1, seed: int = 12345) -> None:
        if num_sms < 1:
            raise ValueError("need at least one SM")
        if period < 1:
            raise ValueError("period must be positive")
        if not 0.0 < step <= 1.0:
            raise ValueError("step must be in (0, 1]")
        self.num_sms = num_sms
        self.period = period
        self.step = step
        self.p = [1.0] * num_sms
        self.p[0] = 0.0
        self._window_stalls = [0] * num_sms
        self._rngs = [np.random.Generator(np.random.PCG64(seed + 977 * i))
                      for i in range(num_sms)]
        #: Cycle at which the next window closes (maintained by caller's
        #: event scheduling; stored for convenience).
        self.next_window_end = period

    # ------------------------------------------------------------------
    def allow(self, sm_id: int) -> bool:
        """Decide whether a non-owner memory instruction may issue now."""
        p = self.p[sm_id]
        if p >= 1.0:
            return True
        if p <= 0.0:
            return False
        return bool(self._rngs[sm_id].random() < p)

    def record_stall(self, sm_id: int, n: int = 1) -> None:
        """Accumulate ``n`` stall cycles for ``sm_id`` in this window."""
        self._window_stalls[sm_id] += n

    def end_window(self) -> None:
        """Close the monitoring window and adjust every SM's probability."""
        ref = self._window_stalls[0]
        for i in range(1, self.num_sms):
            if self._window_stalls[i] > ref:
                self.p[i] = max(0.0, self.p[i] - self.step)
            elif self._window_stalls[i] < ref:
                self.p[i] = min(1.0, self.p[i] + self.step)
        self._window_stalls = [0] * self.num_sms
        self.next_window_end += self.period
