"""Golden-file regression: paper-exact tables must never drift."""

from repro.harness.golden import (GOLDEN_EXPERIMENTS, check_goldens,
                                  collect, golden_path)


class TestGoldens:
    def test_golden_file_exists(self):
        assert golden_path().is_file()

    def test_no_drift(self):
        problems = check_goldens()
        assert problems == []

    def test_covers_expected_experiments(self):
        import json
        data = json.loads(golden_path().read_text())
        assert set(data) == set(GOLDEN_EXPERIMENTS)

    def test_collect_deterministic(self):
        assert collect() == collect()
