"""GPU-level integration across apps × modes (tiny scale).

The matrix below is the deadlock/regression net for the whole stack:
every app must complete under every mode family, deterministically.
"""

import pytest

from repro.config import GPUConfig
from repro.core.sharing import SharedResource
from repro.harness.runner import run, shared, unshared
from repro.workloads.apps import APPS
from repro.workloads.suites import SET1, SET2, SET3

REG = SharedResource.REGISTERS
SPAD = SharedResource.SCRATCHPAD
FAST = dict(config=GPUConfig().scaled(num_clusters=2), scale=0.25,
            waves=1.5)


class TestSet1AllModes:
    @pytest.mark.parametrize("name", SET1)
    def test_baseline_lrr(self, name):
        assert run(APPS[name], unshared("lrr"), **FAST).ipc > 0

    @pytest.mark.parametrize("name", SET1)
    def test_register_sharing_full_stack(self, name):
        r = run(APPS[name], shared(REG, "owf", unroll=True, dyn=True),
                **FAST)
        assert r.ipc > 0
        assert r.blocks_total >= r.blocks_baseline

    @pytest.mark.parametrize("name", SET1)
    def test_register_sharing_noopt(self, name):
        assert run(APPS[name], shared(REG, "lrr"), **FAST).ipc > 0

    @pytest.mark.parametrize("sched", ["gto", "two_level"])
    def test_alt_schedulers(self, sched):
        assert run(APPS["hotspot"], unshared(sched), **FAST).ipc > 0


class TestSet2AllModes:
    @pytest.mark.parametrize("name", SET2)
    def test_scratchpad_sharing_owf(self, name):
        r = run(APPS[name], shared(SPAD, "owf"), **FAST)
        assert r.ipc > 0
        assert r.blocks_total > r.blocks_baseline

    @pytest.mark.parametrize("name", SET2)
    def test_scratchpad_sharing_lrr(self, name):
        assert run(APPS[name], shared(SPAD, "lrr"), **FAST).ipc > 0


class TestSet3Invariants:
    """Paper Sec. VI-B-2: sharing launches nothing extra for Set-3, so
    Shared-X must equal Unshared-X *exactly*."""

    @pytest.mark.parametrize("name", SET3)
    def test_shared_lrr_identical_to_lrr(self, name):
        a = run(APPS[name], unshared("lrr"), **FAST)
        b = run(APPS[name], shared(REG, "lrr", unroll=True, dyn=True),
                **FAST)
        assert a.cycles == b.cycles
        assert a.instructions == b.instructions

    @pytest.mark.parametrize("name", SET3)
    def test_shared_gto_identical_to_gto(self, name):
        a = run(APPS[name], unshared("gto"), **FAST)
        b = run(APPS[name], shared(REG, "gto", unroll=True, dyn=True),
                **FAST)
        assert a.cycles == b.cycles

    @pytest.mark.parametrize("name", SET3)
    def test_no_extra_blocks(self, name):
        r = run(APPS[name], shared(REG, "owf"), **FAST)
        assert r.blocks_total == r.blocks_baseline


class TestCrossRun:
    def test_bit_identical_reruns(self):
        m = shared(REG, "owf", unroll=True, dyn=True)
        a = run(APPS["MUM"], m, **FAST)
        b = run(APPS["MUM"], m, **FAST)
        assert a.summary() == b.summary()

    def test_sharing_launches_paper_block_counts(self):
        # grid must exceed capacity for the peak to reach the plan total
        cfg = GPUConfig().scaled(num_clusters=2)
        r = run(APPS["hotspot"], shared(REG, "owf", unroll=True),
                config=cfg, scale=0.25, grid_blocks=24)
        assert r.max_resident_blocks == 6
        r = run(APPS["lavaMD"], shared(SPAD, "owf"), config=cfg,
                scale=0.25, grid_blocks=16)
        assert r.max_resident_blocks == 4

    def test_threshold_sweep_monotone_blocks(self):
        # Lower t (more sharing) never launches fewer blocks.
        prev = 0
        for pct in (0, 30, 50, 70, 90):
            r = run(APPS["LIB"], shared(REG, "lrr", t=1.0 - pct / 100.0),
                    **FAST)
            assert r.blocks_total >= prev
            prev = r.blocks_total

    def test_double_register_config(self):
        from dataclasses import replace
        cfg = replace(GPUConfig().scaled(num_clusters=2),
                      registers_per_sm=65536)
        r = run(APPS["hotspot"], unshared("lrr"), config=cfg, scale=0.25,
                waves=1.5)
        assert r.max_resident_blocks == 6  # 2x registers -> thread cap

    def test_stats_totals_consistent(self):
        r = run(APPS["CONV1"], shared(SPAD, "owf"), **FAST)
        for s in r.sm_stats:
            assert s.total_cycles == r.cycles
            assert (s.issued_owner + s.issued_unshared
                    + s.issued_nonowner) == s.instructions
        assert sum(s.instructions for s in r.sm_stats) == r.instructions
