"""Benchmark set registries (paper Tables II, III, IV)."""

from __future__ import annotations

from repro.workloads.apps import APPS, App

__all__ = ["SET1", "SET2", "SET3", "suite_apps"]

#: Set-1: register-limited applications (Table II), in paper order.
SET1: tuple[str, ...] = ("backprop", "b+tree", "hotspot", "LIB", "MUM",
                         "mri-q", "sgemm", "stencil")

#: Set-2: scratchpad-limited applications (Table III).
SET2: tuple[str, ...] = ("CONV1", "CONV2", "lavaMD", "NW1", "NW2",
                         "SRAD1", "SRAD2")

#: Set-3: thread/block-limited applications (Table IV).
SET3: tuple[str, ...] = ("backprop-lf", "BFS", "gaussian", "NN")


def suite_apps(set_id: int) -> list[App]:
    """Return the :class:`App` objects of one benchmark set."""
    names = {1: SET1, 2: SET2, 3: SET3}.get(set_id)
    if names is None:
        raise ValueError("set_id must be 1, 2 or 3")
    return [APPS[n] for n in names]
