"""Fig. 12: Set-3 applications (sharing cannot add blocks)."""

from conftest import run_once

from repro.harness.experiments import run_experiment
from repro.harness.report import render_experiment


def test_fig12a_register_variants(benchmark, bench_config, bench_params,
                                  capsys):
    res = run_once(benchmark, run_experiment, exp_id="fig12a",
                   config=bench_config, **bench_params)
    with capsys.disabled():
        print("\n" + render_experiment(res))
    for row in res.rows:
        # Paper: Shared-LRR == Unshared-LRR and Shared-GTO == Unshared-GTO
        # exactly (no extra blocks -> identical simulations).
        assert row["Shared-LRR-Unroll-Dyn"] == row["Unshared-LRR"]
        assert row["Shared-GTO-Unroll-Dyn"] == row["Unshared-GTO"]
        # Shared-OWF tracks Unshared-GTO (within noise).
        if row["Unshared-GTO"]:
            ratio = row["Shared-OWF-Unroll-Dyn"] / row["Unshared-GTO"]
            assert abs(ratio - 1.0) < 0.05


def test_fig12b_scratchpad_variants(benchmark, bench_config, bench_params,
                                    capsys):
    res = run_once(benchmark, run_experiment, exp_id="fig12b",
                   config=bench_config, **bench_params)
    with capsys.disabled():
        print("\n" + render_experiment(res))
    for row in res.rows:
        assert row["Shared-LRR-NoOpt"] == row["Unshared-LRR"]
        assert row["Shared-GTO"] == row["Unshared-GTO"]
