"""Assembler / disassembler round-trips and error reporting."""

import pytest

from repro.isa.assembler import AsmError, assemble, disassemble
from repro.isa.opcodes import MemSpace, Op, Pattern
from repro.workloads.apps import APPS

SAMPLE = """
.kernel forces
.block 192
.regs 40
.smem 3072
.grid 64
.seed 7
.variance 0.30

ldg   r5, g[positions : 131072 : shared]     ; gather
sts   s[0 : 128 : 3072], r5
bar
.loop 40
    ldg  r6, g[neighbors : 98304 : shared : strided : 2]
    ffma r7, r6
    fadd r8, r7
    lds  r9, s[0 : 96 : 3072]
.endloop
stg   g[out : 131072], r8
exit
"""


class TestAssemble:
    def test_metadata(self):
        k = assemble(SAMPLE)
        assert k.name == "forces"
        assert k.threads_per_block == 192
        assert k.regs_per_thread == 40
        assert k.smem_per_block == 3072
        assert k.grid_blocks == 64
        assert k.seed == 7
        assert k.work_variance == pytest.approx(0.30)

    def test_structure(self):
        k = assemble(SAMPLE)
        assert [s.repeat for s in k.segments] == [1, 40, 1]
        assert k.segments[0].instrs[0].op is Op.LDG
        assert k.static_instrs[-1].op is Op.EXIT

    def test_global_operand(self):
        k = assemble(SAMPLE)
        m = k.segments[1].instrs[0].mem
        assert m.space is MemSpace.GLOBAL
        assert m.region == "neighbors"
        assert m.footprint == 98304
        assert not m.block_private
        assert m.pattern is Pattern.STRIDED
        assert m.txn == 2

    def test_shared_operand(self):
        k = assemble(SAMPLE)
        m = k.segments[0].instrs[1].mem
        assert m.space is MemSpace.SHARED
        assert (m.offset, m.stride, m.wrap) == (0, 128, 3072)

    def test_exit_appended_if_missing(self):
        k = assemble(".regs 4\nfadd r0, r1\n")
        assert k.static_instrs[-1].op is Op.EXIT

    def test_comments_and_blanks_ignored(self):
        k = assemble("# c\n.regs 4\n\nfadd r0, r1  ; trailing\n")
        assert k.dynamic_count == 2

    def test_multi_src_alu(self):
        k = assemble(".regs 8\nffma r0, r1, r2\n")
        assert k.static_instrs[0].src == (1, 2)

    def test_sim_integration(self):
        from repro.config import GPUConfig
        from repro.sim.gpu import GPU
        k = assemble(".regs 6\n.block 64\n.loop 3\nfadd r0, r1\n.endloop\n")
        r = GPU(k.with_grid(2), GPUConfig().scaled(num_clusters=1)).run()
        assert r.instructions == 4 * 2 * 2


class TestErrors:
    @pytest.mark.parametrize("text,frag", [
        ("bogus r0, r1", "unknown instruction"),
        (".loop 2\nfadd r0, r1\n", "unterminated"),
        (".endloop", ".endloop without"),
        (".loop 2\n.loop 2\n", "nest"),
        ("ldg r0", "ldg needs"),
        ("ldg x0, g[a : 64]", "expected register"),
        ("ldg r0, h[a : 64]", "expected g"),
        ("ldg r0, g[a]", "at least region"),
        ("ldg r0, g[a : x]", "bad footprint"),
        ("ldg r0, g[a : 64 : wiggly]", "unknown g[] qualifier"),
        ("lds r0, s[1 : 2]", "offset or offset:stride:wrap"),
        (".variance many", ".variance needs a float"),
        (".block lots", ".block needs an integer"),
        (".weird 3", "unknown directive"),
        (".loop 2\nexit\n.endloop", "exit inside a loop"),
        (".regs 2\nfadd r5, r1", "validation failed"),
    ])
    def test_error_cases(self, text, frag):
        with pytest.raises(AsmError) as e:
            assemble(text)
        assert frag in str(e.value)

    def test_line_numbers_reported(self):
        with pytest.raises(AsmError) as e:
            assemble(".regs 4\n\nbogus r0\n")
        assert e.value.lineno == 3


class TestRoundTrip:
    def test_sample_round_trip(self):
        k = assemble(SAMPLE)
        k2 = assemble(disassemble(k))
        assert k2 == k

    @pytest.mark.parametrize("name", ["hotspot", "MUM", "lavaMD", "NW1",
                                      "sgemm", "BFS"])
    def test_workload_round_trip(self, name):
        k = APPS[name].kernel()
        assert assemble(disassemble(k)) == k

    def test_disassembly_is_readable(self):
        text = disassemble(APPS["hotspot"].kernel())
        assert ".kernel hotspot" in text
        assert ".loop" in text
        assert "ldg" in text
