#!/usr/bin/env python3
"""Warp-scheduler shoot-out: LRR vs GTO vs two-level vs OWF.

The paper evaluates its sharing mechanisms against three baseline
schedulers (Figs. 8, 10, 12).  This example runs one app from each
benchmark set under all four schedulers, with and without sharing, and
demonstrates the paper's Set-3 identity: when sharing cannot launch
extra blocks, Shared-OWF behaves like Unshared-GTO.

Run:  python examples/scheduler_comparison.py
"""

from repro import APPS, GPUConfig, SharedResource, run, shared, unshared

cfg = GPUConfig().scaled(num_clusters=4)
REG = SharedResource.REGISTERS
SPAD = SharedResource.SCRATCHPAD

CASES = [
    ("hotspot", REG, "Set-1 (register-limited)"),
    ("lavaMD", SPAD, "Set-2 (scratchpad-limited)"),
    ("gaussian", REG, "Set-3 (block-limited: sharing is a no-op)"),
]

for name, resource, label in CASES:
    app = APPS[name]
    print(f"--- {name} — {label} ---")
    rows = []
    for sched in ("lrr", "gto", "two_level"):
        rows.append(run(app, unshared(sched), config=cfg))
    rows.append(run(app, shared(resource, "owf",
                                unroll=(resource is REG),
                                dyn=(resource is REG)), config=cfg))
    base = rows[0].ipc
    for r in rows:
        print(f"  {r.mode:26s} IPC {r.ipc:7.2f}  "
              f"({(r.ipc / base - 1) * 100:+6.2f}% vs LRR)  "
              f"blocks/SM {r.max_resident_blocks}")
    print()

print("Note how for the Set-3 app the sharing run launches no extra "
      "blocks and its\nIPC lands on the Unshared-GTO value — the paper's "
      "Fig. 12 observation.")
