"""Eq. 1-4 sharing plans — validated against every Table VI/VIII entry."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import GPUConfig
from repro.core.sharing import (SharedResource, SharingSpec,
                                eq4_max_blocks, plan_sharing)
from repro.isa.builder import KernelBuilder
from repro.workloads.apps import APPS

CFG = GPUConfig()
REG = SharedResource.REGISTERS
SPAD = SharedResource.SCRATCHPAD

#: Paper Table VI: resident blocks vs register-sharing percentage.
TABLE6 = {
    "backprop": {0: 5, 10: 5, 30: 5, 50: 5, 70: 6, 90: 6},
    "b+tree":   {0: 2, 10: 2, 30: 2, 50: 3, 70: 3, 90: 3},
    "hotspot":  {0: 3, 10: 3, 30: 3, 50: 4, 70: 4, 90: 6},
    "LIB":      {0: 4, 10: 4, 30: 5, 50: 5, 70: 6, 90: 8},
    "MUM":      {0: 4, 10: 4, 30: 4, 50: 5, 70: 5, 90: 6},
    "mri-q":    {0: 5, 10: 5, 30: 5, 50: 5, 70: 6, 90: 6},
    "sgemm":    {0: 5, 10: 5, 30: 5, 50: 5, 70: 6, 90: 8},
    "stencil":  {0: 2, 10: 2, 30: 2, 50: 2, 70: 2, 90: 3},
}

#: Paper Table VIII: resident blocks vs scratchpad-sharing percentage.
TABLE8 = {
    "CONV1":  {0: 6, 10: 6, 30: 6, 50: 6, 70: 7, 90: 8},
    "CONV2":  {0: 3, 10: 3, 30: 3, 50: 3, 70: 3, 90: 4},
    "lavaMD": {0: 2, 10: 2, 30: 2, 50: 2, 70: 2, 90: 4},
    "NW1":    {0: 7, 10: 7, 30: 7, 50: 8, 70: 8, 90: 8},
    "NW2":    {0: 7, 10: 7, 30: 7, 50: 8, 70: 8, 90: 8},
    "SRAD1":  {0: 2, 10: 2, 30: 2, 50: 3, 70: 4, 90: 4},
    "SRAD2":  {0: 3, 10: 3, 30: 3, 50: 3, 70: 3, 90: 5},
}


def plan_for(app, resource, pct):
    t = 1.0 - pct / 100.0
    return plan_sharing(APPS[app].kernel(), CFG, SharingSpec(resource, t))


class TestTable6:
    @pytest.mark.parametrize("app", sorted(TABLE6))
    @pytest.mark.parametrize("pct", [0, 10, 30, 50, 70, 90])
    def test_blocks_match_paper(self, app, pct):
        assert plan_for(app, REG, pct).total == TABLE6[app][pct]


class TestTable8:
    @pytest.mark.parametrize("app", sorted(TABLE8))
    @pytest.mark.parametrize("pct", [0, 10, 30, 50, 70, 90])
    def test_blocks_match_paper(self, app, pct):
        assert plan_for(app, SPAD, pct).total == TABLE8[app][pct]


class TestSpec:
    def test_t_bounds(self):
        with pytest.raises(ValueError):
            SharingSpec(REG, 0.0)
        with pytest.raises(ValueError):
            SharingSpec(REG, 1.1)
        assert SharingSpec(REG, 1.0).sharing_pct == 0.0

    def test_sharing_pct(self):
        assert SharingSpec(REG, 0.1).sharing_pct == pytest.approx(90.0)


class TestPlanInvariants:
    @pytest.mark.parametrize("app", sorted(TABLE6))
    @pytest.mark.parametrize("pct", [10, 50, 90])
    def test_eq1_effective_blocks(self, app, pct):
        p = plan_for(app, REG, pct)
        # Eq. 1: S + U = D — sharing never reduces effective blocks.
        assert p.pairs + p.unshared == p.baseline

    @pytest.mark.parametrize("app", sorted(TABLE6))
    def test_eq2_resource_bound(self, app):
        p = plan_for(app, REG, 90)
        rtb = APPS[app].kernel().regs_per_block
        used = p.unshared * rtb + p.pairs * (1 + p.spec.t) * rtb
        assert used <= CFG.registers_per_sm + 1e-6

    @pytest.mark.parametrize("app", sorted(TABLE6))
    def test_eq3_total(self, app):
        p = plan_for(app, REG, 90)
        assert p.total == p.unshared + 2 * p.pairs

    def test_hotspot_90pct_detail(self):
        # Worked example from the paper: 3 -> 6 blocks, all paired.
        p = plan_for("hotspot", REG, 90)
        assert (p.baseline, p.unshared, p.pairs, p.total) == (3, 0, 3, 6)
        assert p.private_regs_per_thread == 3  # floor(36 * 0.1)

    def test_no_sharing_at_zero_pct(self):
        p = plan_for("hotspot", REG, 0)
        assert not p.enabled
        assert p.total == p.baseline

    def test_extra_property(self):
        p = plan_for("hotspot", REG, 90)
        assert p.extra == 3

    def test_kernel_without_scratchpad_gets_no_spad_sharing(self):
        k = KernelBuilder("x", block_size=64, regs=8).build()
        p = plan_sharing(k, CFG, SharingSpec(SPAD, 0.1))
        assert not p.enabled

    def test_thread_limited_kernel_gets_no_register_sharing(self):
        # by_regs = 8 but threads cap at 6: sharing can't add blocks.
        k = KernelBuilder("x", block_size=256, regs=16).build()
        p = plan_sharing(k, CFG, SharingSpec(REG, 0.1))
        assert not p.enabled
        assert p.total == 6


class TestEq4:
    def test_paper_example(self):
        # Sec. III: R=35K, Rtb=10K, t=0.5 -> 3 baseline + 1 extra pair.
        assert eq4_max_blocks(35_000, 10_000, 0.5) == 4

    def test_exact_division_adds_nothing(self):
        assert eq4_max_blocks(30_000, 10_000, 0.1) == 3

    def test_rtb_positive(self):
        with pytest.raises(ValueError):
            eq4_max_blocks(1000, 0, 0.5)

    @given(R=st.integers(1024, 1 << 20), Rtb=st.integers(64, 1 << 16),
           t=st.floats(0.05, 1.0))
    @settings(max_examples=200, deadline=None)
    def test_closed_form_invariants(self, R, Rtb, t):
        if Rtb > R:
            return
        D = R // Rtb
        M = eq4_max_blocks(R, Rtb, t)
        S = M - D
        # pairs bounded by baseline (U = D - S >= 0)
        assert 0 <= S <= D
        # Eq. 2: resources never oversubscribed
        assert (D - S) * Rtb + S * (1 + t) * Rtb <= R + 1e-6 * Rtb
        # matches the paper's closed form (floored)
        frac = R / Rtb - D
        assert S == min(D, int(math.floor(frac / t + 1e-9)))
