#!/usr/bin/env python3
"""Quickstart: run one kernel with and without register sharing.

Reproduces the paper's headline effect on its flagship application
(hotspot): resource sharing launches 6 thread blocks per SM instead of 3
and improves IPC by hiding long latencies with the extra warps.

Run:  python examples/quickstart.py
"""

from repro import (APPS, GPUConfig, SharedResource, occupancy, plan_sharing,
                   run, shared, unshared)
from repro.core.sharing import SharingSpec

# A 4-cluster machine: per-SM resources are identical to the paper's
# Table I configuration, so occupancy and sharing decisions are exact.
cfg = GPUConfig().scaled(num_clusters=4)

app = APPS["hotspot"]
kernel = app.kernel()

# --- static analysis: why does hotspot waste registers? ----------------
occ = occupancy(kernel, cfg)
print(f"hotspot: {kernel.threads_per_block} threads/block x "
      f"{kernel.regs_per_thread} regs = {kernel.regs_per_block} regs/block")
print(f"baseline occupancy: {occ.blocks} blocks/SM (limited by "
      f"{occ.limiter}), {occ.register_waste_pct:.1f}% of the register "
      f"file wasted")

plan = plan_sharing(kernel, cfg, SharingSpec(SharedResource.REGISTERS, 0.1))
print(f"with 90% register sharing: {plan.total} blocks/SM "
      f"({plan.unshared} unshared + {plan.pairs} pairs)\n")

# --- simulate both configurations ---------------------------------------
base = run(app, unshared("lrr"), config=cfg)
best = run(app, shared(SharedResource.REGISTERS, "owf",
                       unroll=True, dyn=True), config=cfg)

print(f"{'mode':28s} {'IPC':>8s} {'cycles':>9s} {'stalls':>9s} "
      f"{'blocks':>7s}")
for r in (base, best):
    print(f"{r.mode:28s} {r.ipc:8.2f} {r.cycles:9d} {r.stall_cycles:9d} "
          f"{r.max_resident_blocks:7d}")

gain = (best.ipc / base.ipc - 1) * 100
print(f"\nIPC improvement: {gain:+.1f}%  (paper reports +21.76% for "
      f"hotspot, Fig. 8c)")
