"""The EXPERIMENTS.md tooling in scripts/ (log parsing and splicing)."""

import importlib.util
import sys
from pathlib import Path


SCRIPTS = Path(__file__).resolve().parent.parent / "scripts"


def _load(name):
    spec = importlib.util.spec_from_file_location(name, SCRIPTS / f"{name}.py")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


build_mod = _load("build_experiments_md")
splice_mod = _load("splice_bench_sections")

HARNESS_LOG = """== Fig 1: resident thread blocks and resource waste ==
app       blocks
--------  ------
hotspot   3
note: demo.

[fig1: 0.0s]

== Table VI: resident blocks vs % register sharing ==
app      0%  90%
-------  --  ---
hotspot  3   6

[table6: 1.5s]
"""

BENCH_LOG = """
== Fig 8(c): % IPC improvement, register sharing (X vs Y) ==
app      improvement_pct
-------  ---------------
hotspot  16.52
.
== Table VII: IPC vs % scratchpad sharing ==
app     0%    90%
------  ----  ----
lavaMD  5.00  7.00
.
===== 24 passed =====
"""


class TestBuildExperimentsMd:
    def test_sections_extracted_with_notes(self):
        out = build_mod.build(HARNESS_LOG, "test settings")
        assert "test settings" in out
        assert "## fig1 — Fig 1: resident thread blocks" in out
        assert "## table6 — Table VI" in out
        assert "golden-pinned" in out  # table6 commentary attached
        assert "`python -m repro.harness fig1`" in out

    def test_tables_fenced(self):
        out = build_mod.build(HARNESS_LOG, "s")
        assert out.count("```") % 2 == 0
        assert "hotspot   3" in out

    def test_missing_sections_listed(self):
        out = build_mod.build(HARNESS_LOG, "s")
        assert "not present in this log" in out
        assert "fig9a" in out  # one of the absent ids

    def test_known_ids_ordered_before_unknown(self):
        log = HARNESS_LOG + (
            "== Something custom ==\nrow\n[zz_custom: 0.1s]\n\n")
        out = build_mod.build(log, "s")
        assert out.index("## fig1") < out.index("## zz_custom")

    def test_engine_stats_footer_parsed(self):
        # the harness CLI now appends engine stats to the timing line
        log = HARNESS_LOG.replace(
            "[fig1: 0.0s]", "[fig1: 0.0s | 16 sims, 0 cache hits, jobs 4]")
        out = build_mod.build(log, "s")
        assert "## fig1 — Fig 1: resident thread blocks" in out
        assert "regenerated in 0s" in out


class TestSpliceBenchSections:
    def test_section_regex_finds_bench_tables(self):
        found = {m.group("title")
                 for m in splice_mod.SECTION_RE.finditer(BENCH_LOG)}
        assert any(t.startswith("Fig 8(c)") for t in found)
        assert any(t.startswith("Table VII") for t in found)

    def test_title_map_covers_all_paper_artifacts(self):
        ids = set(splice_mod.TITLE_TO_ID.values())
        for want in ("fig8c", "fig9d", "fig12b", "table5", "table8",
                     "hw_overhead"):
            assert want in ids

    def test_main_emits_harness_format(self, tmp_path, capsys, monkeypatch):
        f = tmp_path / "bench.txt"
        f.write_text(BENCH_LOG)
        monkeypatch.setattr(sys, "argv",
                            ["splice", str(f), "fig8c", "table7"])
        assert splice_mod.main() == 0
        out = capsys.readouterr().out
        assert "[fig8c: 0.0s]" in out
        assert "[table7: 0.0s]" in out
        # spliced output round-trips through the builder
        built = build_mod.build(out, "s")
        assert "## fig8c" in built and "## table7" in built

    def test_missing_ids_reported_on_stderr(self, tmp_path, capsys,
                                            monkeypatch):
        f = tmp_path / "bench.txt"
        f.write_text(BENCH_LOG)
        monkeypatch.setattr(sys, "argv", ["splice", str(f), "fig9a"])
        assert splice_mod.main() == 0
        err = capsys.readouterr().err
        assert "fig9a" in err

    def test_pytest_dots_not_swallowed(self):
        # the '.' progress line after a section must terminate its body
        m = next(splice_mod.SECTION_RE.finditer(BENCH_LOG))
        assert "passed" not in m.group("body")
        assert m.group("body").strip().endswith("16.52")
