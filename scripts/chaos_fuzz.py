#!/usr/bin/env python
"""Random-kernel fuzz net for the engine's resilience layer.

Generates deterministic random kernels (``repro.workloads.generator``),
runs each under a few representative modes with the runtime invariant
sanitizer enabled, and reports every failure the engine isolated.  Any
failure — a sanitizer violation, a deadlock, a crash — exits nonzero,
so CI catches invariant regressions on inputs no curated app exercises.

Usage::

    PYTHONPATH=src python scripts/chaos_fuzz.py --kernels 20 --jobs 2
"""

from __future__ import annotations

import argparse
import sys

from repro.config import GPUConfig
from repro.core.sharing import SharedResource
from repro.harness.engine import Engine, RunSpec
from repro.harness.resilience import BatchReport
from repro.harness.runner import shared, unshared
from repro.workloads.generator import generate_kernel


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("--kernels", type=int, default=20,
                   help="random kernels to generate (default 20)")
    p.add_argument("--seed", type=int, default=0,
                   help="base seed; kernel i uses seed+i (default 0)")
    p.add_argument("--jobs", type=int, default=2,
                   help="engine worker processes (default 2)")
    p.add_argument("--timeout", type=float, default=120.0,
                   help="per-run wall-clock budget in seconds")
    p.add_argument("--max-cycles", type=int, default=400_000,
                   help="per-run cycle limit (default 400,000)")
    args = p.parse_args(argv)

    cfg = GPUConfig().scaled(num_clusters=1)
    modes = [
        unshared("lrr"),
        shared(SharedResource.REGISTERS, "owf", unroll=True, dyn=True),
        shared(SharedResource.SCRATCHPAD, "owf"),
    ]
    specs = []
    for i in range(args.kernels):
        kernel = generate_kernel(args.seed + i, config=cfg)
        for mode in modes:
            # Scratchpad sharing needs smem; skip impossible combos the
            # same way a curated suite would (plan falls back anyway,
            # but the unshared run already covers that path).
            specs.append(RunSpec.create(kernel, mode, config=cfg,
                                        waves=1.0,
                                        max_cycles=args.max_cycles))

    engine = Engine(jobs=args.jobs, cache=False, sanitize=True,
                    timeout=args.timeout)
    results = engine.run_batch(specs)
    report = BatchReport.from_results(results)
    print(f"chaos fuzz: {args.kernels} kernels x {len(modes)} modes -> "
          f"{report.summary()}")
    if not report.ok:
        print(report.render(), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
