"""Top-level CLI.

Subcommands::

    python -m repro analyze <app|file.kasm>       static kernel profile
    python -m repro run <app> [--mode ...]        simulate one app
    python -m repro trace <app> [--mode ...]      print an issue timeline
    python -m repro disasm <app>                  dump assembly listing
    python -m repro list                          registered apps & modes

(Per-figure experiment reproduction lives in ``python -m repro.harness``.)
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis import analyze, format_analysis
from repro.config import GPUConfig
from repro.core.sharing import SharedResource
from repro.harness.runner import shared, unshared
from repro.isa.assembler import assemble, disassemble
from repro.isa.kernel import Kernel
from repro.workloads.apps import APPS

_MODES = {
    "lrr": lambda: unshared("lrr"),
    "gto": lambda: unshared("gto"),
    "two_level": lambda: unshared("two_level"),
    "shared-reg": lambda: shared(SharedResource.REGISTERS, "owf",
                                 unroll=True, dyn=True),
    "shared-reg-er": lambda: shared(SharedResource.REGISTERS, "owf",
                                    unroll=True, early_release=True),
    "shared-reg-noopt": lambda: shared(SharedResource.REGISTERS, "lrr"),
    "shared-spad": lambda: shared(SharedResource.SCRATCHPAD, "owf"),
}


def _load_kernel(spec: str) -> Kernel:
    """An app name from the registry, or a path to a .kasm file."""
    if spec in APPS:
        return APPS[spec].kernel()
    path = Path(spec)
    if path.is_file():
        return assemble(path.read_text())
    raise SystemExit(f"unknown app or missing file: {spec!r} "
                     f"(apps: {', '.join(sorted(APPS))})")


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(prog="python -m repro")
    p.add_argument("--profile", action="store_true",
                   help="run under cProfile and print the top-20 "
                        "functions by cumulative time to stderr")
    sub = p.add_subparsers(dest="cmd", required=True)

    pa = sub.add_parser("analyze", help="static kernel profile")
    pa.add_argument("kernel")
    pa.add_argument("-t", type=float, default=0.1,
                    help="sharing threshold (default 0.1)")

    pr = sub.add_parser("run", help="simulate one app/kernel")
    pr.add_argument("kernel")
    pr.add_argument("--mode", choices=sorted(_MODES), default="lrr")
    pr.add_argument("--clusters", type=int, default=4)
    pr.add_argument("--scale", type=float, default=1.0)
    pr.add_argument("--waves", type=float, default=6.0)
    pr.add_argument("--jobs", type=int, default=None,
                    help="engine worker processes (single runs stay "
                         "in-process; the flag mirrors the harness CLI)")
    pr.add_argument("--cache-dir", default=None,
                    help="result-cache directory (default: "
                         "$REPRO_CACHE_DIR or ~/.cache/repro)")
    pr.add_argument("--no-cache", action="store_true",
                    help="disable the on-disk result cache")
    pr.add_argument("--max-cycles", type=int, default=2_000_000,
                    help="simulation cycle limit (default 2,000,000)")
    pr.add_argument("--timeout", type=float, default=None,
                    help="wall-clock budget in seconds for the run")
    pr.add_argument("--retries", type=int, default=None,
                    help="max attempts for transient failures (default 3)")
    pr.add_argument("--fail-fast", action="store_true",
                    help="re-raise failures instead of reporting them")
    pr.add_argument("--sanitize", action="store_true",
                    help="validate runtime invariants during the run")
    pr.add_argument("--trace", metavar="OUT.json", default=None,
                    help="write a Chrome trace-event timeline (load in "
                         "Perfetto / chrome://tracing; a .jsonl suffix "
                         "selects the line-stream form); bypasses the "
                         "result cache")
    pr.add_argument("--metrics", action="store_true",
                    help="collect the observability metrics registry and "
                         "print a warp-state breakdown")

    pd = sub.add_parser("disasm", help="dump assembly listing")
    pd.add_argument("kernel")

    pt = sub.add_parser("trace", help="print an issue timeline")
    pt.add_argument("kernel")
    pt.add_argument("--mode", choices=sorted(_MODES), default="lrr")
    pt.add_argument("--first", type=int, default=40,
                    help="issues to show (default 40)")
    pt.add_argument("--sm", type=int, default=0)

    sub.add_parser("list", help="registered apps and run modes")

    args = p.parse_args(argv)

    if args.profile:
        from repro.profiling import profiled
        return profiled(_dispatch, args)
    return _dispatch(args)


def _dispatch(args: argparse.Namespace) -> int:
    if args.cmd == "list":
        print("apps: ", ", ".join(sorted(APPS)))
        print("modes:", ", ".join(sorted(_MODES)))
        return 0

    if args.cmd == "analyze":
        print(format_analysis(analyze(_load_kernel(args.kernel),
                                      t=args.t)))
        return 0

    if args.cmd == "disasm":
        print(disassemble(_load_kernel(args.kernel)), end="")
        return 0

    if args.cmd == "trace":
        from repro.core.occupancy import occupancy as _occ
        from repro.core.sharing import SharingSpec, plan_sharing
        from repro.core.unroll import reorder_registers
        from repro.sim.gpu import GPU
        from repro.sim.trace import TraceRecorder
        kernel = _load_kernel(args.kernel)
        cfg = GPUConfig().scaled(num_clusters=1)
        mode = _MODES[args.mode]()
        if mode.unroll:
            kernel = reorder_registers(kernel)
        grid = max(2, 2 * _occ(kernel, cfg).blocks)
        kernel = kernel.with_grid(grid)
        plan = None
        if mode.sharing is not None:
            plan = plan_sharing(kernel, cfg,
                                SharingSpec(mode.sharing, mode.t))
        gpu = GPU(kernel, cfg, scheduler=mode.scheduler, plan=plan,
                  dyn=mode.dyn, early_release=mode.early_release,
                  mode=mode.label)
        tr = TraceRecorder(gpu, max_events=200_000)
        res = tr.run()
        print(tr.timeline(sm=args.sm, first=args.first))
        print(f"... {res.instructions} instructions in {res.cycles} "
              f"cycles (IPC {res.ipc:.2f})")
        return 0

    # run — registry apps honour --scale; .kasm files run as written
    from repro.harness.engine import Engine, RunSpec
    from repro.harness.resilience import RetryPolicy, RunFailure
    target = APPS.get(args.kernel) or _load_kernel(args.kernel)
    cfg = GPUConfig().scaled(num_clusters=args.clusters)
    mode = _MODES[args.mode]()
    retry = RetryPolicy(max_attempts=max(1, args.retries)) \
        if args.retries is not None else None
    engine = Engine(jobs=args.jobs, cache=not args.no_cache,
                    cache_dir=args.cache_dir, timeout=args.timeout,
                    retry=retry, fail_fast=args.fail_fast,
                    sanitize=args.sanitize or None)
    res = engine.run_one(RunSpec.create(target, mode, config=cfg,
                                        scale=args.scale, waves=args.waves,
                                        max_cycles=args.max_cycles,
                                        trace=args.trace,
                                        metrics=args.metrics))
    if isinstance(res, RunFailure):
        print(f"RUN FAILED [{res.category}] {res.app} [{res.mode}]: "
              f"{res.exception_type} after {res.attempts} attempt(s)\n"
              f"  {res.message}", file=sys.stderr)
        return 1
    cached = " (cached)" if engine.stats.hits else ""
    s = res.summary()
    print(f"{res.kernel} [{res.mode}] on {args.clusters} clusters:{cached}")
    for key in ("ipc", "cycles", "instructions", "stall_cycles",
                "idle_cycles", "max_resident_blocks", "l1_miss_rate",
                "l2_miss_rate", "dram_requests"):
        v = s[key]
        print(f"  {key:20s} {v:.4g}" if isinstance(v, float)
              else f"  {key:20s} {v}")
    if res.metrics is not None:
        _print_warp_state_breakdown(res.metrics)
    if args.trace:
        print(f"trace written to {args.trace}")
    return 0


def _print_warp_state_breakdown(metrics: dict) -> int:
    """Fig. 10-style warp-state cycle breakdown from the registry."""
    hists = metrics.get("histograms", {})
    rows = []
    for key, h in sorted(hists.items()):
        if key.startswith("warp_state_cycles{"):
            state = key[len("warp_state_cycles{state="):-1]
            rows.append((state, h["sum"], h["count"]))
    if not rows:
        return 0
    total = sum(r[1] for r in rows) or 1
    print("warp-state cycles (all warps):")
    for state, tot, count in sorted(rows, key=lambda r: -r[1]):
        print(f"  {state:18s} {tot:>12d}  ({100.0 * tot / total:5.1f}%  "
              f"over {count} intervals)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
