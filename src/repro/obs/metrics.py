"""Lightweight named-metrics registry (counters, gauges, histograms).

The registry is the structured half of the observability layer (the
timeline half lives in :mod:`repro.obs.tracing`): simulator components
publish *named, labelled* metrics into it — lock hold/wait durations,
per-scheduler issue-slot utilisation, MSHR occupancy, Dyn-throttle
refusals, cache-probe outcomes — and the engine attaches the collected
snapshot to the :class:`~repro.sim.stats.RunResult`.

Design constraints (see docs/observability.md):

* **Zero cost when disabled** — nothing in the simulator holds a
  registry unless observability was requested; the hot paths guard on
  a single boolean before touching any metric object.
* **Cheap when enabled** — metric handles are plain ``__slots__``
  objects resolved once (``registry.counter(...)`` caches on the key),
  so the per-event cost is an attribute increment.
* **JSON-stable** — :meth:`MetricsRegistry.to_dict` is a flat,
  deterministic (sorted-key) mapping that round-trips through the
  engine's result cache unchanged.

Keys follow the Prometheus-style ``name{label=value,...}`` convention
with labels sorted by name, e.g. ``lock_hold_cycles{kind=reg}``.
:func:`prometheus_text` renders a registry snapshot in the Prometheus
text exposition format (the ``/metrics`` payload of the simulation
service — see docs/service.md and docs/observability.md).
"""

from __future__ import annotations

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "metric_key", "prometheus_text"]


def metric_key(name: str, labels: dict) -> str:
    """Canonical ``name{k=v,...}`` key (labels sorted; no-label = name)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    kind = "counter"

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (must be non-negative to stay a counter)."""
        self.value += n

    def to_value(self) -> int:
        return self.value


class Gauge:
    """Last-written value (a level, not a rate)."""

    __slots__ = ("value",)

    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, v: float) -> None:
        self.value = v

    def to_value(self) -> float:
        return self.value


class Histogram:
    """Streaming summary: count/sum/min/max plus power-of-two buckets.

    ``record(v)`` files ``v`` into bucket ``ceil(log2(v+1))`` — bucket
    *i* holds values in ``[2**(i-1), 2**i)`` with bucket 0 = exactly 0 —
    which is plenty of resolution for cycle durations while keeping the
    serialized form tiny and deterministic.
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    kind = "histogram"

    def __init__(self) -> None:
        self.count = 0
        self.total = 0
        self.min: float | None = None
        self.max: float | None = None
        #: bucket index -> observation count (sparse).
        self.buckets: dict[int, int] = {}

    def record(self, v: float) -> None:
        """File one observation."""
        self.count += 1
        self.total += v
        if self.min is None or v < self.min:
            self.min = v
        if self.max is None or v > self.max:
            self.max = v
        b = 0
        n = int(v)
        while n > 0:
            b += 1
            n >>= 1
        self.buckets[b] = self.buckets.get(b, 0) + 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def to_value(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": round(self.mean, 6),
            "buckets": {str(k): self.buckets[k]
                        for k in sorted(self.buckets)},
        }


class MetricsRegistry:
    """Named metric store with label support.

    ``counter``/``gauge``/``histogram`` return the live metric object
    for a (name, labels) pair, creating it on first use — callers
    resolve once and hold the handle::

        reg = MetricsRegistry()
        waits = reg.histogram("lock_wait_cycles", kind="reg")
        waits.record(17)
        reg.to_dict()["histograms"]["lock_wait_cycles{kind=reg}"]
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def _get(self, cls, name: str, labels: dict):
        key = metric_key(name, labels)
        m = self._metrics.get(key)
        if m is None:
            m = cls()
            self._metrics[key] = m
        elif not isinstance(m, cls):
            raise TypeError(f"metric {key!r} already registered as "
                            f"{m.kind}, not {cls.kind}")
        return m

    def counter(self, name: str, **labels) -> Counter:
        """The counter for (name, labels), created on first use."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        """The gauge for (name, labels), created on first use."""
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        """The histogram for (name, labels), created on first use."""
        return self._get(Histogram, name, labels)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Deterministic JSON-serializable snapshot, grouped by kind."""
        out: dict[str, dict] = {"counters": {}, "gauges": {},
                                "histograms": {}}
        for key in sorted(self._metrics):
            m = self._metrics[key]
            out[m.kind + "s"][key] = m.to_value()
        return out

    def to_prometheus(self) -> str:
        """Prometheus text exposition of the current registry state."""
        return prometheus_text(self.to_dict())


# ----------------------------------------------------------------------
def _split_key(key: str) -> tuple[str, dict[str, str]]:
    """Inverse of :func:`metric_key` for the simple values we emit."""
    if "{" not in key:
        return key, {}
    name, _, rest = key.partition("{")
    labels: dict[str, str] = {}
    for pair in rest.rstrip("}").split(","):
        k, _, v = pair.partition("=")
        labels[k] = v
    return name, labels


def _prom_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    def esc(v: str) -> str:
        return v.replace("\\", "\\\\").replace('"', '\\"') \
                .replace("\n", "\\n")
    inner = ",".join(f'{k}="{esc(str(v))}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def _prom_num(v) -> str:
    if v is None:
        return "NaN"
    if isinstance(v, bool):
        return str(int(v))
    if isinstance(v, int):
        return str(v)
    f = float(v)
    return str(int(f)) if f.is_integer() else repr(f)


def prometheus_text(snapshot: dict) -> str:
    """Render a :meth:`MetricsRegistry.to_dict` snapshot as Prometheus
    text exposition format (version 0.0.4).

    Counters and gauges map directly.  A :class:`Histogram` becomes a
    native Prometheus histogram: the power-of-two bucket *i* (values in
    ``[2**(i-1), 2**i)``, bucket 0 = exactly 0) is exported as the
    cumulative ``le="2**i - 1"`` bucket, closed with ``le="+Inf"``,
    plus the usual ``_sum``/``_count`` series.  ``min``/``max`` have no
    Prometheus histogram equivalent and are not exported.  Output is
    deterministic (sorted series) so scrapes diff cleanly in tests.
    """
    lines: list[str] = []
    typed: set[str] = set()

    def header(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for key, value in snapshot.get("counters", {}).items():
        name, labels = _split_key(key)
        header(name, "counter")
        lines.append(f"{name}{_prom_labels(labels)} {_prom_num(value)}")
    for key, value in snapshot.get("gauges", {}).items():
        name, labels = _split_key(key)
        header(name, "gauge")
        lines.append(f"{name}{_prom_labels(labels)} {_prom_num(value)}")
    for key, h in snapshot.get("histograms", {}).items():
        name, labels = _split_key(key)
        header(name, "histogram")
        cumulative = 0
        for idx in sorted(int(i) for i in h.get("buckets", {})):
            cumulative += h["buckets"][str(idx)]
            le = "0" if idx == 0 else str((1 << idx) - 1)
            lines.append(f"{name}_bucket"
                         f"{_prom_labels({**labels, 'le': le})} "
                         f"{cumulative}")
        lines.append(f"{name}_bucket"
                     f"{_prom_labels({**labels, 'le': '+Inf'})} "
                     f"{h['count']}")
        lines.append(f"{name}_sum{_prom_labels(labels)} "
                     f"{_prom_num(h['sum'])}")
        lines.append(f"{name}_count{_prom_labels(labels)} {h['count']}")
    return "\n".join(lines) + ("\n" if lines else "")
