"""Grid → SM thread-block dispatch, sharing-aware.

Per SM the dispatcher materialises the :class:`~repro.core.sharing.SharingPlan`
as a fixed set of *slots*: ``U`` unshared slots plus ``S`` pairs of two
shared slots each.  Initial fill is round-robin across SMs in grid order
(GPGPU-Sim's behaviour).  When a block completes, the next grid block is
launched into the freed slot — in sharing mode if the slot belongs to a
pair, which is exactly the paper's "as soon as the owner thread block
finishes ... a new non-owner thread block gets launched".
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.sharing import SharingPlan
from repro.isa.kernel import Kernel
from repro.sim.block import BlockContext, SharePair

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.sm import SMCore

__all__ = ["Dispatcher"]


class _Slot:
    """One launch slot on an SM (unshared, or one side of a pair)."""

    __slots__ = ("pair", "side", "block")

    def __init__(self, pair: Optional[SharePair], side: int) -> None:
        self.pair = pair
        self.side = side
        self.block: Optional[BlockContext] = None


class Dispatcher:
    """Owns grid progress and per-SM slots."""

    def __init__(self, kernel: Kernel, plan: SharingPlan | None,
                 sms: list["SMCore"], baseline_blocks: int) -> None:
        if baseline_blocks < 1:
            raise ValueError("baseline_blocks must be >= 1")
        self.kernel = kernel
        self.plan = plan
        self.sms = sms
        self.next_block = 0
        self.completed = 0
        self._slots: list[list[_Slot]] = []
        for _ in sms:
            slots: list[_Slot] = []
            if plan is not None and plan.enabled:
                for _u in range(plan.unshared):
                    slots.append(_Slot(None, 0))
                for _p in range(plan.pairs):
                    pair = SharePair(plan.spec.resource,
                                     kernel.warps_per_block)
                    slots.append(_Slot(pair, 0))
                    slots.append(_Slot(pair, 1))
            else:
                base = plan.baseline if plan is not None else baseline_blocks
                for _u in range(base):
                    slots.append(_Slot(None, 0))
            self._slots.append(slots)

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        """True when every grid block has completed."""
        return self.completed >= self.kernel.grid_blocks

    @property
    def blocks_per_sm(self) -> int:
        """Slots per SM (the launch capacity the plan provides)."""
        return len(self._slots[0]) if self._slots else 0

    def share_pairs(self):
        """Iterate every distinct :class:`SharePair` across all SMs
        (sanitizer lock audits and deadlock reports walk these)."""
        seen: set[int] = set()
        for slots in self._slots:
            for slot in slots:
                if slot.pair is not None and id(slot.pair) not in seen:
                    seen.add(id(slot.pair))
                    yield slot.pair

    # ------------------------------------------------------------------
    def initial_fill(self, cycle: int = 0) -> None:
        """Launch the initial wave, round-robin across SMs in grid order."""
        depth = self.blocks_per_sm
        for slot_idx in range(depth):
            for sm in self.sms:
                if self.next_block >= self.kernel.grid_blocks:
                    return
                self._launch(sm, self._slots[sm.sm_id][slot_idx], cycle)

    def _launch(self, sm: "SMCore", slot: _Slot, cycle: int) -> None:
        block = BlockContext(self.next_block, sm.sm_id,
                             self.kernel.warps_per_block, cycle)
        self.next_block += 1
        slot.block = block
        if slot.pair is not None:
            slot.pair.attach(block, slot.side)
            sm.wire_pair(slot.pair)
        sm.launch_block(block, cycle)

    # ------------------------------------------------------------------
    def on_block_done(self, sm: "SMCore", block: BlockContext,
                      cycle: int) -> None:
        """Account a completed block and refill its slot if work remains."""
        self.completed += 1
        slots = self._slots[sm.sm_id]
        slot = next(s for s in slots if s.block is block)
        if slot.pair is not None:
            slot.pair.detach(block)
        slot.block = None
        if self.next_block < self.kernel.grid_blocks:
            self._launch(sm, slot, cycle)
