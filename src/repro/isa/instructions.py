"""Instruction and memory-descriptor records."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

from repro.isa.opcodes import (MEM_OPS, GLOBAL_OPS, MemSpace,
                               Op, Pattern, op_group)

__all__ = ["MemDesc", "Instr"]


@dataclass(frozen=True)
class MemDesc:
    """Describes how one memory instruction touches memory.

    Global descriptors
        ``pattern``/``txn`` determine how many 128-byte transactions the
        coalescer emits per warp execution of the instruction.
        ``footprint`` is the size in bytes of the region the instruction
        walks; addresses wrap modulo the footprint, so a footprint smaller
        than the cache captures reuse, while a large footprint streams.
        ``block_private`` selects whether each thread block walks its own
        slice of the region (True: more resident blocks → proportionally
        larger aggregate working set, the cache-contention effect the
        paper discusses for LIB/mri-q) or all blocks share one region
        (False: inter-block reuse).

    Shared (scratchpad) descriptors
        ``offset``/``stride``/``wrap`` give the byte offset sequence
        ``(offset + i*stride) mod wrap`` across loop iterations ``i``;
        ``wrap == 0`` means the offset is constant.  Whether an offset
        falls in the private or the shared scratchpad partition is decided
        at run time against the sharing threshold (paper Fig. 4).
    """

    space: MemSpace
    # -- global --
    pattern: Pattern = Pattern.COALESCED
    txn: int = 1
    footprint: int = 0
    block_private: bool = True
    region: str = "g0"
    # -- shared --
    offset: int = 0
    stride: int = 0
    wrap: int = 0
    #: Scratchpad bank-conflict degree: lanes hit ``conflicts`` distinct
    #: rows of the same bank, serialising the access (1 = conflict-free).
    conflicts: int = 1

    def __post_init__(self) -> None:
        if self.space is MemSpace.GLOBAL:
            if self.txn < 1 or self.txn > 32:
                raise ValueError("txn must be in 1..32")
            if self.footprint <= 0:
                raise ValueError("global footprint must be positive")
        else:
            if self.offset < 0 or self.stride < 0 or self.wrap < 0:
                raise ValueError("shared offsets must be non-negative")
            if not 1 <= self.conflicts <= 32:
                raise ValueError("conflicts must be in 1..32")


@dataclass(frozen=True)
class Instr:
    """One static instruction.

    ``dst``/``src`` are *per-thread register sequence numbers* — the same
    numbers the paper's Fig. 3 access check compares against ``Rw*t`` and
    the Sec. IV-B pass renumbers.  All 32 lanes of a warp execute the
    instruction together, so the simulator tracks registers at warp
    granularity using these per-thread indices.
    """

    op: Op
    dst: Tuple[int, ...] = ()
    src: Tuple[int, ...] = ()
    mem: MemDesc | None = None

    # Derived metadata, precomputed once at construction so the
    # simulator's issue loop never recomputes it per dynamic instruction
    # (non-field attributes: they do not participate in eq/repr/replace).
    #
    # ``group``    — functional group ("alu"/"sfu"/"global"/"shared"/
    #                "bar"/"exit"), formerly looked up per issue.
    # ``regs``     — all register indices, dst first (was a property
    #                that rebuilt the tuple on every scoreboard check).
    # ``max_reg``  — highest register index (-1 if none); the Fig. 3
    #                shared-access check reduces to ``max_reg >= Rw·t``.
    # ``uses_port``— True for global/shared memory instructions (the
    #                single LD/ST port structural constraint).
    group: str = field(init=False, repr=False, compare=False)
    regs: Tuple[int, ...] = field(init=False, repr=False, compare=False)
    max_reg: int = field(init=False, repr=False, compare=False)
    uses_port: bool = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.op in MEM_OPS:
            if self.mem is None:
                raise ValueError(f"{self.op.name} requires a MemDesc")
            want = MemSpace.GLOBAL if self.op in GLOBAL_OPS else MemSpace.SHARED
            if self.mem.space is not want:
                raise ValueError(
                    f"{self.op.name} descriptor has space {self.mem.space}")
        elif self.mem is not None:
            raise ValueError(f"{self.op.name} cannot carry a MemDesc")
        regs = (*self.dst, *self.src)
        for r in regs:
            if r < 0:
                raise ValueError("register indices must be non-negative")
        group = op_group(self.op)
        object.__setattr__(self, "group", group)
        object.__setattr__(self, "regs", regs)
        object.__setattr__(self, "max_reg", max(regs, default=-1))
        object.__setattr__(self, "uses_port",
                           group == "global" or group == "shared")

    def remap(self, mapping: dict[int, int]) -> "Instr":
        """Return a copy with registers renumbered through ``mapping``.

        Used by the unroll-and-reorder pass (Sec. IV-B).  Registers not in
        the mapping are left unchanged.
        """
        return replace(
            self,
            dst=tuple(mapping.get(r, r) for r in self.dst),
            src=tuple(mapping.get(r, r) for r in self.src),
        )
