"""Fixed-width text rendering of experiment results."""

from __future__ import annotations

from typing import Iterable

from repro.harness.experiments import ExperimentResult

__all__ = ["format_table", "render_experiment", "bar_chart"]


def _fmt(v: object) -> str:
    if isinstance(v, float):
        return f"{v:.2f}"
    if v is None:
        return "-"
    return str(v)


def format_table(columns: list[str], rows: Iterable[dict]) -> str:
    """Render dict rows as an aligned fixed-width table."""
    rows = list(rows)
    cells = [[_fmt(r.get(c)) for c in columns] for r in rows]
    widths = [max(len(c), *(len(row[i]) for row in cells)) if cells
              else len(c) for i, c in enumerate(columns)]
    sep = "  "
    out = [sep.join(c.ljust(w) for c, w in zip(columns, widths))]
    out.append(sep.join("-" * w for w in widths))
    for row in cells:
        out.append(sep.join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def bar_chart(rows, label_key: str, value_key: str, *,
              width: int = 44) -> str:
    """ASCII horizontal bar chart for one numeric column.

    Negative values extend left of the axis, positive right — matching
    the look of the paper's improvement figures.  Every nonzero value
    renders at least one ``#`` (a small positive value used to round to
    an empty bar while any negative one was forced to a glyph), and
    bars are clamped to the chart width so the forced glyph can never
    push a row past the value column.
    """
    rows = [r for r in rows if isinstance(r.get(value_key), (int, float))]
    if not rows:
        return "(no numeric data)"
    vals = [float(r[value_key]) for r in rows]
    lo, hi = min(min(vals), 0.0), max(max(vals), 0.0)
    span = (hi - lo) or 1.0
    lw = max(len(str(r[label_key])) for r in rows)
    zero = round((0.0 - lo) / span * width)
    # Reserve a column on each side that has values, so the minimum
    # one-glyph bar fits even when the axis rounds to the chart edge.
    if any(v < 0 for v in vals):
        zero = max(zero, 1)
    if any(v > 0 for v in vals):
        zero = min(zero, width - 1)
    out = [f"{'':{lw}s}  {value_key}"]
    for r, v in zip(rows, vals):
        pos = min(width, max(0, round((v - lo) / span * width)))
        if v > 0:
            n = min(max(1, pos - zero), width - zero)
            bar = " " * zero + "|" + "#" * n
        elif v < 0:
            n = min(max(1, zero - pos), zero)
            bar = " " * (zero - n) + "#" * n + "|"
        else:
            bar = " " * zero + "|"
        out.append(f"{str(r[label_key]):{lw}s}  {bar:{width + 2}s} "
                   f"{v:8.2f}")
    return "\n".join(out)


def render_experiment(res: ExperimentResult) -> str:
    """Title + table + notes."""
    parts = [f"== {res.title} ==", format_table(res.columns, res.rows)]
    if res.notes:
        parts.append(f"note: {res.notes}")
    return "\n".join(parts) + "\n"
