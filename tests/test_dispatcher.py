"""Dispatcher slot management and sharing-aware refill."""

import pytest

from repro.config import GPUConfig
from repro.core.sharing import SharedResource, SharingSpec, plan_sharing
from repro.isa.builder import KernelBuilder
from repro.sim.gpu import GPU

CFG1 = GPUConfig().scaled(num_clusters=1)
CFG2 = GPUConfig().scaled(num_clusters=2)


def kernel(grid, block_size=256, regs=36, loops=3):
    b = KernelBuilder("d", block_size=block_size, regs=regs,
                      alloc="low_first")
    with b.loop(loops):
        b.alu_indep(2)
    return b.build().with_grid(grid)


class TestBaseline:
    def test_capacity_is_baseline_occupancy(self):
        gpu = GPU(kernel(10), CFG1)
        assert gpu.dispatcher.blocks_per_sm == 3  # hotspot geometry

    def test_initial_fill_round_robin(self):
        gpu = GPU(kernel(4), CFG2)
        gpu.dispatcher.initial_fill(0)
        # 4 blocks over 2 SMs: 2 each, interleaved by grid id
        ids0 = sorted(b.linear_id for sm in [gpu.sms[0]]
                      for w in sm.warps for b in [w.block])
        assert set(ids0) == {0, 2}

    def test_grid_smaller_than_capacity(self):
        gpu = GPU(kernel(1), CFG2)
        r = gpu.run()
        assert gpu.dispatcher.completed == 1
        assert r.max_resident_blocks == 1

    def test_refill_keeps_sm_full(self):
        gpu = GPU(kernel(12, loops=8), CFG1)
        r = gpu.run()
        assert r.max_resident_blocks == 3
        assert gpu.dispatcher.completed == 12

    def test_done_property(self):
        gpu = GPU(kernel(2), CFG1)
        assert not gpu.dispatcher.done
        gpu.run()
        assert gpu.dispatcher.done


class TestSharing:
    def _gpu(self, grid):
        k = kernel(grid, loops=4)
        plan = plan_sharing(k, CFG1, SharingSpec(SharedResource.REGISTERS,
                                                 0.1))
        return GPU(k, CFG1, plan=plan)

    def test_capacity_matches_plan(self):
        gpu = self._gpu(12)
        assert gpu.dispatcher.blocks_per_sm == 6

    def test_pairs_attached(self):
        gpu = self._gpu(12)
        gpu.dispatcher.initial_fill(0)
        paired = [w.block for sm in gpu.sms for w in sm.warps
                  if w.block.pair is not None]
        assert paired  # hotspot geometry: all blocks paired (U=0)
        for blk in paired:
            assert blk.pair.blocks[blk.side] is blk

    def test_refill_into_pair_side(self):
        gpu = self._gpu(14)
        gpu.run()
        assert gpu.dispatcher.completed == 14

    def test_pair_detached_on_completion(self):
        gpu = self._gpu(6)
        gpu.run()
        for sm in gpu.sms:
            assert sm.resident_blocks == 0

    def test_baseline_blocks_positive_required(self):
        from repro.sim.dispatcher import Dispatcher
        with pytest.raises(ValueError):
            Dispatcher(kernel(2), None, [], 0)
