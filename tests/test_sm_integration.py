"""SM-level integration: conservation, barriers, locks, taxonomy.

These run tiny kernels on a 1-SM machine and inspect the internals.
"""

import pytest

from repro.config import GPUConfig
from repro.core.sharing import SharedResource, SharingSpec, plan_sharing
from repro.isa.builder import KernelBuilder
from repro.sim.gpu import GPU, SimulationLimitExceeded

CFG1 = GPUConfig().scaled(num_clusters=1)


def simple_kernel(block_size=64, regs=8, loops=4, grid=2, smem=0, **kw):
    b = KernelBuilder("t", block_size=block_size, regs=regs, smem=smem, **kw)
    with b.loop(loops):
        b.alu_chain(2)
        b.alu_indep(2)
    return b.build().with_grid(grid)


class TestConservation:
    def test_instruction_count_exact(self):
        k = simple_kernel(grid=3)
        r = GPU(k, CFG1).run()
        assert r.instructions == k.dynamic_count * k.warps_per_block * 3

    def test_all_blocks_complete(self):
        k = simple_kernel(grid=7)
        gpu = GPU(k, CFG1)
        r = gpu.run()
        assert gpu.dispatcher.completed == 7
        assert sum(s.blocks_completed for s in r.sm_stats) == 7
        assert sum(s.blocks_launched for s in r.sm_stats) == 7

    def test_cycle_taxonomy_sums(self):
        k = simple_kernel(grid=4)
        r = GPU(k, CFG1).run()
        for s in r.sm_stats:
            assert s.total_cycles == r.cycles

    def test_no_warps_left_resident(self):
        gpu = GPU(simple_kernel(grid=2), CFG1)
        gpu.run()
        assert all(not sm.warps for sm in gpu.sms)
        assert all(sm.resident_blocks == 0 for sm in gpu.sms)

    def test_determinism(self):
        k = simple_kernel(grid=4, loops=6)
        a = GPU(k, CFG1).run()
        b = GPU(k, CFG1).run()
        assert a.cycles == b.cycles
        assert a.instructions == b.instructions
        assert a.summary() == b.summary()


class TestMemoryKernels:
    def test_loads_complete(self):
        b = KernelBuilder("m", block_size=64, regs=8)
        with b.loop(6):
            b.ldg(footprint=64 * 1024)
            b.alu_chain(2)
        k = b.build().with_grid(4)
        r = GPU(k, CFG1).run()
        assert r.mem["l1_accesses"] > 0
        assert r.instructions == k.dynamic_count * 2 * 4

    def test_stores_complete(self):
        b = KernelBuilder("s", block_size=64, regs=8)
        b.alu_indep(2)
        b.stg(footprint=4096)
        k = b.build().with_grid(2)
        r = GPU(k, CFG1).run()
        assert r.instructions == k.dynamic_count * 2 * 2

    def test_stall_cycles_appear_for_dependent_loads(self):
        b = KernelBuilder("m", block_size=32, regs=8)
        with b.loop(8):
            b.ldg(footprint=1 << 20)
            b.alu_chain(1)  # depends on the load
        k = b.build().with_grid(1)
        r = GPU(k, CFG1).run()
        assert r.stall_cycles > 0

    def test_scratchpad_latency(self):
        b = KernelBuilder("sp", block_size=32, regs=8, smem=512)
        with b.loop(4):
            b.lds(offset=0)
            b.alu_chain(1)
        k = b.build().with_grid(1)
        r = GPU(k, CFG1).run()
        assert r.cycles >= 4 * CFG1.latency.scratchpad


class TestBarriers:
    def test_barrier_kernel_completes(self):
        b = KernelBuilder("b", block_size=128, regs=8)
        b.alu_indep(2)
        b.bar()
        b.alu_indep(2)
        b.bar()
        b.alu_indep(1)
        k = b.build().with_grid(3)
        r = GPU(k, CFG1).run()
        assert r.instructions == k.dynamic_count * 4 * 3
        assert all(s.barriers == 2 * s.blocks_completed for s in r.sm_stats)

    def test_single_warp_block_barrier_is_trivial(self):
        b = KernelBuilder("b1", block_size=32, regs=8)
        b.alu_indep(1)
        b.bar()
        b.alu_indep(1)
        k = b.build().with_grid(2)
        r = GPU(k, CFG1).run()
        assert r.instructions == k.dynamic_count * 2

    def test_barrier_with_variance_outside_loop(self):
        b = KernelBuilder("bv", block_size=64, regs=8, variance=0.5)
        with b.loop(20):
            b.alu_indep(2)
        b.bar()
        b.alu_indep(1)
        k = b.build().with_grid(2)
        GPU(k, CFG1).run()  # must not deadlock


class TestRegisterSharingRuntime:
    def _run(self, scheduler="lrr", dyn=False, loops=6, grid=8):
        # 256 threads x 36 regs -> 3 baseline blocks, 6 shared (hotspot
        # geometry).
        b = KernelBuilder("rs", block_size=256, regs=36, alloc="low_first")
        with b.loop(loops):
            b.alu_chain(2)
            b.alu_indep(3)
        k = b.build().with_grid(grid)
        plan = plan_sharing(k, CFG1, SharingSpec(SharedResource.REGISTERS,
                                                 0.1))
        assert plan.enabled and plan.total == 6
        gpu = GPU(k, CFG1, scheduler=scheduler, plan=plan, dyn=dyn)
        return gpu, gpu.run()

    def test_completes_and_conserves(self):
        gpu, r = self._run()
        assert gpu.dispatcher.completed == 8
        assert r.instructions == 8 * 8 * (6 * 5 + 1)

    def test_locks_exercised(self):
        _, r = self._run()
        st = r.sm_stats[0]
        assert st.lock_acquires > 0

    def test_max_resident_blocks_doubles(self):
        _, r = self._run()
        assert r.max_resident_blocks == 6

    def test_owf_completes(self):
        gpu, r = self._run(scheduler="owf")
        assert gpu.dispatcher.completed == 8

    def test_owner_and_nonowner_issue_classes_seen(self):
        _, r = self._run(scheduler="owf", loops=10, grid=12)
        st = r.sm_stats[0]
        assert st.issued_owner > 0
        # unshared class never appears: all blocks are paired
        assert st.issued_unshared == 0

    def test_dyn_controller_attached_and_runs(self):
        gpu, r = self._run(dyn=True, loops=10)
        assert gpu.dyn is not None
        assert gpu.dyn.p[0] == 0.0


class TestScratchpadSharingRuntime:
    def _kernel(self, loops=6, barrier=False):
        # 7200 B/block -> 2 baseline blocks, 4 shared (lavaMD geometry).
        b = KernelBuilder("ss", block_size=128, regs=8, smem=7200)
        with b.loop(loops):
            b.lds(offset=0, stride=512, wrap=7200)
            b.alu_indep(2)
        if barrier:
            b.bar()
        b.alu_indep(1)
        return b.build()

    def test_completes(self):
        k = self._kernel().with_grid(8)
        plan = plan_sharing(k, CFG1,
                            SharingSpec(SharedResource.SCRATCHPAD, 0.1))
        assert plan.enabled and plan.total == 4
        gpu = GPU(k, CFG1, plan=plan)
        r = gpu.run()
        assert gpu.dispatcher.completed == 8
        assert r.sm_stats[0].lock_acquires > 0

    def test_private_only_access_never_locks(self):
        b = KernelBuilder("ss", block_size=128, regs=8, smem=7200)
        with b.loop(6):
            b.lds(offset=0, stride=64, wrap=640)  # stays below t*Rtb
            b.alu_indep(2)
        k = b.build().with_grid(8)
        plan = plan_sharing(k, CFG1,
                            SharingSpec(SharedResource.SCRATCHPAD, 0.1))
        gpu = GPU(k, CFG1, plan=plan)
        r = gpu.run()
        assert r.sm_stats[0].lock_acquires == 0
        assert r.sm_stats[0].lock_waits == 0

    def test_barrier_plus_sharing_no_deadlock(self):
        # The Fig. 5 scenario generalised: barriers + shared-pool waits.
        k = self._kernel(barrier=True).with_grid(8)
        plan = plan_sharing(k, CFG1,
                            SharingSpec(SharedResource.SCRATCHPAD, 0.1))
        gpu = GPU(k, CFG1, plan=plan)
        gpu.run(max_cycles=500_000)  # raises on deadlock / runaway


class TestGuards:
    def test_runaway_guard(self):
        k = simple_kernel(loops=200, grid=64)
        with pytest.raises(SimulationLimitExceeded):
            GPU(k, CFG1).run(max_cycles=50)
