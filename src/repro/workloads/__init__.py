"""Synthetic benchmark applications.

One application per row of the paper's Tables II (register-limited),
III (scratchpad-limited) and IV (thread/block-limited).  Each app matches
the paper's *resource signature* exactly (threads/block, registers/thread,
scratchpad bytes/block — these drive every occupancy and sharing
decision) and approximates the qualitative behaviour class the paper
describes (compute-bound, divergent-memory, cache-sensitive, ...).
"""

from repro.workloads.apps import App, build_app, APPS
from repro.workloads.suites import SET1, SET2, SET3, suite_apps

__all__ = ["App", "build_app", "APPS", "SET1", "SET2", "SET3", "suite_apps"]
