"""Harness: modes, runner, experiment registry, report rendering."""

import pytest

from repro.config import GPUConfig
from repro.core.sharing import SharedResource
from repro.harness.experiments import (EXPERIMENTS, SHARING_PCTS,
                                       run_experiment)
from repro.harness.report import format_table, render_experiment
from repro.harness.runner import Mode, improvement, run, shared, unshared
from repro.workloads.apps import APPS

REG = SharedResource.REGISTERS
SPAD = SharedResource.SCRATCHPAD
FAST = dict(config=GPUConfig().scaled(num_clusters=2), scale=0.25,
            waves=1.5)


class TestModeLabels:
    def test_unshared_labels(self):
        assert unshared("lrr").label == "Unshared-LRR"
        assert unshared("gto").label == "Unshared-GTO"
        assert unshared("two_level").label == "Unshared-2LV"

    def test_paper_mode_labels(self):
        assert shared(REG, "lrr").label == "Shared-LRR-NoOpt"
        assert shared(REG, "lrr", unroll=True).label == "Shared-LRR-Unroll"
        assert shared(REG, "lrr", unroll=True, dyn=True).label == \
            "Shared-LRR-Unroll-Dyn"
        assert shared(REG, "owf", unroll=True, dyn=True).label == \
            "Shared-OWF-Unroll-Dyn"
        assert shared(SPAD, "owf").label == "Shared-OWF"

    def test_dyn_requires_register_sharing(self):
        with pytest.raises(ValueError):
            Mode(label="x", sharing=SPAD, dyn=True)
        with pytest.raises(ValueError):
            Mode(label="x", unroll=True)


class TestRunner:
    def test_run_returns_result(self):
        r = run(APPS["hotspot"], unshared("lrr"), **FAST)
        assert r.ipc > 0
        assert r.kernel == "hotspot"
        assert r.mode == "Unshared-LRR"

    def test_grid_sizing_identical_across_modes(self):
        a = run(APPS["hotspot"], unshared("lrr"), **FAST)
        b = run(APPS["hotspot"], shared(REG, "owf", unroll=True), **FAST)
        assert a.instructions == b.instructions  # same total work

    def test_grid_blocks_override(self):
        r = run(APPS["hotspot"], unshared("lrr"), grid_blocks=2, **FAST)
        assert r.instructions > 0

    def test_sharing_mode_reports_plan_blocks(self):
        r = run(APPS["hotspot"], shared(REG, "lrr"), **FAST)
        assert r.blocks_baseline == 3
        assert r.blocks_total == 6

    def test_improvement_metric(self):
        a = run(APPS["hotspot"], unshared("lrr"), **FAST)
        assert improvement(a, a) == 0.0


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        expected = {"fig1", "fig8a", "fig8b", "fig8c", "fig8d", "fig9a",
                    "fig9b", "fig9c", "fig9d", "fig10a", "fig10b",
                    "fig10c", "fig10d", "fig11a", "fig11b", "fig12a",
                    "fig12b", "table5", "table6", "table7", "table8",
                    "hw_overhead"}
        assert expected <= set(EXPERIMENTS)
        extras = set(EXPERIMENTS) - expected
        assert all(e.startswith("ext_") for e in extras)

    def test_unknown_experiment(self):
        with pytest.raises(ValueError):
            run_experiment("fig99")

    def test_sharing_pcts_match_paper(self):
        assert SHARING_PCTS == (0, 10, 30, 50, 70, 90)


class TestNoSimExperiments:
    """Experiments that need no simulation run at full fidelity in tests."""

    def test_fig1_matches_paper_occupancy(self):
        res = run_experiment("fig1")
        rows = {r["app"]: r for r in res.rows}
        assert rows["hotspot"]["blocks"] == 3
        assert rows["lavaMD"]["blocks"] == 2
        assert rows["hotspot"]["reg_waste_pct"] == pytest.approx(15.62, abs=0.01)

    def test_fig8a_blocks(self):
        res = run_experiment("fig8a")
        for row in res.rows:
            assert row["blocks_unshared"] == row["paper_unshared"]
            assert row["blocks_shared"] == row["paper_shared"]

    def test_fig8b_blocks(self):
        res = run_experiment("fig8b")
        for row in res.rows:
            assert row["blocks_unshared"] == row["paper_unshared"]
            assert row["blocks_shared"] == row["paper_shared"]

    def test_table6_matches_paper_exactly(self):
        res = run_experiment("table6")
        rows = {r["app"]: r for r in res.rows}
        assert rows["hotspot"] == {"app": "hotspot", "0%": 3, "10%": 3,
                                   "30%": 3, "50%": 4, "70%": 4, "90%": 6}
        assert rows["LIB"]["90%"] == 8
        assert rows["stencil"]["90%"] == 3

    def test_table8_matches_paper_exactly(self):
        res = run_experiment("table8")
        rows = {r["app"]: r for r in res.rows}
        assert rows["lavaMD"] == {"app": "lavaMD", "0%": 2, "10%": 2,
                                  "30%": 2, "50%": 2, "70%": 2, "90%": 4}
        assert rows["NW1"]["50%"] == 8
        assert rows["SRAD2"]["90%"] == 5

    def test_hw_overhead(self):
        res = run_experiment("hw_overhead")
        vals = {r["quantity"]: r["value"] for r in res.rows}
        assert vals["register_sharing_bits_per_sm"] == 273
        assert vals["scratchpad_sharing_bits_per_sm"] == 93


class TestSimExperimentsSmoke:
    """Tiny-scale smoke of every simulation-backed experiment."""

    @pytest.mark.parametrize("exp", ["fig8c", "fig8d", "fig9b", "fig10a",
                                     "fig12b"])
    def test_runs_and_has_rows(self, exp):
        res = run_experiment(exp, **FAST)
        assert res.rows
        assert res.columns
        for row in res.rows:
            for col in res.columns:
                assert col in row


class TestReport:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [{"a": 1, "bb": 2.5},
                                         {"a": 10, "bb": None}])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "2.50" in lines[2]
        assert "-" in lines[3]

    def test_render_experiment(self):
        res = run_experiment("hw_overhead")
        text = render_experiment(res)
        assert res.title in text
        assert "register_sharing_bits_per_sm" in text

    def test_empty_rows(self):
        assert format_table(["x"], []).splitlines()[0] == "x"


class TestBarChart:
    def test_positive_bars(self):
        from repro.harness.report import bar_chart
        rows = [{"app": "a", "v": 10.0}, {"app": "bb", "v": 5.0}]
        text = bar_chart(rows, "app", "v")
        lines = text.splitlines()
        assert len(lines) == 3
        assert lines[1].count("#") > lines[2].count("#")

    def test_negative_values_left_of_axis(self):
        from repro.harness.report import bar_chart
        rows = [{"app": "up", "v": 10.0}, {"app": "dn", "v": -10.0}]
        text = bar_chart(rows, "app", "v")
        up, dn = text.splitlines()[1:3]
        assert up.index("|") < up.index("#")
        assert dn.index("#") < dn.index("|")

    def test_non_numeric_skipped(self):
        from repro.harness.report import bar_chart
        assert bar_chart([{"app": "x", "v": None}], "app", "v") == \
            "(no numeric data)"
