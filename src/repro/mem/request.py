"""Warp access → cache-line addresses (the coalescer).

A global memory instruction carries a :class:`~repro.isa.instructions.MemDesc`
describing the warp-level pattern.  :func:`coalesce_lines` turns one
dynamic execution of that instruction — identified by (block linear id,
warp index within the block, loop iteration) — into the set of 128-byte
line addresses the LD/ST unit must fetch.

Address layout
    Each (kernel region, block) pair gets a disjoint address range so that
    *block-private* regions of concurrently resident blocks contend for
    cache capacity — the first-order effect behind the paper's
    "additional blocks increase L1/L2 misses" observations.  Region bases
    are spaced far apart and include a large odd stride so set indices of
    different regions interleave rather than alias systematically.
"""

from __future__ import annotations

from repro.isa.instructions import MemDesc
from repro.isa.opcodes import Pattern

__all__ = ["AddressMap", "coalesce_lines", "mix64"]

_REGION_SPACING = 1 << 34  # bytes between region bases (sparse layout)


def mix64(x: int) -> int:
    """SplitMix64 finaliser — a cheap deterministic 64-bit hash."""
    x = (x + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return x ^ (x >> 31)


class AddressMap:
    """Assigns stable base addresses to kernel memory regions."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._bases: dict[str, int] = {}

    def region_base(self, region: str) -> int:
        """Base byte address of ``region`` (assigned on first use)."""
        base = self._bases.get(region)
        if base is None:
            idx = len(self._bases)
            # Sparse, deterministic, and offset by an odd line-multiple so
            # regions don't all start at cache set 0.
            base = idx * _REGION_SPACING + (mix64(self.seed + idx) % 4096) * 128
            self._bases[region] = base
        return base

    def block_base(self, mem: MemDesc, block_linear: int) -> int:
        """Base address of the slice ``block_linear`` walks for ``mem``."""
        base = self.region_base(mem.region)
        if mem.block_private:
            base += block_linear * mem.footprint
        return base


def coalesce_lines(mem: MemDesc, amap: AddressMap, *, block_linear: int,
                   warp_in_block: int, warps_per_block: int, iter_idx: int,
                   line_size: int, seed: int) -> tuple[int, ...]:
    """Line addresses one warp execution of a global instruction touches.

    Returns ``mem.txn`` line addresses (1 for COALESCED/BROADCAST).
    Addresses wrap modulo the region footprint, so small footprints
    produce reuse and large footprints stream.
    """
    base = amap.block_base(mem, block_linear)
    n_lines = max(1, mem.footprint // line_size)
    if mem.pattern is Pattern.COALESCED:
        # Unit-stride streaming: each warp walks consecutive lines of its
        # (or the shared) region, one line per iteration.
        lane = warp_in_block if mem.block_private else (
            block_linear * warps_per_block + warp_in_block)
        line_off = (lane * 17 + iter_idx) % n_lines
        return (base // line_size * line_size + line_off * line_size,)
    if mem.pattern is Pattern.BROADCAST:
        line_off = (iter_idx * 3) % n_lines
        return (base // line_size * line_size + line_off * line_size,)
    out = []
    if mem.pattern is Pattern.STRIDED:
        # txn equally spaced lines per access, advancing each iteration.
        stride = max(1, n_lines // max(1, mem.txn))
        start = (warp_in_block + iter_idx * mem.txn) % n_lines
        for k in range(mem.txn):
            line_off = (start + k * stride) % n_lines
            out.append(base // line_size * line_size + line_off * line_size)
        return tuple(out)
    # RANDOM: txn pseudo-random lines (MUM-style divergent gather).
    key = (seed << 1) ^ (block_linear * 0x10001) ^ (warp_in_block << 20)
    for k in range(mem.txn):
        h = mix64(key + iter_idx * 131 + k)
        line_off = h % n_lines
        out.append(base // line_size * line_size + line_off * line_size)
    return tuple(out)
