"""Fault-injection harness + the chaos acceptance scenario."""

import pytest

from repro.config import GPUConfig
from repro.harness.engine import Engine, ResultCache, RunSpec
from repro.harness.faults import (CRASH_EXIT_CODE, FAULT_KINDS,
                                  FaultInjector, FaultSpec, InjectedCrash,
                                  InjectedError, corrupt_cache_entry)
from repro.harness.resilience import RetryPolicy, RunFailure
from repro.harness.runner import unshared
from repro.sim.gpu import SimulationDeadlock
from repro.workloads.apps import APPS

CFG = GPUConfig().scaled(num_clusters=1)
FAST = dict(config=CFG, scale=0.15, waves=1.0)

CHAOS_APPS = ("gaussian", "SRAD1", "backprop", "hotspot", "MUM", "BFS",
              "NW1", "b+tree")


def spec(app="gaussian", **kw):
    params = {**FAST, **kw}
    return RunSpec.create(APPS[app], unshared("lrr"), **params)


class TestFaultSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSpec("meteor")
        with pytest.raises(ValueError):
            FaultSpec("crash", until_attempt=0)
        assert FaultSpec("hang", seconds=2.0).seconds == 2.0

    def test_kinds_frozen(self):
        assert set(FAULT_KINDS) == {"crash", "hang", "error", "deadlock"}
        assert CRASH_EXIT_CODE == 70


class TestFaultInjector:
    def test_noop_without_plan(self):
        FaultInjector().fire("deadbeef", 1, hard=False)  # must not raise

    def test_until_attempt_gates(self):
        inj = FaultInjector().add("d1", "error", until_attempt=2)
        with pytest.raises(InjectedError):
            inj.fire("d1", 1, hard=False)
        with pytest.raises(InjectedError):
            inj.fire("d1", 2, hard=False)
        inj.fire("d1", 3, hard=False)  # past the gate: no-op

    def test_soft_crash_raises(self):
        inj = FaultInjector().add("d1", "crash")
        with pytest.raises(InjectedCrash):
            inj.fire("d1", 1, hard=False)

    def test_deadlock_raises_simulation_deadlock(self):
        inj = FaultInjector().add("d1", "deadlock")
        with pytest.raises(SimulationDeadlock, match="injected"):
            inj.fire("d1", 1, hard=False)

    def test_hang_returns_after_sleep(self):
        inj = FaultInjector().add("d1", "hang", seconds=0.01)
        inj.fire("d1", 1, hard=False)  # returns

    def test_picklable(self):
        import pickle
        inj = FaultInjector().add("d1", "crash", until_attempt=2)
        clone = pickle.loads(pickle.dumps(inj))
        assert clone.plan == inj.plan

    def test_seeded_deterministic(self):
        digests = [f"{i:064x}" for i in range(200)]
        a = FaultInjector.seeded(7, digests, rate=0.2)
        b = FaultInjector.seeded(7, digests, rate=0.2)
        c = FaultInjector.seeded(8, digests, rate=0.2)
        assert a.plan == b.plan
        assert a.plan != c.plan
        assert 10 < len(a.plan) < 80  # ~20% of 200
        assert all(f.until_attempt == 1 for f in a.plan.values())


class TestCorruptCacheEntry:
    def test_unknown_mode_rejected(self, tmp_path):
        cache = ResultCache(tmp_path)
        with pytest.raises(ValueError):
            corrupt_cache_entry(cache, "0" * 64, "sledgehammer")

    def test_garbage_creates_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        corrupt_cache_entry(cache, "ab" * 32, "garbage")
        assert cache.path("ab" * 32).is_file()
        assert cache.get("ab" * 32) is None
        assert cache.quarantined == 1


class TestChaosAcceptance:
    """ISSUE.md acceptance scenario, on the real process pool.

    A batch of 8 specs with one persistent crash, one hang (tripping
    the watchdog), one injected deadlock, one *transient* crash and one
    corrupted cache entry must complete the 5 healthy runs, return
    exactly 3 RunFailures with the right categories, retry the
    transient crash to success, and quarantine + re-simulate the
    corrupted entry.
    """

    def test_chaos_batch(self, tmp_path):
        specs = [spec(a) for a in CHAOS_APPS]
        ds = [s.digest() for s in specs]
        cache = ResultCache(tmp_path / "cache")

        # Pre-cache the last (healthy) spec, then corrupt its entry.
        warm = Engine(jobs=1, cache=cache)
        expected_last = warm.run_one(specs[-1])
        corrupt_cache_entry(cache, ds[-1], "truncate")

        inj = (FaultInjector()
               .add(ds[0], "crash")                    # persistent
               .add(ds[1], "hang", seconds=10.0)       # -> watchdog
               .add(ds[2], "deadlock")
               .add(ds[3], "crash", until_attempt=1))  # transient
        eng = Engine(jobs=4, cache=cache, faults=inj, timeout=1.5,
                     retry=RetryPolicy(backoff_base=0.01))
        results = eng.run_batch(specs)

        failures = {i: r for i, r in enumerate(results)
                    if isinstance(r, RunFailure)}
        assert set(failures) == {0, 1, 2}
        assert failures[0].category == "crash"
        assert failures[1].category == "timeout"
        assert failures[2].category == "deadlock"
        assert failures[2].exception_type == "SimulationDeadlock"
        assert "injected" in failures[2].message

        # The other 5 runs completed despite the carnage.
        for i in range(3, len(specs)):
            assert results[i].ok, f"spec {i} should have succeeded"
        # Transient crash retried within the backoff budget.
        assert eng.stats.retries > 0
        assert eng.stats.timeouts == 1
        assert eng.stats.failures == 3
        # Corrupted entry was quarantined and re-simulated bit-identically.
        assert eng.stats.quarantined == 1
        assert results[-1].to_dict() == expected_last.to_dict()
        assert list(cache.quarantine_dir().iterdir())

    def test_pool_transient_crash_blamed_precisely(self):
        # A hard (os._exit) crash kills the whole pool; innocent
        # co-scheduled specs must NOT be charged retry attempts.
        specs = [spec(a) for a in CHAOS_APPS[:4]]
        inj = FaultInjector().add(specs[0].digest(), "crash",
                                  until_attempt=1)
        eng = Engine(jobs=4, cache=False, faults=inj,
                     retry=RetryPolicy(max_attempts=2, backoff_base=0.01))
        results = eng.run_batch(specs)
        assert all(r.ok for r in results)
        assert eng.stats.failures == 0


class TestNoFaultBitIdentity:
    def test_jobs1_no_faults_identical_to_plain_run(self):
        from repro.harness.runner import run
        s = spec()
        eng = Engine(jobs=1, cache=False, timeout=None)
        res = eng.run_one(s)
        direct = run(APPS["gaussian"], unshared("lrr"), **FAST)
        assert res.to_dict() == direct.to_dict()

    def test_resilient_engine_matches_plain_engine(self):
        s = spec(app="hotspot")
        plain = Engine(jobs=1, cache=False).run_one(s)
        armed = Engine(jobs=1, cache=False, timeout=600.0,
                       retry=RetryPolicy(max_attempts=5),
                       faults=FaultInjector()).run_one(s)
        assert plain.to_dict() == armed.to_dict()
