"""Cycle-level GPU simulator (the GPGPU-Sim stand-in).

The top-level entry point is :class:`repro.sim.gpu.GPU`; most users go
through :func:`repro.harness.runner.run` instead, which wires a kernel,
a scheduler and a sharing configuration together.
"""

from repro.sim.stats import SMStats, RunResult
from repro.sim.warp import WarpContext, WarpState
from repro.sim.block import BlockContext, SharePair
from repro.sim.dispatcher import Dispatcher
from repro.sim.sm import SMCore
from repro.sim.gpu import GPU, SimulationLimitExceeded
from repro.sim.trace import TraceRecorder, TraceEvent

__all__ = [
    "SMStats",
    "RunResult",
    "WarpContext",
    "WarpState",
    "BlockContext",
    "SharePair",
    "Dispatcher",
    "SMCore",
    "GPU",
    "SimulationLimitExceeded",
    "TraceRecorder",
    "TraceEvent",
]
