"""Async simulation service: HTTP front end + batching scheduler.

The server owns three moving parts (docs/service.md has the full
semantics):

* an asyncio socket server speaking a deliberately small slice of
  HTTP/1.1 (one request per connection, ``Connection: close``) — no
  ``http.server``, no third-party framework;
* a **scheduler task** that claims compatible queued jobs from the
  :class:`~repro.service.store.JobStore` (priority, then FIFO), lets a
  short *coalescing window* pass so trickling submissions merge into
  one batch, and executes the batch through the ordinary
  :meth:`Engine.run_batch` in a worker thread — so the service
  inherits the engine's dedup, result cache, retries, timeouts and
  failure isolation verbatim rather than reimplementing them;
* **admission control**: a submission is rejected with ``429`` when
  the queue is too deep, the queued spec bytes exceed the bound, or
  the per-client token bucket is empty.  Load is shed at the door, not
  absorbed until the process falls over.

Durability: every result is persisted the moment it lands (the
engine's ``on_complete`` hook), so ``kill -TERM`` mid-batch loses
nothing — in-flight simulations finish and are stored, unstarted jobs
are requeued by the engine's cancellation token, and a later restart
:meth:`~repro.service.store.JobStore.recover`\\ s anything a hard kill
stranded in ``running``.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from urllib.parse import parse_qs, urlsplit

from repro.harness.engine import Engine, RunSpec
from repro.harness.resilience import RunFailure
from repro.obs.metrics import MetricsRegistry
from repro.service.serialize import failure_payload, result_payload
from repro.service.store import Job, JobStore
from repro.workloads.apps import APPS

__all__ = ["ServiceConfig", "ServiceServer", "TokenBucket"]

#: Hard cap on a request body; larger submissions get 413.
MAX_BODY_BYTES = 1 << 20

_REASONS = {
    "queue_depth": "queue depth bound reached",
    "queued_bytes": "queued spec bytes bound reached",
    "rate": "per-client rate limit exceeded",
}

_STATUS_TEXT = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}


@dataclass
class ServiceConfig:
    """Tunables for one :class:`ServiceServer`."""

    host: str = "127.0.0.1"
    port: int = 8070                 #: 0 = pick an ephemeral port
    db_path: str | Path = "repro-jobs.sqlite"
    batch_max: int = 16              #: max jobs coalesced per run_batch
    batch_wait: float = 0.05         #: coalescing window (seconds)
    poll_interval: float = 0.05      #: scheduler idle poll (seconds)
    max_queue_depth: int = 256       #: admission bound: queued jobs
    max_queued_bytes: int = 8 << 20  #: admission bound: queued spec bytes
    rate_limit: float = 0.0          #: per-client submits/sec (0 = off)
    rate_burst: int = 20             #: token-bucket burst size
    wait_poll: float = 0.05          #: long-poll check interval
    wait_max: float = 60.0           #: cap on one long-poll request
    start_paused: bool = False       #: scheduler idles until unpaused


class TokenBucket:
    """Classic token bucket: ``rate`` refills/sec up to ``burst``."""

    __slots__ = ("rate", "burst", "tokens", "stamp")

    def __init__(self, rate: float, burst: int) -> None:
        self.rate = rate
        self.burst = float(max(1, burst))
        self.tokens = self.burst
        self.stamp = time.monotonic()

    def allow(self) -> bool:
        """Consume one token if available."""
        now = time.monotonic()
        self.tokens = min(self.burst,
                          self.tokens + (now - self.stamp) * self.rate)
        self.stamp = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


@dataclass
class _BatchState:
    """Bookkeeping for the batch currently inside ``run_batch``."""

    jobs_by_digest: dict[str, list[Job]] = field(default_factory=dict)
    job_ids: set[str] = field(default_factory=set)


class ServiceServer:
    """The long-running simulation service (see module docstring).

    ``engine_opts`` are passed through to :class:`Engine` — the service
    composes with every engine feature (``jobs=``, ``cache=``,
    ``timeout=``, ``retry=``, ``faults=`` for chaos drills...).  One
    engine exists per batch-compatibility key (currently the
    ``sanitize`` flag, which is engine-level), created lazily; they
    share the same cache directory, so results flow between them.
    """

    def __init__(self, config: ServiceConfig | None = None, *,
                 engine_opts: dict | None = None) -> None:
        self.config = config or ServiceConfig()
        self.engine_opts = dict(engine_opts or {})
        self.engine_opts.pop("sanitize", None)  # batch key, not an opt
        self.store = JobStore(self.config.db_path)
        self.recovered = self.store.recover()
        self.registry = MetricsRegistry()
        self.paused = self.config.start_paused
        #: Engine drain token — set once, at shutdown.
        self.cancel = threading.Event()
        self.draining = False
        self.started_at = time.time()
        self._engines: dict[bool, Engine] = {}
        self._buckets: dict[str, TokenBucket] = {}
        self._batch: _BatchState | None = None
        self._mlock = threading.Lock()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._shutdown_ev: asyncio.Event | None = None
        self._handlers: set[asyncio.Task] = set()
        self._ready = threading.Event()
        self._thread: threading.Thread | None = None
        self._startup_error: BaseException | None = None
        self.port: int | None = None
        if self.recovered:
            with self._mlock:
                self.registry.counter("service_jobs_recovered_total") \
                    .inc(self.recovered)

    # -- lifecycle -----------------------------------------------------
    def run(self, *, install_signal_handlers: bool = True) -> None:
        """Serve until :meth:`request_shutdown` (or SIGTERM/SIGINT)."""
        try:
            asyncio.run(self._main(install_signal_handlers))
        except BaseException as exc:  # surface startup errors to tests
            self._startup_error = exc
            self._ready.set()
            raise

    def start_in_thread(self) -> "ServiceServer":
        """Run the server on a background thread (tests, embedding).

        Blocks until the port is bound; raises if startup failed.
        """
        self._thread = threading.Thread(
            target=self.run, kwargs={"install_signal_handlers": False},
            daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("service did not start within 30s")
        if self._startup_error is not None:
            raise RuntimeError("service failed to start") \
                from self._startup_error
        return self

    def stop(self, timeout: float = 60.0) -> None:
        """Graceful shutdown + join (for :meth:`start_in_thread`)."""
        self.request_shutdown()
        if self._thread is not None:
            self._thread.join(timeout)
            if self._thread.is_alive():
                raise RuntimeError("service did not stop in time")

    def request_shutdown(self) -> None:
        """Thread-safe graceful-shutdown trigger (idempotent)."""
        loop, ev = self._loop, self._shutdown_ev
        if loop is not None and ev is not None and not loop.is_closed():
            loop.call_soon_threadsafe(ev.set)

    async def _main(self, install_signal_handlers: bool) -> None:
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._shutdown_ev = asyncio.Event()
        if install_signal_handlers:
            for sig in (signal.SIGTERM, signal.SIGINT):
                loop.add_signal_handler(sig, self._shutdown_ev.set)
        server = await asyncio.start_server(
            self._handle_conn, self.config.host, self.config.port)
        self.port = server.sockets[0].getsockname()[1]
        scheduler = asyncio.create_task(self._scheduler())
        self._ready.set()
        try:
            await self._shutdown_ev.wait()
        finally:
            # Drain: stop accepting, tell the engine to finish only
            # what is already in flight, requeue the rest.
            self.draining = True
            self.cancel.set()
            server.close()
            await server.wait_closed()
            await scheduler
            for task in list(self._handlers):
                task.cancel()
            if self._handlers:
                await asyncio.gather(*self._handlers,
                                     return_exceptions=True)
            self.store.close()

    # -- scheduler -----------------------------------------------------
    def _engine_for(self, sanitize: bool) -> Engine:
        eng = self._engines.get(sanitize)
        if eng is None:
            eng = Engine(sanitize=sanitize or None, **self.engine_opts)
            self._engines[sanitize] = eng
        return eng

    async def _sleep(self, seconds: float) -> None:
        """Sleep, but wake immediately on shutdown."""
        assert self._shutdown_ev is not None
        try:
            await asyncio.wait_for(self._shutdown_ev.wait(),
                                   timeout=seconds)
        except asyncio.TimeoutError:
            pass

    async def _scheduler(self) -> None:
        cfg = self.config
        assert self._shutdown_ev is not None
        while not self._shutdown_ev.is_set():
            if self.paused or self.store.queue_depth() == 0:
                await self._sleep(cfg.poll_interval)
                continue
            # Coalescing window: give trickling submissions a moment
            # to merge into this batch before claiming.
            if cfg.batch_wait > 0 \
                    and self.store.queue_depth() < cfg.batch_max:
                await self._sleep(cfg.batch_wait)
                if self._shutdown_ev.is_set():
                    break
            jobs = self.store.claim(cfg.batch_max)
            if not jobs:
                continue
            loop = asyncio.get_running_loop()
            try:
                await loop.run_in_executor(None, self._execute_batch,
                                           jobs)
            except Exception as exc:  # defensive: never lose a batch
                for j in jobs:
                    self.store.fail(j.id, {
                        "schema": 1, "ok": False, "digest": j.digest,
                        "failure": {
                            "category": "error",
                            "exception_type": type(exc).__name__,
                            "message": f"service batch runner died: {exc}",
                            "spec_digest": j.digest,
                            "app": j.spec.get("app") or "?",
                            "mode": "?", "attempts": 1, "elapsed": 0.0,
                            "traceback_tail": "",
                        }})

    def _execute_batch(self, jobs: list[Job]) -> None:
        """Worker-thread body: one ``run_batch`` for the claimed jobs."""
        specs = []
        state = _BatchState()
        for job in jobs:
            spec = RunSpec.from_dict(job.spec)
            specs.append(spec)
            state.jobs_by_digest.setdefault(job.digest, []).append(job)
            state.job_ids.add(job.id)
        self._batch = state
        engine = self._engine_for(jobs[0].sanitize)
        with self._mlock:
            self.registry.counter("service_batches_total").inc()
            self.registry.histogram("service_batch_jobs") \
                .record(len(jobs))
        try:
            engine.run_batch(
                specs, cancel=self.cancel,
                on_complete=lambda ev: self._persist(state, ev))
        finally:
            self._batch = None

    def _persist(self, state: _BatchState, ev) -> None:
        """Durability hook: store each slot the moment it settles.

        Runs on the batch thread.  One engine event fans out to every
        job that shares the digest (in-batch dedup means N submitted
        jobs can ride one simulation).
        """
        digest = ev.spec.digest()
        res = ev.result
        now = time.time()
        for job in state.jobs_by_digest.get(digest, ()):
            if isinstance(res, RunFailure):
                if res.category == "cancelled":
                    # Drain: the run never started; hand the job back
                    # to the queue for the next server instance.
                    self.store.requeue([job.id])
                    outcome = "requeued"
                else:
                    self.store.fail(job.id, failure_payload(res))
                    outcome = "failed"
            else:
                self.store.finish(job.id, result_payload(
                    res, digest=digest, cached=ev.cached,
                    elapsed=ev.elapsed, spec=job.spec))
                outcome = "done"
            with self._mlock:
                self.registry.counter("service_jobs_finished_total",
                                      outcome=outcome).inc()
                if outcome != "requeued" and job.started_at:
                    self.registry.histogram("service_job_wait_ms").record(
                        max(0.0, (job.started_at - job.submitted_at))
                        * 1000.0)
                    self.registry.histogram("service_job_run_ms").record(
                        max(0.0, now - job.started_at) * 1000.0)

    # -- HTTP plumbing -------------------------------------------------
    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)
        try:
            await self._serve_one(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.CancelledError):
            pass  # client went away / shutdown — nothing to salvage
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass  # shutdown raced the close — the task ends either way

    async def _serve_one(self, reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter) -> None:
        request = await reader.readline()
        if not request:
            return
        try:
            method, target, _version = request.decode("ascii").split()
        except ValueError:
            await self._respond(writer, 400, {"error": "bad request line"})
            return
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            key, _, value = line.decode("latin-1").partition(":")
            headers[key.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0) or 0)
        if length > MAX_BODY_BYTES:
            await self._respond(writer, 413,
                                {"error": "request body too large",
                                 "limit": MAX_BODY_BYTES})
            return
        body = await reader.readexactly(length) if length else b""
        parts = urlsplit(target)
        query = {k: v[-1] for k, v in parse_qs(parts.query).items()}
        peer = writer.get_extra_info("peername")
        client = headers.get("x-repro-client") \
            or (f"{peer[0]}" if peer else "unknown")
        status, payload = await self._route(method, parts.path, query,
                                            body, client, reader, writer)
        if status is not None:
            await self._respond(writer, status, payload)

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       payload, *, content_type: str | None = None,
                       extra_headers: dict | None = None) -> None:
        if isinstance(payload, (dict, list)):
            data = json.dumps(payload).encode()
            ctype = content_type or "application/json"
        else:
            data = str(payload).encode()
            ctype = content_type or "text/plain; version=0.0.4"
        head = [f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'OK')}",
                f"Content-Type: {ctype}",
                f"Content-Length: {len(data)}",
                "Connection: close"]
        for k, v in (extra_headers or {}).items():
            head.append(f"{k}: {v}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + data)
        await writer.drain()
        with self._mlock:
            self.registry.counter("service_http_responses_total",
                                  code=status).inc()

    # -- routing -------------------------------------------------------
    async def _route(self, method: str, path: str, query: dict,
                     body: bytes, client: str,
                     reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter):
        if path == "/healthz" and method == "GET":
            return 200, self._healthz()
        if path == "/metrics" and method == "GET":
            return 200, self._metrics_text()
        if path == "/jobs" and method == "GET":
            return self._list_jobs(query)
        if path == "/jobs" and method == "POST":
            return self._submit(body, client)
        if path.startswith("/jobs/"):
            rest = path[len("/jobs/"):].split("/")
            job_id = rest[0]
            tail = rest[1] if len(rest) > 1 else ""
            if tail == "" and method == "GET":
                return self._job_status(job_id)
            if tail == "result" and method == "GET":
                return self._job_result(job_id)
            if tail == "cancel" and method == "POST":
                return self._job_cancel(job_id)
            if tail == "wait" and method == "GET":
                return await self._job_wait(job_id, query, reader, writer)
        return (405 if path in ("/jobs", "/healthz", "/metrics")
                else 404), {"error": f"no route for {method} {path}"}

    # -- endpoints -----------------------------------------------------
    def _healthz(self) -> dict:
        counts = self.store.counts()
        engines = {}
        for key, eng in self._engines.items():
            engines["sanitize" if key else "default"] = {
                "sims": eng.stats.sims, "hits": eng.stats.hits,
                "failures": eng.stats.failures,
                "retries": eng.stats.retries,
                "cancelled": eng.stats.cancelled,
            }
        return {
            "status": "draining" if self.draining else "ok",
            "uptime_s": round(time.time() - self.started_at, 3),
            "paused": self.paused,
            "jobs": counts,
            "queued_bytes": self.store.queued_bytes(),
            "running_batch": sorted(self._batch.job_ids)
            if self._batch else [],
            "recovered_on_start": self.recovered,
            "engines": engines,
        }

    def _metrics_text(self) -> str:
        counts = self.store.counts()
        with self._mlock:
            for state, n in counts.items():
                self.registry.gauge("service_jobs", state=state).set(n)
            self.registry.gauge("service_queued_bytes") \
                .set(self.store.queued_bytes())
            self.registry.gauge("service_uptime_seconds") \
                .set(round(time.time() - self.started_at, 3))
            sims = hits = 0
            for eng in self._engines.values():
                sims += eng.stats.sims
                hits += eng.stats.hits
            self.registry.gauge("engine_sims").set(sims)
            self.registry.gauge("engine_cache_hits").set(hits)
            return self.registry.to_prometheus()

    def _list_jobs(self, query: dict):
        state = query.get("state")
        if state is not None and state not in (
                "queued", "running", "done", "failed", "cancelled"):
            return 400, {"error": f"unknown state {state!r}"}
        try:
            limit = int(query.get("limit", 200))
        except ValueError:
            return 400, {"error": "limit must be an integer"}
        jobs = self.store.list_jobs(state=state,
                                    client=query.get("client"),
                                    limit=limit)
        return 200, {"jobs": [j.to_dict() for j in jobs]}

    def _submit(self, body: bytes, client: str):
        if self.draining:
            return 503, {"error": "service is draining"}
        try:
            payload = json.loads(body.decode() or "{}")
            spec_dict = payload["spec"]
        except (ValueError, KeyError, UnicodeDecodeError):
            return 400, {"error": "body must be JSON with a 'spec' key"}
        client = payload.get("client") or client
        # Admission control: shed load at the door.
        reason = self._admission_reason(client)
        if reason is not None:
            with self._mlock:
                self.registry.counter("service_jobs_rejected_total",
                                      reason=reason).inc()
            return 429, {"error": _REASONS[reason], "reason": reason,
                         "retry_after": 1.0}
        try:
            spec = RunSpec.from_dict(spec_dict)
        except (KeyError, TypeError, ValueError) as exc:
            return 400, {"error": f"malformed RunSpec: {exc}"}
        if spec.app is None or spec.app not in APPS:
            return 400, {"error": "only registry-app specs can run "
                                  "remotely (ad-hoc kernels do not "
                                  "survive JSON)",
                         "apps": sorted(APPS)}
        if spec.trace is not None:
            return 400, {"error": "trace output is a local side effect; "
                                  "submit without 'trace'"}
        try:
            priority = int(payload.get("priority", 0))
        except (TypeError, ValueError):
            return 400, {"error": "priority must be an integer"}
        job = self.store.submit(
            spec.to_dict(), spec.digest(), priority=priority,
            client=client, sanitize=bool(payload.get("sanitize", False)))
        with self._mlock:
            self.registry.counter("service_jobs_submitted_total").inc()
        return 202, {"job": job.to_dict()}

    def _admission_reason(self, client: str) -> str | None:
        cfg = self.config
        if cfg.rate_limit > 0:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = self._buckets[client] = TokenBucket(
                    cfg.rate_limit, cfg.rate_burst)
            if not bucket.allow():
                return "rate"
        if self.store.queue_depth() >= cfg.max_queue_depth:
            return "queue_depth"
        if self.store.queued_bytes() >= cfg.max_queued_bytes:
            return "queued_bytes"
        return None

    def _job_status(self, job_id: str):
        job = self.store.get(job_id)
        if job is None:
            return 404, {"error": f"unknown job {job_id!r}"}
        return 200, {"job": job.to_dict()}

    def _job_result(self, job_id: str):
        job = self.store.get(job_id)
        if job is None:
            return 404, {"error": f"unknown job {job_id!r}"}
        if job.state == "done":
            return 200, job.result
        if job.state == "failed":
            return 200, job.failure
        if job.state == "cancelled":
            return 200, {"schema": 1, "ok": False, "digest": job.digest,
                         "cancelled": True}
        return 202, {"state": job.state, "id": job.id}

    def _job_cancel(self, job_id: str):
        job = self.store.get(job_id)
        if job is None:
            return 404, {"error": f"unknown job {job_id!r}"}
        if self.store.cancel(job_id):
            with self._mlock:
                self.registry.counter("service_jobs_cancelled_total") \
                    .inc()
            job = self.store.get(job_id)
            return 200, {"job": job.to_dict() if job else None}
        job = self.store.get(job_id)
        state = job.state if job else "?"
        if state in ("done", "failed", "cancelled"):
            return 409, {"error": f"job already {state}", "state": state}
        return 409, {"error": "job already running; running jobs finish",
                     "state": state}

    async def _job_wait(self, job_id: str, query: dict,
                        reader: asyncio.StreamReader,
                        writer: asyncio.StreamWriter):
        """Long-poll: hold the connection until the job is terminal.

        Returns the job plus (when terminal) the same payload as
        ``/result``.  Bounded by ``?timeout=`` capped at
        ``config.wait_max``; a drain ends the poll early with the
        current state so clients fall back to reconnect-and-retry.

        A background one-byte read watches for the client hanging up
        mid-poll: a bare FIN only signals EOF (the transport stays
        open, so ``writer.is_closing()`` never trips), and without the
        watch a vanished client would pin this handler for the full
        timeout.
        """
        try:
            timeout = float(query.get("timeout", self.config.wait_max))
        except ValueError:
            return 400, {"error": "timeout must be a number"}
        timeout = max(0.0, min(timeout, self.config.wait_max))
        deadline = time.monotonic() + timeout
        gone = asyncio.ensure_future(reader.read(1))
        try:
            while True:
                job = self.store.get(job_id)
                if job is None:
                    return 404, {"error": f"unknown job {job_id!r}"}
                if job.terminal:
                    _status, payload = self._job_result(job_id)
                    return 200, {"job": job.to_dict(),
                                 "timed_out": False, "payload": payload}
                if (time.monotonic() >= deadline or self.draining
                        or writer.is_closing() or gone.done()):
                    return 200, {"job": job.to_dict(), "timed_out": True,
                                 "payload": None}
                await self._sleep(self.config.wait_poll)
        finally:
            gone.cancel()
