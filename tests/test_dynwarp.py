"""Sec. IV-C dynamic warp execution controller."""

import pytest

from repro.core.dynwarp import DynWarpController


class TestInit:
    def test_sm0_pinned_to_zero(self):
        c = DynWarpController(4)
        assert c.p[0] == 0.0
        assert c.p[1:] == [1.0, 1.0, 1.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            DynWarpController(0)
        with pytest.raises(ValueError):
            DynWarpController(2, period=0)
        with pytest.raises(ValueError):
            DynWarpController(2, step=0.0)

    def test_paper_defaults(self):
        c = DynWarpController(14)
        assert c.period == 1000
        assert c.step == 0.1


class TestAllow:
    def test_sm0_never_allows(self):
        c = DynWarpController(2)
        assert not any(c.allow(0) for _ in range(100))

    def test_p1_always_allows(self):
        c = DynWarpController(2)
        assert all(c.allow(1) for _ in range(100))

    def test_fractional_p_is_probabilistic(self):
        c = DynWarpController(2)
        c.p[1] = 0.5
        outcomes = [c.allow(1) for _ in range(400)]
        assert 100 < sum(outcomes) < 300

    def test_deterministic_across_instances(self):
        a = DynWarpController(3, seed=9)
        b = DynWarpController(3, seed=9)
        a.p[1] = b.p[1] = 0.3
        assert [a.allow(1) for _ in range(50)] == \
            [b.allow(1) for _ in range(50)]


class TestWindow:
    def test_more_stalls_than_sm0_decreases_p(self):
        c = DynWarpController(2)
        c.record_stall(1, 10)
        c.end_window()
        assert c.p[1] == pytest.approx(0.9)

    def test_fewer_stalls_than_sm0_increases_p(self):
        c = DynWarpController(2)
        c.p[1] = 0.5
        c.record_stall(0, 10)
        c.end_window()
        assert c.p[1] == pytest.approx(0.6)

    def test_equal_stalls_unchanged(self):
        c = DynWarpController(2)
        c.p[1] = 0.5
        c.record_stall(0, 7)
        c.record_stall(1, 7)
        c.end_window()
        assert c.p[1] == pytest.approx(0.5)

    def test_saturates_at_zero(self):
        c = DynWarpController(2)
        for _ in range(15):
            c.record_stall(1, 5)
            c.end_window()
        assert c.p[1] == 0.0

    def test_saturates_at_one(self):
        c = DynWarpController(2)
        for _ in range(5):
            c.record_stall(0, 5)
            c.end_window()
        assert c.p[1] == 1.0

    def test_sm0_stays_pinned(self):
        c = DynWarpController(3)
        for _ in range(5):
            c.record_stall(0, 100)
            c.end_window()
        assert c.p[0] == 0.0

    def test_window_counters_reset(self):
        c = DynWarpController(2)
        c.record_stall(1, 10)
        c.end_window()
        p_after_first = c.p[1]
        c.end_window()  # no stalls recorded: both zero -> unchanged
        assert c.p[1] == p_after_first

    def test_next_window_advances(self):
        c = DynWarpController(2, period=500)
        assert c.next_window_end == 500
        c.end_window()
        assert c.next_window_end == 1000

    def test_step_bounds_in_unit_interval(self):
        c = DynWarpController(4)
        for i in range(30):
            c.record_stall(i % 4, i)
            c.end_window()
            assert all(0.0 <= p <= 1.0 for p in c.p)
