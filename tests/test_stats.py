"""SMStats / RunResult accounting."""

import pytest

from repro.sim.stats import RunResult, SMStats


def sm(i=0, **kw):
    s = SMStats(sm_id=i)
    for k, v in kw.items():
        setattr(s, k, v)
    return s


class TestSMStats:
    def test_total_cycles(self):
        s = sm(active_cycles=10, stall_cycles=5, idle_cycles=3,
               empty_cycles=2)
        assert s.total_cycles == 20

    def test_idle_like(self):
        s = sm(idle_cycles=3, empty_cycles=2)
        assert s.idle_like_cycles == 5

    def test_defaults_zero(self):
        s = SMStats()
        assert s.instructions == 0
        assert s.total_cycles == 0
        assert s.early_releases == 0


class TestRunResult:
    def mk(self):
        return RunResult(
            kernel="k", mode="m", cycles=100, instructions=250,
            sm_stats=[sm(0, stall_cycles=10, idle_cycles=5, empty_cycles=1,
                         max_resident_blocks=3),
                      sm(1, stall_cycles=20, idle_cycles=0, empty_cycles=4,
                         max_resident_blocks=6)],
            mem={"l1_miss_rate": 0.5, "dram_requests": 42},
            blocks_baseline=3, blocks_total=6)

    def test_ipc(self):
        assert self.mk().ipc == 2.5

    def test_zero_cycles_ipc(self):
        r = RunResult(kernel="k", mode="m", cycles=0, instructions=0)
        assert r.ipc == 0.0

    def test_stall_aggregation(self):
        assert self.mk().stall_cycles == 30

    def test_idle_includes_empty(self):
        assert self.mk().idle_cycles == 10

    def test_max_resident(self):
        assert self.mk().max_resident_blocks == 6

    def test_max_resident_empty(self):
        r = RunResult(kernel="k", mode="m", cycles=1, instructions=0)
        assert r.max_resident_blocks == 0

    def test_summary_flattens_mem(self):
        s = self.mk().summary()
        assert s["ipc"] == 2.5
        assert s["l1_miss_rate"] == 0.5
        assert s["dram_requests"] == 42.0
        assert s["max_resident_blocks"] == 6
