"""BlockContext and SharePair: attachment, ownership, transfer."""

import pytest

from repro.core.sharing import SharedResource
from repro.sim.block import BlockContext, SharePair

REG = SharedResource.REGISTERS
SPAD = SharedResource.SCRATCHPAD


def blk(lid, launched=0):
    return BlockContext(lid, sm_id=0, n_warps=4, launched_cycle=launched)


class TestBlockContext:
    def test_done_tracks_active_warps(self):
        b = blk(0)
        assert not b.done
        b.active_warps = 0
        assert b.done

    def test_defaults_unshared(self):
        b = blk(0)
        assert b.pair is None
        assert b.side == 0


class TestSharePairAttachment:
    def test_attach_sets_backlinks(self):
        p = SharePair(REG, 4)
        a, b = blk(0), blk(1)
        p.attach(a, 0)
        p.attach(b, 1)
        assert a.pair is p and a.side == 0
        assert b.pair is p and b.side == 1
        assert p.live_blocks() == 2

    def test_double_attach_rejected(self):
        p = SharePair(REG, 4)
        p.attach(blk(0), 0)
        with pytest.raises(RuntimeError):
            p.attach(blk(1), 0)

    def test_detach_wrong_block_rejected(self):
        p = SharePair(REG, 4)
        p.attach(blk(0), 0)
        with pytest.raises(RuntimeError):
            p.detach(blk(9))

    def test_resource_selects_group_kind(self):
        assert SharePair(REG, 4).reg_group is not None
        assert SharePair(REG, 4).spad_group is None
        assert SharePair(SPAD, 4).spad_group is not None
        assert SharePair(SPAD, 4).reg_group is None


class TestOwnership:
    def test_older_block_is_default_owner(self):
        p = SharePair(REG, 4)
        p.attach(blk(0, launched=0), 0)
        p.attach(blk(1, launched=5), 1)
        assert p.owner_side() == 0

    def test_acquisition_fixes_ownership(self):
        p = SharePair(REG, 4)
        p.attach(blk(0, launched=0), 0)
        p.attach(blk(1, launched=5), 1)
        p.note_acquired(1)  # the younger block touched shared first
        assert p.owner_side() == 1
        p.note_acquired(0)  # later acquisitions don't steal ownership
        assert p.owner_side() == 1

    def test_ownership_transfers_on_owner_completion(self):
        p = SharePair(SPAD, 4)
        a, b = blk(0), blk(1, launched=3)
        p.attach(a, 0)
        p.attach(b, 1)
        p.note_acquired(0)
        p.detach(a)  # owner block completes
        assert p.owner_side() == 1  # paper Sec. IV-A transfer

    def test_new_partner_is_nonowner(self):
        p = SharePair(SPAD, 4)
        a, b = blk(0), blk(1, launched=3)
        p.attach(a, 0)
        p.attach(b, 1)
        p.note_acquired(0)
        p.detach(a)
        c = blk(2, launched=10)
        p.attach(c, 0)
        assert p.owner_side() == 1  # survivor owns; c is non-owner

    def test_detach_nonowner_keeps_owner(self):
        p = SharePair(REG, 4)
        a, b = blk(0), blk(1)
        p.attach(a, 0)
        p.attach(b, 1)
        p.note_acquired(0)
        p.detach(b)
        assert p.owner_side() == 0

    def test_detach_clears_locks(self):
        p = SharePair(REG, 4)
        a, b = blk(0), blk(1)
        p.attach(a, 0)
        p.attach(b, 1)
        g = p.reg_group
        g.try_acquire(0, 2)
        p.detach(a)
        assert g.held_by_side(0) == 0
        assert g.try_acquire(1, 2)  # pool free for the partner

    def test_single_live_block_owns(self):
        p = SharePair(REG, 4)
        b = blk(1)
        p.attach(b, 1)
        assert p.owner_side() == 1

    def test_spad_detach_releases_region(self):
        p = SharePair(SPAD, 4)
        a, b = blk(0), blk(1)
        p.attach(a, 0)
        p.attach(b, 1)
        p.spad_group.try_acquire(0)
        p.detach(a)
        assert p.spad_group.holder is None
