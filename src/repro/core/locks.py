"""Exclusive-access managers for shared resource pools.

Register sharing (paper Sec. III-A)
    Warp ``i`` of block A pairs with warp ``i`` of block B.  Each pair has
    one lock over its shared register pool.  Two rules govern access:

    * **Per-pair handoff** — "only after W20 finishes execution, W30 can
      access the shared registers": when the holding warp *finishes*, the
      pool passes to its partner warp immediately, even while other warps
      of the holding block still hold their own pools.
    * **Direction rule (Fig. 5)** — a warp may *initiate* (acquire a pool
      whose partner warp is still live) only while no live warp of the
      partner block holds any pool.  This breaks the barrier/lock cycle
      of the paper's deadlock example: the initiating side's warps never
      wait on locks, their barriers involve only their own block, so they
      always drain; the other side's warps wait only on partner-warp
      completion, never on their own block's barriers.

Scratchpad sharing (paper Sec. III-B)
    One lock per block pair over the shared scratchpad region, held by the
    first block to touch it and released when that *block completes*.  A
    single lock cannot deadlock.

The managers are pure state machines over ``side ∈ {0, 1}`` (which member
of the pair) and ``slot`` (warp index within the block); the simulator
maps its block/warp objects onto these.  An optional ``on_release``
callback lets the SM wake warps that were busy-waiting, and an optional
``obs`` adapter (``acquired(side, slot)`` / ``released(side, slot)``,
see :class:`repro.obs.sink._LockObs`) publishes grant/release events to
the observability layer — the groups themselves stay clock-free; the
adapter supplies the timestamps.
"""

from __future__ import annotations

from typing import Callable, Optional

__all__ = ["RegisterShareGroup", "ScratchpadShareGroup"]


class RegisterShareGroup:
    """Locks for the shared register pools of one pair of blocks."""

    def __init__(self, n_slots: int) -> None:
        if n_slots < 1:
            raise ValueError("need at least one warp slot")
        self.n_slots = n_slots
        self._holder: list[Optional[int]] = [None] * n_slots
        self._held_count = [0, 0]
        self._finished = [[False] * n_slots, [False] * n_slots]
        self.on_release: Callable[[], None] | None = None
        #: Observability adapter (None = not observed).
        self.obs = None

    # ------------------------------------------------------------------
    def holder(self, slot: int) -> Optional[int]:
        """Side currently holding ``slot``'s shared pool, or None."""
        return self._holder[slot]

    def holds(self, side: int, slot: int) -> bool:
        """True if ``side`` already holds the lock for ``slot``."""
        return self._holder[slot] == side

    def held_by_side(self, side: int) -> int:
        """Number of pools currently held by live warps of ``side``."""
        return self._held_count[side]

    def partner_finished(self, side: int, slot: int) -> bool:
        """True if the partner warp of (side, slot) has finished."""
        return self._finished[1 - side][slot]

    @property
    def lock_side(self) -> Optional[int]:
        """The side whose live warps hold pools (None if no pool held).

        When both sides hold pools (possible after per-pair handoffs),
        the side holding more is reported — used only for the OWF owner
        heuristic, never for correctness.
        """
        if self._held_count[0] == 0 and self._held_count[1] == 0:
            return None
        return 0 if self._held_count[0] >= self._held_count[1] else 1

    # ------------------------------------------------------------------
    def try_acquire(self, side: int, slot: int) -> bool:
        """Attempt to take slot ``slot``'s shared pool for ``side``.

        Implements Fig. 3 step (e): re-acquiring an already-held pool
        succeeds; a free pool is granted on per-pair handoff (partner
        warp finished) or under the Fig. 5 direction rule.
        """
        if side not in (0, 1):
            raise ValueError("side must be 0 or 1")
        cur = self._holder[slot]
        if cur == side:
            return True
        if cur is not None:
            return False  # live partner warp holds this very pool
        if not self._finished[1 - side][slot] \
                and self._held_count[1 - side] > 0:
            return False  # direction rule: partner side has live holders
        self._holder[slot] = side
        self._held_count[side] += 1
        if self.obs is not None:
            self.obs.acquired(side, slot)
        return True

    def warp_finished(self, side: int, slot: int) -> None:
        """Record warp completion; hands its pool to the partner warp."""
        self._finished[side][slot] = True
        self._release(side, slot)

    def _release(self, side: int, slot: int) -> None:
        if self._holder[slot] == side:
            self._holder[slot] = None
            self._held_count[side] -= 1
            if self.obs is not None:
                self.obs.released(side, slot)
            if self.on_release is not None:
                self.on_release()

    def reset_side(self, side: int) -> None:
        """Block teardown: drop every pool and finished-flag of ``side``
        (a fresh block is about to occupy the side)."""
        for slot in range(self.n_slots):
            self._release(side, slot)
            self._finished[side][slot] = False

    # ------------------------------------------------------------------
    def audit(self) -> list[str]:
        """Re-derive the DESIGN.md §6 lock invariants from raw state.

        Returns violation descriptions (empty list = healthy).  Used by
        the runtime sanitizer; deliberately recomputes everything from
        ``_holder``/``_finished`` rather than trusting the counters it
        is checking.
        """
        v: list[str] = []
        for slot, holder in enumerate(self._holder):
            if holder not in (None, 0, 1):
                v.append(f"reg pool slot {slot}: holder {holder!r} "
                         f"outside {{None, 0, 1}}")
        for side in (0, 1):
            actual = sum(1 for h in self._holder if h == side)
            if actual != self._held_count[side]:
                v.append(f"reg pools: side {side} held-count "
                         f"{self._held_count[side]} != recount {actual} "
                         f"(single-holder bookkeeping broken)")
        # Fig. 5 direction rule: a pool held while its partner warp is
        # still live means that side *initiated*; both sides initiating
        # is the paper's barrier/lock deadlock cycle.
        initiating = {h for slot, h in enumerate(self._holder)
                      if h in (0, 1) and not self._finished[1 - h][slot]}
        if len(initiating) > 1:
            v.append("reg pools: both sides hold pools with live partner "
                     "warps (Fig. 5 direction rule violated)")
        return v


class ScratchpadShareGroup:
    """Lock for the shared scratchpad region of one pair of blocks."""

    def __init__(self) -> None:
        self._holder: Optional[int] = None
        self.on_release: Callable[[], None] | None = None
        #: Observability adapter (None = not observed).
        self.obs = None

    @property
    def holder(self) -> Optional[int]:
        """Side currently holding the shared region, or None."""
        return self._holder

    def holds(self, side: int) -> bool:
        """True if ``side`` holds the shared region."""
        return self._holder == side

    def try_acquire(self, side: int) -> bool:
        """Attempt to take the shared region for ``side`` (Fig. 4 (e))."""
        if side not in (0, 1):
            raise ValueError("side must be 0 or 1")
        if self._holder is None:
            self._holder = side
            if self.obs is not None:
                self.obs.acquired(side, 0)
            return True
        return self._holder == side

    def release(self, side: int) -> None:
        """Release the region if held by ``side`` (block completion)."""
        if self._holder == side:
            self._holder = None
            if self.obs is not None:
                self.obs.released(side, 0)
            if self.on_release is not None:
                self.on_release()

    def audit(self) -> list[str]:
        """Sanitizer check: the single scratchpad lock state is sane."""
        if self._holder not in (None, 0, 1):
            return [f"scratchpad region: holder {self._holder!r} outside "
                    f"{{None, 0, 1}}"]
        return []
