"""Trace recorder."""


from repro.config import GPUConfig
from repro.core.sharing import SharedResource, SharingSpec, plan_sharing
from repro.isa.builder import KernelBuilder
from repro.sim.gpu import GPU
from repro.sim.trace import TraceRecorder

CFG = GPUConfig().scaled(num_clusters=1)


def kernel(loops=3):
    b = KernelBuilder("t", block_size=64, regs=8, alloc="low_first")
    with b.loop(loops):
        b.alu_chain(1)
        b.alu_indep(1)
    return b.build().with_grid(2)


class TestRecorder:
    def test_records_every_issue(self):
        k = kernel()
        gpu = GPU(k, CFG)
        tr = TraceRecorder(gpu)
        r = tr.run()
        assert len(tr.events) == r.instructions
        assert not tr.truncated

    def test_result_matches_untraced_run(self):
        k = kernel()
        plain = GPU(k, CFG).run()
        traced = TraceRecorder(GPU(k, CFG)).run()
        assert plain.cycles == traced.cycles
        assert plain.instructions == traced.instructions

    def test_cycles_monotone_per_warp(self):
        gpu = GPU(kernel(6), CFG)
        tr = TraceRecorder(gpu)
        tr.run()
        for w in {e.warp for e in tr.events}:
            cycles = [e.cycle for e in tr.for_warp(0, w)]
            assert cycles == sorted(cycles)
            assert len(set(cycles)) == len(cycles)  # 1 issue/cycle/warp

    def test_ops_recorded(self):
        gpu = GPU(kernel(), CFG)
        tr = TraceRecorder(gpu)
        tr.run()
        ops = {e.op for e in tr.events}
        assert "EXIT" in ops and "FFMA" in ops

    def test_issue_gaps(self):
        gpu = GPU(kernel(6), CFG)
        tr = TraceRecorder(gpu)
        tr.run()
        gaps = tr.issue_gaps(0, 0)
        assert all(g >= 1 for g in gaps)

    def test_truncation_cap(self):
        gpu = GPU(kernel(10), CFG)
        tr = TraceRecorder(gpu, max_events=5)
        r = tr.run()
        assert len(tr.events) == 5
        assert tr.truncated
        assert r.instructions > 5  # run itself unaffected

    def test_timeline_render(self):
        gpu = GPU(kernel(), CFG)
        tr = TraceRecorder(gpu)
        tr.run()
        text = tr.timeline(sm=0, first=10)
        assert "cycle" in text and "UNS" in text

    def test_warp_classes_with_sharing(self):
        b = KernelBuilder("rs", block_size=256, regs=36, alloc="low_first")
        with b.loop(4):
            b.alu_chain(2)
            b.alu_indep(2)
        k = b.build().with_grid(6)
        plan = plan_sharing(k, CFG, SharingSpec(SharedResource.REGISTERS,
                                                0.1))
        gpu = GPU(k, CFG, scheduler="owf", plan=plan)
        tr = TraceRecorder(gpu)
        tr.run()
        classes = {e.warp_class for e in tr.events}
        assert 0 in classes  # owner issues observed
        assert 1 not in classes  # hotspot geometry: every block paired
