"""Text assembler / disassembler for the synthetic ISA.

A kernel can be written in a small PTXPlus-flavoured text format, which
makes workloads shareable as plain files and gives the unroll pass
something tangible to show (the paper's Fig. 7 is exactly such a
listing).  Example::

    .kernel forces
    .block 192
    .regs 40
    .smem 3072
    .grid 64
    .seed 7
    .variance 0.30

    ldg   r5, g[positions : 131072 : shared]
    sts   s[0 : 128 : 3072], r5
    bar
    .loop 40
        ldg  r6, g[neighbors : 98304 : shared : strided : 2]
        ffma r7, r6
        fadd r8, r7
        lds  r9, s[0 : 96 : 3072]
    .endloop
    stg   g[out : 131072], r8
    exit

Syntax
    * Directives: ``.kernel`` ``.block`` ``.regs`` ``.smem`` ``.grid``
      ``.seed`` ``.variance`` ``.loop N`` / ``.endloop`` (no nesting).
    * Registers: ``rN`` with per-thread sequence number ``N``.
    * Global operands: ``g[region : footprint(, : private|shared)
      (: coalesced|strided|random|broadcast)(: txn)]`` — ``shared`` means
      all blocks walk one region, ``private`` (default) gives each block
      its own slice.
    * Scratchpad operands: ``s[offset(: stride : wrap)]`` in bytes.
    * ALU: ``iadd/imul/fadd/fmul/ffma/mov/setp rD, rS...``; ``sfu rD, rS``.
    * ``bar`` and ``exit`` stand alone.  ``exit`` is appended
      automatically if missing.  Comments start with ``;`` or ``#``.
"""

from __future__ import annotations

from repro.isa.instructions import Instr, MemDesc
from repro.isa.kernel import Kernel, Segment
from repro.isa.opcodes import MemSpace, Op, Pattern

__all__ = ["assemble", "disassemble", "AsmError"]

_ALU = {"iadd": Op.IADD, "imul": Op.IMUL, "fadd": Op.FADD,
        "fmul": Op.FMUL, "ffma": Op.FFMA, "mov": Op.MOV, "setp": Op.SETP}
_PATTERNS = {"coalesced": Pattern.COALESCED, "strided": Pattern.STRIDED,
             "random": Pattern.RANDOM, "broadcast": Pattern.BROADCAST}
_PAT_NAMES = {v: k for k, v in _PATTERNS.items()}


class AsmError(ValueError):
    """Syntax or semantic error in kernel assembly text."""

    def __init__(self, lineno: int, msg: str) -> None:
        super().__init__(f"line {lineno}: {msg}")
        self.lineno = lineno


def _strip(line: str) -> str:
    for c in (";", "#"):
        i = line.find(c)
        if i >= 0:
            line = line[:i]
    return line.strip()


def _parse_reg(tok: str, lineno: int) -> int:
    tok = tok.strip()
    if not tok.startswith("r") or not tok[1:].isdigit():
        raise AsmError(lineno, f"expected register, got {tok!r}")
    return int(tok[1:])


def _parse_global(tok: str, lineno: int) -> MemDesc:
    tok = tok.strip()
    if not (tok.startswith("g[") and tok.endswith("]")):
        raise AsmError(lineno, f"expected g[...] operand, got {tok!r}")
    parts = [p.strip() for p in tok[2:-1].split(":")]
    if len(parts) < 2:
        raise AsmError(lineno, "g[] needs at least region:footprint")
    region = parts[0]
    try:
        footprint = int(parts[1])
    except ValueError:
        raise AsmError(lineno, f"bad footprint {parts[1]!r}") from None
    block_private = True
    pattern = Pattern.COALESCED
    txn = 1
    for extra in parts[2:]:
        low = extra.lower()
        if low in ("shared", "private"):
            block_private = low == "private"
        elif low in _PATTERNS:
            pattern = _PATTERNS[low]
        elif low.isdigit():
            txn = int(low)
        else:
            raise AsmError(lineno, f"unknown g[] qualifier {extra!r}")
    try:
        return MemDesc(MemSpace.GLOBAL, pattern=pattern, txn=txn,
                       footprint=footprint, block_private=block_private,
                       region=region)
    except ValueError as e:
        raise AsmError(lineno, str(e)) from None


def _parse_shared(tok: str, lineno: int) -> MemDesc:
    tok = tok.strip()
    if not (tok.startswith("s[") and tok.endswith("]")):
        raise AsmError(lineno, f"expected s[...] operand, got {tok!r}")
    parts = [p.strip() for p in tok[2:-1].split(":")]
    try:
        nums = [int(p) for p in parts]
    except ValueError:
        raise AsmError(lineno, f"bad s[] numbers in {tok!r}") from None
    conflicts = 1
    if len(nums) == 1:
        off, stride, wrap = nums[0], 0, 0
    elif len(nums) == 3:
        off, stride, wrap = nums
    elif len(nums) == 4:
        off, stride, wrap, conflicts = nums
    else:
        raise AsmError(lineno,
                       "s[] takes offset or offset:stride:wrap[:conflicts]")
    try:
        return MemDesc(MemSpace.SHARED, offset=off, stride=stride,
                       wrap=wrap, conflicts=conflicts)
    except ValueError as e:
        raise AsmError(lineno, str(e)) from None


def assemble(text: str) -> Kernel:
    """Parse assembly ``text`` into a :class:`Kernel`."""
    meta: dict[str, object] = {"kernel": "kernel", "block": 64, "regs": 16,
                               "smem": 0, "grid": 1, "seed": 0,
                               "variance": 0.0}
    segments: list[Segment] = []
    current: list[Instr] = []
    loop_body: list[Instr] | None = None
    loop_count = 0
    saw_exit = False

    def flush() -> None:
        nonlocal current
        if current:
            segments.append(Segment(tuple(current), 1))
            current = []

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = _strip(raw)
        if not line:
            continue
        toks = line.split(None, 1)
        head = toks[0].lower()
        rest = toks[1] if len(toks) > 1 else ""

        if head.startswith("."):
            if head == ".loop":
                if loop_body is not None:
                    raise AsmError(lineno, "loops cannot nest")
                flush()
                try:
                    loop_count = int(rest)
                except ValueError:
                    raise AsmError(lineno, ".loop needs a count") from None
                loop_body = []
            elif head == ".endloop":
                if loop_body is None:
                    raise AsmError(lineno, ".endloop without .loop")
                if not loop_body:
                    raise AsmError(lineno, "empty loop body")
                segments.append(Segment(tuple(loop_body), loop_count))
                loop_body = None
            elif head in (".kernel",):
                meta["kernel"] = rest.strip() or "kernel"
            elif head in (".block", ".regs", ".smem", ".grid", ".seed"):
                try:
                    meta[head[1:]] = int(rest)
                except ValueError:
                    raise AsmError(lineno, f"{head} needs an integer") from None
            elif head == ".variance":
                try:
                    meta["variance"] = float(rest)
                except ValueError:
                    raise AsmError(lineno, ".variance needs a float") from None
            else:
                raise AsmError(lineno, f"unknown directive {head}")
            continue

        target = loop_body if loop_body is not None else current
        args = [a.strip() for a in rest.split(",")] if rest else []

        if head in _ALU:
            if len(args) < 2:
                raise AsmError(lineno, f"{head} needs dst and src registers")
            dst = _parse_reg(args[0], lineno)
            src = tuple(_parse_reg(a, lineno) for a in args[1:])
            target.append(Instr(_ALU[head], dst=(dst,), src=src))
        elif head == "sfu":
            if len(args) != 2:
                raise AsmError(lineno, "sfu needs dst and src")
            target.append(Instr(Op.SFU, dst=(_parse_reg(args[0], lineno),),
                                src=(_parse_reg(args[1], lineno),)))
        elif head == "ldg":
            if len(args) != 2:
                raise AsmError(lineno, "ldg needs rD, g[...]")
            target.append(Instr(Op.LDG, dst=(_parse_reg(args[0], lineno),),
                                mem=_parse_global(args[1], lineno)))
        elif head == "stg":
            if len(args) != 2:
                raise AsmError(lineno, "stg needs g[...], rS")
            target.append(Instr(Op.STG, src=(_parse_reg(args[1], lineno),),
                                mem=_parse_global(args[0], lineno)))
        elif head == "lds":
            if len(args) != 2:
                raise AsmError(lineno, "lds needs rD, s[...]")
            target.append(Instr(Op.LDS, dst=(_parse_reg(args[0], lineno),),
                                mem=_parse_shared(args[1], lineno)))
        elif head == "sts":
            if len(args) != 2:
                raise AsmError(lineno, "sts needs s[...], rS")
            target.append(Instr(Op.STS, src=(_parse_reg(args[1], lineno),),
                                mem=_parse_shared(args[0], lineno)))
        elif head == "bar":
            target.append(Instr(Op.BAR))
        elif head == "exit":
            if loop_body is not None:
                raise AsmError(lineno, "exit inside a loop")
            target.append(Instr(Op.EXIT))
            saw_exit = True
        else:
            raise AsmError(lineno, f"unknown instruction {head!r}")

    if loop_body is not None:
        raise AsmError(len(text.splitlines()), "unterminated .loop")
    if not saw_exit:
        current.append(Instr(Op.EXIT))
    flush()
    if not segments:
        raise AsmError(0, "no instructions")
    try:
        return Kernel(
            name=str(meta["kernel"]),
            threads_per_block=int(meta["block"]),  # type: ignore[arg-type]
            regs_per_thread=int(meta["regs"]),  # type: ignore[arg-type]
            smem_per_block=int(meta["smem"]),  # type: ignore[arg-type]
            grid_blocks=int(meta["grid"]),  # type: ignore[arg-type]
            segments=tuple(segments),
            seed=int(meta["seed"]),  # type: ignore[arg-type]
            work_variance=float(meta["variance"]),  # type: ignore[arg-type]
        )
    except ValueError as e:
        raise AsmError(0, f"kernel validation failed: {e}") from None


# ----------------------------------------------------------------------
def _fmt_global(m: MemDesc) -> str:
    parts = [m.region, str(m.footprint),
             "private" if m.block_private else "shared"]
    if m.pattern is not Pattern.COALESCED:
        parts.append(_PAT_NAMES[m.pattern])
    if m.txn != 1:
        parts.append(str(m.txn))
    return "g[" + " : ".join(parts) + "]"


def _fmt_shared(m: MemDesc) -> str:
    if m.conflicts != 1:
        return f"s[{m.offset} : {m.stride} : {m.wrap} : {m.conflicts}]"
    if m.stride or m.wrap:
        return f"s[{m.offset} : {m.stride} : {m.wrap}]"
    return f"s[{m.offset}]"


def _fmt_instr(ins: Instr) -> str:
    op = ins.op
    if op in (Op.BAR, Op.EXIT):
        return op.name.lower()
    if op is Op.LDG:
        return f"ldg   r{ins.dst[0]}, {_fmt_global(ins.mem)}"
    if op is Op.STG:
        return f"stg   {_fmt_global(ins.mem)}, r{ins.src[0]}"
    if op is Op.LDS:
        return f"lds   r{ins.dst[0]}, {_fmt_shared(ins.mem)}"
    if op is Op.STS:
        return f"sts   {_fmt_shared(ins.mem)}, r{ins.src[0]}"
    srcs = ", ".join(f"r{r}" for r in ins.src)
    return f"{op.name.lower():5s} r{ins.dst[0]}, {srcs}"


def disassemble(kernel: Kernel) -> str:
    """Render a kernel back to assembly text (assemble∘disassemble is a
    round trip, asserted by the tests)."""
    out = [
        f".kernel {kernel.name}",
        f".block {kernel.threads_per_block}",
        f".regs {kernel.regs_per_thread}",
        f".smem {kernel.smem_per_block}",
        f".grid {kernel.grid_blocks}",
        f".seed {kernel.seed}",
        f".variance {kernel.work_variance}",
        "",
    ]
    for seg in kernel.segments:
        if seg.repeat > 1:
            out.append(f".loop {seg.repeat}")
            out.extend("    " + _fmt_instr(i) for i in seg.instrs)
            out.append(".endloop")
        else:
            out.extend(_fmt_instr(i) for i in seg.instrs)
    return "\n".join(out) + "\n"
