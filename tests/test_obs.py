"""Observability layer: metrics registry, tracer, Observer integration.

The hard behavioural contract is at the bottom: attaching an Observer
must not change simulated results (null-object identity), and the
exported Chrome trace must be schema-valid and contain warp-state and
lock acquire/release spans for a sharing-mode run.
"""

import json

import pytest

from repro.config import GPUConfig
from repro.core.sharing import SharedResource
from repro.harness.runner import run, shared, unshared
from repro.obs import (Counter, Gauge, Histogram, MetricsRegistry, NULL_SINK,
                       Observer, ObsSink, Tracer, metric_key)
from repro.workloads.apps import APPS

CFG = GPUConfig().scaled(num_clusters=1)
FAST = dict(config=CFG, scale=0.2, waves=1.0)

REG_MODE = shared(SharedResource.REGISTERS, "owf", unroll=True, dyn=True)
SPAD_MODE = shared(SharedResource.SCRATCHPAD, "owf")


# ---------------------------------------------------------------------------
# metrics registry
# ---------------------------------------------------------------------------
class TestMetricKey:
    def test_no_labels(self):
        assert metric_key("ipc", {}) == "ipc"

    def test_labels_sorted(self):
        assert metric_key("x", {"b": 1, "a": "y"}) == "x{a=y,b=1}"
        assert metric_key("x", {"a": "y", "b": 1}) == "x{a=y,b=1}"


class TestCounter:
    def test_inc(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert c.to_value() == 5


class TestGauge:
    def test_set(self):
        g = Gauge()
        g.set(0.25)
        g.set(0.5)
        assert g.to_value() == 0.5


class TestHistogram:
    def test_stats(self):
        h = Histogram()
        for v in (1, 2, 3, 10):
            h.record(v)
        d = h.to_value()
        assert d["count"] == 4 and d["sum"] == 16
        assert d["min"] == 1 and d["max"] == 10
        assert d["mean"] == 4.0

    def test_power_of_two_buckets(self):
        h = Histogram()
        h.record(0)    # bucket 0: exactly zero
        h.record(1)    # bucket 1: [1, 2)
        h.record(2)    # bucket 2: [2, 4)
        h.record(3)    # bucket 2
        h.record(100)  # bucket 7: [64, 128)
        buckets = h.to_value()["buckets"]
        assert sum(buckets.values()) == 5
        assert buckets == {"0": 1, "1": 1, "2": 2, "7": 1}

    def test_empty(self):
        d = Histogram().to_value()
        assert d["count"] == 0 and d["sum"] == 0


class TestMetricsRegistry:
    def test_same_key_same_instrument(self):
        m = MetricsRegistry()
        assert m.counter("hits", sm=0) is m.counter("hits", sm=0)
        assert m.counter("hits", sm=0) is not m.counter("hits", sm=1)

    def test_kind_mismatch_rejected(self):
        m = MetricsRegistry()
        m.counter("x")
        with pytest.raises(TypeError):
            m.gauge("x")

    def test_to_dict_grouped_and_sorted(self):
        m = MetricsRegistry()
        m.counter("b").inc(2)
        m.counter("a", sm=1).inc()
        m.gauge("util").set(0.5)
        m.histogram("lat").record(7)
        d = m.to_dict()
        assert list(d) == ["counters", "gauges", "histograms"]
        assert list(d["counters"]) == ["a{sm=1}", "b"]
        assert d["gauges"]["util"] == 0.5
        assert d["histograms"]["lat"]["count"] == 1

    def test_to_dict_json_safe(self):
        m = MetricsRegistry()
        m.histogram("h", kind="reg").record(3)
        assert json.loads(json.dumps(m.to_dict())) == m.to_dict()


# ---------------------------------------------------------------------------
# tracer
# ---------------------------------------------------------------------------
class TestTracer:
    def test_complete_event(self):
        t = Tracer()
        t.complete(1, 2, "ready", "warp_state", 10, 5, {"k": "v"})
        (e,) = t.events
        assert e == {"name": "ready", "cat": "warp_state", "ph": "X",
                     "pid": 1, "tid": 2, "ts": 10, "dur": 5,
                     "args": {"k": "v"}}

    def test_span_pairs(self):
        t = Tracer()
        t.span(0, "load x2", "mem", 7, 100, 140, {"lines": 2})
        b, e = t.events
        assert b["ph"] == "b" and e["ph"] == "e"
        assert b["id"] == e["id"] == 7
        assert b["ts"] == 100 and e["ts"] == 140

    def test_meta_idempotent_and_uncapped(self):
        t = Tracer(max_events=1)
        t.process_name(0, "SM0")
        t.process_name(0, "SM0")
        t.thread_name(0, 3, "W3")
        assert len(t.meta) == 2  # one process_name + one thread_name
        assert t.dropped == 0

    def test_event_cap(self):
        t = Tracer(max_events=2)
        for i in range(5):
            t.instant(0, 0, f"e{i}", "dyn", i)
        assert len(t.events) == 2 and t.dropped == 3
        other = t.to_chrome()["otherData"]
        assert other["truncated"] is True
        assert other["eventsDropped"] == 3

    def test_aux_track_allocation(self):
        t = Tracer()
        a = t.track(0, "lock A")
        b = t.track(0, "lock B")
        assert t.track(0, "lock A") == a
        assert a != b and a >= 1_000_000
        names = {m["args"]["name"] for m in t.meta
                 if m["name"] == "thread_name"}
        assert {"lock A", "lock B"} <= names

    def test_write_chrome(self, tmp_path):
        t = Tracer()
        t.complete(0, 0, "ready", "warp_state", 0, 3)
        out = tmp_path / "t.json"
        t.write(out, {"kernel": "k"})
        doc = json.loads(out.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["kernel"] == "k"
        assert any(e["ph"] == "X" for e in doc["traceEvents"])

    def test_write_jsonl(self, tmp_path):
        t = Tracer()
        t.process_name(0, "SM0")
        t.complete(0, 0, "ready", "warp_state", 0, 3)
        out = tmp_path / "t.jsonl"
        t.write(out)
        lines = [json.loads(ln) for ln in out.read_text().splitlines()]
        assert len(lines) == 2
        assert lines[0]["ph"] == "M"  # meta precedes events
        assert lines[1]["ph"] == "X"


# ---------------------------------------------------------------------------
# null sink
# ---------------------------------------------------------------------------
class TestNullSink:
    def test_disabled(self):
        assert NULL_SINK.enabled is False
        assert Observer(metrics=True).enabled is True

    def test_hooks_are_noops(self):
        s = ObsSink()
        done = lambda c: None  # noqa: E731
        assert s.mem_request(0, 2, 5, done) is done
        assert s.metrics_dict() is None
        s.mshr_reject(0, 1)
        s.finalize(None, 10)

    def test_observer_needs_a_backend(self):
        with pytest.raises(ValueError):
            Observer(metrics=False, trace=False)


# ---------------------------------------------------------------------------
# Observer on real runs
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def reg_traced():
    """One register-sharing run observed with metrics + trace."""
    obs = Observer(metrics=True, trace=True)
    res = run(APPS["MUM"], REG_MODE, obs=obs, **FAST)
    return obs, res


class TestObserverIntegration:
    def test_result_identical_to_unobserved(self, reg_traced):
        obs, res = reg_traced
        plain = run(APPS["MUM"], REG_MODE, **FAST)
        d = res.to_dict()
        assert "metrics" not in plain.to_dict()
        assert d.pop("metrics") is not None
        assert d == plain.to_dict()

    def test_reference_core_identical_under_observation(self):
        obs = Observer(metrics=True, trace=True)
        ref = run(APPS["MUM"], REG_MODE, core="reference", obs=obs, **FAST)
        assert ref.to_dict() == run(APPS["MUM"], REG_MODE, obs=Observer(
            metrics=True, trace=True), **FAST).to_dict()

    def test_metrics_on_result(self, reg_traced):
        _, res = reg_traced
        m = res.metrics
        assert m["counters"]["lock_acquires{kind=reg}"] > 0
        assert m["counters"]["lock_acquires{kind=reg}"] == \
            m["counters"]["lock_releases{kind=reg}"]
        assert m["histograms"]["lock_hold_cycles{kind=reg}"]["count"] == \
            m["counters"]["lock_releases{kind=reg}"]
        # every simulated instruction is attributed to a scheduler
        issued = sum(v for k, v in m["counters"].items()
                     if k.startswith("issued_instructions{"))
        assert issued == res.instructions

    def test_warp_state_cycles_cover_run(self, reg_traced):
        _, res = reg_traced
        hists = res.metrics["histograms"]
        states = {k for k in hists if k.startswith("warp_state_cycles{")}
        assert "warp_state_cycles{state=ready}" in states
        assert any("stall:" in k for k in states)
        # dyn throttling is register-sharing specific and must show up
        assert res.metrics["counters"]["dyn_refusals{sm=0}"] > 0

    def test_cache_probe_counters(self, reg_traced):
        _, res = reg_traced
        c = res.metrics["counters"]
        for level in ("l1", "l2"):
            for outcome in ("hits", "misses"):
                assert f"cache_probes{{level={level},outcome={outcome}}}" in c
        assert c["cache_probes{level=l1,outcome=hits}"] > 0

    def test_issue_slot_utilisation_gauges(self, reg_traced):
        _, res = reg_traced
        g = res.metrics["gauges"]
        utils = {k: v for k, v in g.items()
                 if k.startswith("issue_slot_utilisation{")}
        assert utils and all(0.0 <= v <= 1.0 for v in utils.values())

    def test_metrics_snapshot_json_round_trips(self, reg_traced):
        _, res = reg_traced
        assert json.loads(json.dumps(res.metrics)) == res.metrics


def _chrome_doc(tmp_path, obs):
    out = tmp_path / "trace.json"
    obs.write_trace(out)
    return json.loads(out.read_text())


class TestChromeTraceSchema:
    """Schema validation of the exported Chrome trace-event JSON."""

    REQUIRED = {"X": {"name", "cat", "ph", "pid", "tid", "ts", "dur"},
                "b": {"name", "cat", "ph", "pid", "ts", "id"},
                "e": {"name", "cat", "ph", "pid", "ts", "id"},
                "i": {"name", "cat", "ph", "pid", "tid", "ts", "s"},
                "C": {"name", "ph", "pid", "ts", "args"},
                "M": {"name", "ph", "pid", "args"}}

    def test_every_event_well_formed(self, reg_traced, tmp_path):
        obs, _ = reg_traced
        doc = _chrome_doc(tmp_path, obs)
        assert doc["traceEvents"]
        for e in doc["traceEvents"]:
            assert self.REQUIRED[e["ph"]] <= set(e), e
            assert isinstance(e["pid"], int)
            if "ts" in e:
                assert isinstance(e["ts"], int) and e["ts"] >= 0
            if e["ph"] == "X":
                assert e["dur"] >= 0  # locks may hold for 0 cycles

    def test_warp_state_spans_present(self, reg_traced, tmp_path):
        obs, res = reg_traced
        doc = _chrome_doc(tmp_path, obs)
        warp = [e for e in doc["traceEvents"] if e.get("cat") == "warp_state"]
        assert warp
        names = {e["name"] for e in warp}
        assert "ready" in names and any(n.startswith("stall:") for n in names)
        assert all(e["ts"] + e["dur"] <= res.cycles for e in warp)

    def test_lock_spans_present_with_args(self, reg_traced, tmp_path):
        obs, res = reg_traced
        doc = _chrome_doc(tmp_path, obs)
        locks = [e for e in doc["traceEvents"] if e.get("cat") == "lock"]
        assert len(locks) == \
            res.metrics["counters"]["lock_releases{kind=reg}"]
        for e in locks:
            assert e["ph"] == "X"
            assert e["tid"] >= 1_000_000  # aux lock track, not a warp row
            assert {"side", "slot", "pair"} <= set(e["args"])

    def test_mem_spans_paired(self, reg_traced, tmp_path):
        obs, _ = reg_traced
        doc = _chrome_doc(tmp_path, obs)
        mem = [e for e in doc["traceEvents"] if e.get("cat") == "mem"]
        begins = {e["id"] for e in mem if e["ph"] == "b"}
        ends = {e["id"] for e in mem if e["ph"] == "e"}
        assert begins and begins == ends

    def test_metadata_names_every_pid(self, reg_traced, tmp_path):
        obs, _ = reg_traced
        doc = _chrome_doc(tmp_path, obs)
        named = {e["pid"] for e in doc["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "process_name"}
        used = {e["pid"] for e in doc["traceEvents"] if e["ph"] != "M"}
        assert used <= named

    def test_other_data_run_info(self, reg_traced, tmp_path):
        obs, res = reg_traced
        other = _chrome_doc(tmp_path, obs)["otherData"]
        assert other["kernel"] == "MUM"
        assert other["cycles"] == res.cycles
        assert other["truncated"] is False

    def test_spad_lock_wait_states(self, tmp_path):
        # CONV1 under scratchpad sharing exhibits real lock contention
        obs = Observer(metrics=True, trace=True)
        res = run(APPS["CONV1"], SPAD_MODE, obs=obs, **FAST)
        m = res.metrics
        assert m["counters"]["lock_acquires{kind=spad}"] > 0
        assert m["histograms"]["lock_wait_cycles{kind=spad}"]["count"] > 0
        doc = _chrome_doc(tmp_path, obs)
        assert any(e["name"] == "lock-wait" for e in doc["traceEvents"]
                   if e.get("cat") == "warp_state")

    def test_write_trace_requires_tracer(self):
        with pytest.raises(ValueError):
            Observer(metrics=True, trace=False).write_trace("x.json")


# ---------------------------------------------------------------------------
# engine plumbing: digest salting + cache semantics
# ---------------------------------------------------------------------------
class TestEnginePlumbing:
    def _spec(self, **kw):
        from repro.harness.engine import RunSpec
        return RunSpec.create(APPS["gaussian"], unshared("lrr"),
                              **FAST, **kw)

    def test_digest_salted_by_observability(self, tmp_path):
        plain = self._spec()
        traced = self._spec(trace=str(tmp_path / "t.json"))
        metered = self._spec(metrics=True)
        assert len({plain.digest(), traced.digest(),
                    metered.digest()}) == 3

    def test_spec_round_trip_keeps_obs_fields(self, tmp_path):
        from repro.harness.engine import RunSpec
        s = self._spec(trace=str(tmp_path / "t.json"), metrics=True)
        r = RunSpec.from_dict(s.to_dict())
        assert r.trace == s.trace and r.metrics is True
        assert r.digest() == s.digest()

    def test_traced_run_bypasses_cache(self, tmp_path):
        from repro.harness.engine import Engine
        eng = Engine(jobs=1, cache_dir=tmp_path / "cache")
        s = self._spec(trace=str(tmp_path / "t.json"))
        eng.run_one(s)
        eng.run_one(s)
        assert eng.stats.sims == 2 and eng.stats.hits == 0
        assert (tmp_path / "t.json").is_file()

    def test_metrics_run_cached_with_metrics(self, tmp_path):
        from repro.harness.engine import Engine
        eng = Engine(jobs=1, cache_dir=tmp_path)
        s = self._spec(metrics=True)
        r1 = eng.run_one(s)
        r2 = eng.run_one(s)
        assert eng.stats.sims == 1 and eng.stats.hits == 1
        assert r2.metrics == r1.metrics and r1.metrics is not None

    def test_engine_knobs_apply_to_batch(self, tmp_path):
        from repro.harness.engine import Engine
        eng = Engine(jobs=1, cache=False, metrics=True,
                     trace_dir=tmp_path / "traces")
        (res,) = eng.run_batch([self._spec()])
        assert res.metrics is not None
        traces = list((tmp_path / "traces").glob("*.json"))
        assert len(traces) == 1
        assert "gaussian" in traces[0].name
        json.loads(traces[0].read_text())  # well-formed

    def test_worker_pool_runs_match_inprocess(self):
        from repro.harness.engine import Engine
        s = self._spec(metrics=True)
        r1 = Engine(jobs=1, cache=False).run_one(s)
        r2 = Engine(jobs=2, cache=False).run_batch([s])[0]
        assert r1.to_dict() == r2.to_dict()


class TestPrometheusText:
    def test_empty_snapshot_renders_empty(self):
        from repro.obs import prometheus_text
        assert prometheus_text({}) == ""
        assert prometheus_text(MetricsRegistry().to_dict()) == ""

    def test_counters_and_gauges(self):
        from repro.obs import prometheus_text
        reg = MetricsRegistry()
        reg.counter("runs_total", app="bfs").inc(3)
        reg.counter("runs_total", app="lud").inc()
        reg.gauge("queue_depth").set(7)
        text = prometheus_text(reg.to_dict())
        assert "# TYPE runs_total counter" in text
        assert text.count("# TYPE runs_total counter") == 1
        assert 'runs_total{app="bfs"} 3' in text
        assert 'runs_total{app="lud"} 1' in text
        assert "# TYPE queue_depth gauge" in text
        assert "queue_depth 7" in text
        assert text.endswith("\n")

    def test_histogram_cumulative_buckets(self):
        from repro.obs import prometheus_text
        reg = MetricsRegistry()
        h = reg.histogram("latency_ms")
        for v in (0, 1, 1, 3, 200):
            h.record(v)
        lines = prometheus_text(reg.to_dict()).splitlines()
        buckets = [ln for ln in lines if ln.startswith("latency_ms_bucket")]
        # Power-of-two bucket i -> cumulative le="2**i - 1".
        assert 'latency_ms_bucket{le="0"} 1' in buckets
        assert 'latency_ms_bucket{le="1"} 3' in buckets
        assert 'latency_ms_bucket{le="3"} 4' in buckets
        assert 'latency_ms_bucket{le="255"} 5' in buckets
        assert buckets[-1] == 'latency_ms_bucket{le="+Inf"} 5'
        # Cumulative counts never decrease.
        counts = [int(b.rsplit(" ", 1)[1]) for b in buckets]
        assert counts == sorted(counts)
        assert "latency_ms_sum 205" in lines
        assert "latency_ms_count 5" in lines

    def test_histogram_with_labels_keeps_le_last_sorted(self):
        from repro.obs import prometheus_text
        reg = MetricsRegistry()
        reg.histogram("wait_ms", mode="shared").record(2)
        text = prometheus_text(reg.to_dict())
        assert 'wait_ms_bucket{le="3",mode="shared"} 1' in text
        assert 'wait_ms_sum{mode="shared"} 2' in text

    def test_label_value_escaping(self):
        from repro.obs import prometheus_text
        reg = MetricsRegistry()
        reg.counter("odd_total", why='say "hi"\\now').inc()
        text = prometheus_text(reg.to_dict())
        assert 'odd_total{why="say \\"hi\\"\\\\now"} 1' in text

    def test_float_formatting(self):
        from repro.obs import prometheus_text
        reg = MetricsRegistry()
        reg.gauge("ratio").set(0.25)
        reg.gauge("whole").set(3.0)
        text = prometheus_text(reg.to_dict())
        assert "ratio 0.25" in text
        assert "whole 3" in text

    def test_registry_convenience_method(self):
        reg = MetricsRegistry()
        reg.counter("x_total").inc()
        from repro.obs import prometheus_text
        assert reg.to_prometheus() == prometheus_text(reg.to_dict())

    def test_snapshot_round_trips_through_json(self):
        from repro.obs import prometheus_text
        reg = MetricsRegistry()
        reg.histogram("h", k="v").record(5)
        reg.counter("c").inc(2)
        snap = json.loads(json.dumps(reg.to_dict()))
        assert prometheus_text(snap) == prometheus_text(reg.to_dict())
