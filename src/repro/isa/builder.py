"""Fluent builder for synthetic kernels.

The builder produces :class:`~repro.isa.kernel.Kernel` objects and takes
care of register bookkeeping so workload definitions stay readable::

    b = KernelBuilder("hotspot", block_size=256, regs=36, smem=0, grid=168)
    b.ldg(region="grid_in", footprint=2 << 20)
    with b.loop(40):
        b.alu_chain(6)
        b.alu_indep(4)
    b.bar()
    b.stg(region="grid_out", footprint=2 << 20)
    kernel = b.build()

Register allocation order is controllable: ``alloc="high_first"``
(default) makes early instructions touch *high* register sequence
numbers, reproducing the situation of the paper's Fig. 7(a) where the
first instructions of sgemm use registers deep in the declaration order —
i.e. registers that fall in the *shared* partition — which is exactly
what the Sec. IV-B unroll-and-reorder pass fixes.  ``alloc="low_first"``
models an already-friendly declaration order.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.isa.instructions import Instr, MemDesc
from repro.isa.kernel import Kernel, Segment
from repro.isa.opcodes import MemSpace, Op, Pattern

__all__ = ["KernelBuilder"]


class KernelBuilder:
    """Incrementally assemble a :class:`Kernel`."""

    def __init__(self, name: str, *, block_size: int, regs: int,
                 smem: int = 0, grid: int = 1, seed: int = 0,
                 alloc: str = "high_first", variance: float = 0.0) -> None:
        if alloc not in ("high_first", "low_first"):
            raise ValueError("alloc must be 'high_first' or 'low_first'")
        self.name = name
        self.block_size = block_size
        self.regs = regs
        self.smem = smem
        self.grid = grid
        self.seed = seed
        self.variance = variance
        self._alloc = alloc
        self._cursor = 0
        self._last_dst: int | None = None
        self._segments: list[Segment] = []
        self._current: list[Instr] = []
        self._in_loop = False

    # ------------------------------------------------------------------
    # register bookkeeping
    # ------------------------------------------------------------------
    def _next_reg(self) -> int:
        """Allocate the next register in the configured declaration order."""
        idx = self._cursor % self.regs
        self._cursor += 1
        if self._alloc == "high_first":
            return self.regs - 1 - idx
        return idx

    def _pick_src(self, src: int | None) -> int:
        if src is not None:
            return src
        if self._last_dst is not None:
            return self._last_dst
        return self._next_reg()

    def _emit(self, instr: Instr) -> None:
        self._current.append(instr)
        if instr.dst:
            self._last_dst = instr.dst[0]

    # ------------------------------------------------------------------
    # instruction emitters
    # ------------------------------------------------------------------
    def alu(self, *, op: Op = Op.FFMA, dst: int | None = None,
            src: tuple[int, ...] | None = None) -> int:
        """Emit one ALU instruction; returns its destination register."""
        d = self._next_reg() if dst is None else dst
        s = src if src is not None else (self._pick_src(None),)
        self._emit(Instr(op, dst=(d,), src=tuple(s)))
        return d

    def alu_chain(self, n: int, *, op: Op = Op.FFMA) -> int:
        """Emit ``n`` ALU instructions forming a RAW dependency chain."""
        d = self._last_dst if self._last_dst is not None else self._next_reg()
        for _ in range(n):
            d = self.alu(op=op, src=(d,))
        return d

    def alu_indep(self, n: int, *, op: Op = Op.FADD) -> None:
        """Emit ``n`` mutually independent ALU instructions."""
        for _ in range(n):
            d = self._next_reg()
            s = self._next_reg()
            if s == d:  # tiny register budgets: avoid self-dependence
                s = (d + 1) % self.regs
            self._emit(Instr(op, dst=(d,), src=(s,)))

    def sfu(self, n: int = 1) -> int:
        """Emit ``n`` chained special-function instructions."""
        d = self._last_dst if self._last_dst is not None else self._next_reg()
        for _ in range(n):
            nd = self._next_reg()
            self._emit(Instr(Op.SFU, dst=(nd,), src=(d,)))
            d = nd
        return d

    def ldg(self, *, region: str = "g0", footprint: int,
            pattern: Pattern = Pattern.COALESCED, txn: int = 1,
            block_private: bool = True, dst: int | None = None) -> int:
        """Emit a global load; returns its destination register."""
        d = self._next_reg() if dst is None else dst
        mem = MemDesc(MemSpace.GLOBAL, pattern=pattern, txn=txn,
                      footprint=footprint, block_private=block_private,
                      region=region)
        self._emit(Instr(Op.LDG, dst=(d,), src=(), mem=mem))
        return d

    def stg(self, *, region: str = "g0", footprint: int,
            pattern: Pattern = Pattern.COALESCED, txn: int = 1,
            block_private: bool = True, src: int | None = None) -> None:
        """Emit a global store reading ``src`` (defaults to last result)."""
        s = self._pick_src(src)
        mem = MemDesc(MemSpace.GLOBAL, pattern=pattern, txn=txn,
                      footprint=footprint, block_private=block_private,
                      region=region)
        self._emit(Instr(Op.STG, dst=(), src=(s,), mem=mem))

    def lds(self, *, offset: int, stride: int = 0, wrap: int = 0,
            conflicts: int = 1, dst: int | None = None) -> int:
        """Emit a scratchpad load; returns its destination register."""
        d = self._next_reg() if dst is None else dst
        mem = MemDesc(MemSpace.SHARED, offset=offset, stride=stride,
                      wrap=wrap, conflicts=conflicts)
        self._emit(Instr(Op.LDS, dst=(d,), src=(), mem=mem))
        return d

    def sts(self, *, offset: int, stride: int = 0, wrap: int = 0,
            conflicts: int = 1, src: int | None = None) -> None:
        """Emit a scratchpad store reading ``src``."""
        s = self._pick_src(src)
        mem = MemDesc(MemSpace.SHARED, offset=offset, stride=stride,
                      wrap=wrap, conflicts=conflicts)
        self._emit(Instr(Op.STS, dst=(), src=(s,), mem=mem))

    def bar(self) -> None:
        """Emit a block-wide barrier (``__syncthreads()``)."""
        self._emit(Instr(Op.BAR))

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def _flush(self) -> None:
        if self._current:
            self._segments.append(Segment(tuple(self._current), 1))
            self._current = []

    @contextmanager
    def loop(self, repeat: int) -> Iterator[None]:
        """Group subsequent instructions into a segment repeated ``repeat``
        times.  Loops cannot nest (flatten trip counts instead)."""
        if self._in_loop:
            raise RuntimeError("loops cannot nest; multiply trip counts")
        self._flush()
        self._in_loop = True
        try:
            yield
        finally:
            self._in_loop = False
            if not self._current:
                raise ValueError("empty loop body")
            self._segments.append(Segment(tuple(self._current), repeat))
            self._current = []

    def build(self) -> Kernel:
        """Finalise: append EXIT and construct the kernel."""
        self._emit(Instr(Op.EXIT))
        self._flush()
        return Kernel(
            name=self.name,
            threads_per_block=self.block_size,
            regs_per_thread=self.regs,
            smem_per_block=self.smem,
            grid_blocks=self.grid,
            segments=tuple(self._segments),
            seed=self.seed,
            work_variance=self.variance,
        )
