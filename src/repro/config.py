"""GPU hardware configuration.

The defaults in :class:`GPUConfig` mirror Table I of the paper (a
GTX-480-class GPGPU-Sim configuration): 14 single-core clusters, 32768
registers and 16 KB of scratchpad per core, 1536 threads and 8 thread
blocks max per core, two LRR warp schedulers, 16 KB L1 per core, a shared
768 KB L2, and an FR-FCFS DRAM scheduler with GDDR3 timing parameters.

:class:`LatencyConfig` holds the pipeline/memory latencies of the
simulator.  The paper's GDDR3 timings are expressed in DRAM command
cycles; we fold a fixed core-to-DRAM clock ratio into the values so the
whole simulator runs on a single core-clock domain (see DESIGN.md §4).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["GDDRTimings", "LatencyConfig", "GPUConfig", "WARP_SIZE"]

#: Number of threads in a warp (fixed across all NVIDIA generations the
#: paper considers; baked into the block→warp partitioning logic).
WARP_SIZE = 32


@dataclass(frozen=True)
class GDDRTimings:
    """GDDR3 timing parameters from Table I, in DRAM command cycles.

    Only the parameters the FR-FCFS model consumes are kept:

    * ``tRCD`` — row-to-column delay (activate → read/write)
    * ``tRP``  — row precharge time (close row)
    * ``tCL``  — CAS latency (column read → first data)
    * ``tRAS`` — minimum row-active time
    * ``tRC``  — row cycle time (activate → activate, same bank)
    * ``tRRD`` — activate → activate, different banks
    * ``tWR``  — write recovery
    * ``tCDLR``— last-write-data → read command
    * ``burst``— data burst length in command cycles for one transaction
    """

    tRCD: int = 12
    tRP: int = 12
    tCL: int = 12
    tRAS: int = 28
    tRC: int = 40
    tRRD: int = 6
    tWR: int = 12
    tCDLR: int = 5
    burst: int = 4


@dataclass(frozen=True)
class LatencyConfig:
    """Pipeline and memory-hierarchy latencies, in core cycles."""

    #: Simple integer/float ALU result latency (pipelined: only dependent
    #: instructions wait; independent issue continues every cycle).
    alu: int = 4
    #: Special function unit (transcendental) latency.
    sfu: int = 20
    #: Scratchpad (shared memory) load/store latency.
    scratchpad: int = 24
    #: L1 hit latency (includes LD/ST pipeline depth).
    l1_hit: int = 28
    #: One-way SM ↔ L2 interconnect latency.
    interconnect: int = 24
    #: L2 array access latency on a hit.
    l2_hit: int = 48
    #: Core-clock cycles per DRAM command cycle (clock-ratio fold-in).
    dram_clock_ratio: int = 2
    #: Fixed DRAM controller front-end latency (queue entry etc.).
    dram_fixed: int = 20


@dataclass(frozen=True)
class GPUConfig:
    """Top-level GPU configuration (Table I defaults).

    The per-*core* resource limits are the quantities the paper's Eq. 1-4
    operate on: ``registers_per_sm``, ``scratchpad_per_sm``,
    ``max_threads_per_sm`` and ``max_blocks_per_sm``.
    """

    # --- compute resources (Table I) ---
    num_clusters: int = 14
    cores_per_cluster: int = 1
    max_blocks_per_sm: int = 8
    max_threads_per_sm: int = 1536
    registers_per_sm: int = 32768
    scratchpad_per_sm: int = 16 * 1024  # bytes
    num_schedulers: int = 2

    # --- memory hierarchy (Table I + GPGPU-Sim GTX480 defaults) ---
    l1_size: int = 16 * 1024
    l1_assoc: int = 4
    line_size: int = 128
    l1_mshrs: int = 32
    l2_size: int = 768 * 1024
    l2_assoc: int = 8
    l2_mshrs: int = 64
    num_mem_partitions: int = 6
    banks_per_partition: int = 8
    dram_row_size: int = 2048  # bytes per row per bank
    dram_queue_depth: int = 32

    timings: GDDRTimings = field(default_factory=GDDRTimings)
    latency: LatencyConfig = field(default_factory=LatencyConfig)

    # --- two-level scheduler parameter (Narasiman et al.) ---
    fetch_group_size: int = 8

    def __post_init__(self) -> None:
        if self.num_clusters < 1 or self.cores_per_cluster < 1:
            raise ValueError("need at least one SM")
        if self.max_threads_per_sm % WARP_SIZE:
            raise ValueError("max_threads_per_sm must be a warp multiple")
        if self.line_size & (self.line_size - 1):
            raise ValueError("line_size must be a power of two")
        for size, assoc, what in (
            (self.l1_size, self.l1_assoc, "L1"),
            (self.l2_size, self.l2_assoc, "L2"),
        ):
            if size % (assoc * self.line_size):
                raise ValueError(f"{what} size not divisible by assoc*line")
        if self.num_mem_partitions < 1 or self.banks_per_partition < 1:
            raise ValueError("need at least one DRAM partition and bank")

    @property
    def num_sms(self) -> int:
        """Total number of SM cores on the GPU."""
        return self.num_clusters * self.cores_per_cluster

    @property
    def max_warps_per_sm(self) -> int:
        """Maximum resident warps per SM."""
        return self.max_threads_per_sm // WARP_SIZE

    def scaled(self, *, num_clusters: int | None = None,
               max_blocks_per_sm: int | None = None) -> "GPUConfig":
        """Return a copy with a reduced machine size for fast experiments.

        Per-SM resources are untouched, so occupancy and sharing decisions
        (the quantities the paper studies) are identical to the full
        configuration; only the SM count shrinks.
        """
        kwargs: dict = {}
        if num_clusters is not None:
            kwargs["num_clusters"] = num_clusters
        if max_blocks_per_sm is not None:
            kwargs["max_blocks_per_sm"] = max_blocks_per_sm
        return replace(self, **kwargs)
