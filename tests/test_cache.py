"""Set-associative LRU cache with MSHRs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.cache import Cache


def mk(size=1024, assoc=2, line=64, mshrs=4):
    return Cache(size=size, assoc=assoc, line_size=line, mshrs=mshrs)


class TestBasics:
    def test_geometry(self):
        c = mk()
        assert c.n_sets == 1024 // (2 * 64) == 8

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            Cache(size=1000, assoc=3, line_size=64, mshrs=4)

    def test_cold_miss_then_hit(self):
        c = mk()
        assert c.lookup(0, "w") == "miss"
        c.fill(0)
        assert c.lookup(0, "w2") == "hit"
        assert c.stats.hits == 1 and c.stats.misses == 1

    def test_fill_returns_waiters_in_order(self):
        c = mk()
        c.lookup(0, "a")
        assert c.lookup(0, "b") == "merge"
        assert c.fill(0) == ["a", "b"]

    def test_merge_counts_as_miss(self):
        c = mk()
        c.lookup(0, "a")
        c.lookup(0, "b")
        assert c.stats.misses == 2
        assert c.stats.mshr_merges == 1

    def test_mshr_reject_when_full(self):
        c = mk(mshrs=2)
        assert c.lookup(0 * 64, "a") == "miss"
        assert c.lookup(1 * 64, "b") == "miss"
        assert c.lookup(2 * 64, "c") == "reject"
        assert c.stats.mshr_rejects == 1
        # rejected access is not counted as an access
        assert c.stats.accesses == 2

    def test_mshr_free(self):
        c = mk(mshrs=3)
        assert c.mshr_free == 3
        c.lookup(0, "a")
        assert c.mshr_free == 2
        c.fill(0)
        assert c.mshr_free == 3

    def test_probe_no_side_effects(self):
        c = mk()
        assert not c.probe(0)
        assert c.stats.accesses == 0
        c.lookup(0, "a")
        c.fill(0)
        assert c.probe(0)

    def test_bypass_store_path(self):
        c = mk()
        assert c.lookup(0, None, allocate=False) == "bypass"
        assert c.stats.misses == 1
        assert c.mshr_free == c.n_mshrs
        c.lookup(0, "a")
        c.fill(0)
        assert c.lookup(0, None, allocate=False) == "hit"


class TestLRU:
    def test_eviction_order(self):
        c = mk(size=256, assoc=2, line=64, mshrs=8)  # 2 sets
        # lines 0, 2, 4 all map to set 0 (line_addr//64 % 2 == 0)
        for ln in (0, 128, 256):
            c.lookup(ln, "w")
            c.fill(ln)
        assert not c.probe(0)       # LRU evicted
        assert c.probe(128) and c.probe(256)
        assert c.stats.evictions == 1

    def test_hit_refreshes_lru(self):
        c = mk(size=256, assoc=2, line=64, mshrs=8)
        for ln in (0, 128):
            c.lookup(ln, "w")
            c.fill(ln)
        c.lookup(0, "w")            # refresh 0
        c.lookup(256, "w")
        c.fill(256)
        assert c.probe(0)
        assert not c.probe(128)

    def test_flush(self):
        c = mk()
        c.lookup(0, "w")
        c.fill(0)
        c.flush()
        assert not c.probe(0)

    def test_flush_with_pending_rejected(self):
        c = mk()
        c.lookup(0, "w")
        with pytest.raises(RuntimeError):
            c.flush()

    def test_fill_unrequested_line_installs(self):
        c = mk()
        assert c.fill(0) == []
        assert c.probe(0)


class ReferenceLRU:
    """Simple dict-based LRU model for differential testing."""

    def __init__(self, n_sets, assoc, line):
        self.n_sets, self.assoc, self.line = n_sets, assoc, line
        self.sets = [dict() for _ in range(n_sets)]  # insertion-ordered

    def _set(self, addr):
        return self.sets[(addr // self.line) % self.n_sets]

    def access(self, addr):
        s = self._set(addr)
        if addr in s:
            del s[addr]
            s[addr] = None
            return True
        if len(s) >= self.assoc:
            del s[next(iter(s))]
        s[addr] = None
        return False


@given(st.lists(st.integers(0, 31), min_size=1, max_size=300))
@settings(max_examples=100, deadline=None)
def test_property_matches_reference_lru(line_ids):
    """Fill-immediately cache behaves exactly like a textbook LRU."""
    c = Cache(size=4 * 4 * 64, assoc=4, line_size=64, mshrs=64)
    ref = ReferenceLRU(n_sets=4, assoc=4, line=64)
    for lid in line_ids:
        addr = lid * 64
        ref_hit = ref.access(addr)
        got = c.lookup(addr, "w")
        if got == "miss":
            c.fill(addr)
        assert (got == "hit") == ref_hit
