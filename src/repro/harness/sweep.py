"""Batch sweeps over (app × mode × config) with CSV export.

The experiment registry reproduces the paper's artifacts; this module is
the general tool behind it for ad-hoc studies: build a grid of runs and
execute it through the unified :class:`~repro.harness.engine.Engine` —
duplicate (app × mode) grid entries are simulated once, ``jobs=`` runs
unique entries in parallel worker processes, and ``cache=True`` serves
repeated sweeps from the content-addressed on-disk result cache — then
export a flat table ready for any plotting tool.

Example::

    sweep = Sweep(config=GPUConfig().scaled(num_clusters=4),
                  jobs=4, cache=True)
    sweep.add_apps(["hotspot", "MUM"])
    sweep.add_modes([unshared("lrr"), unshared("gto"),
                     shared(SharedResource.REGISTERS, "owf", unroll=True)])
    rows = sweep.run()
    print(sweep.to_csv())
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable

from repro.config import GPUConfig
from repro.harness.engine import Engine, ResultCache, RunEvent, RunSpec
from repro.harness.faults import FaultInjector
from repro.harness.resilience import RetryPolicy, RunFailure
from repro.harness.runner import Mode
from repro.sim.stats import RunResult
from repro.workloads.apps import APPS, App

__all__ = ["Sweep", "result_row", "failure_row", "rows_to_csv"]

#: Flat columns exported for every run.
CSV_COLUMNS = (
    "app", "mode", "clusters", "scale", "waves", "status", "ipc", "cycles",
    "instructions", "stall_cycles", "idle_cycles", "max_resident_blocks",
    "blocks_baseline", "blocks_total", "l1_miss_rate", "l2_miss_rate",
    "dram_requests", "lock_acquires", "lock_waits", "dyn_refusals",
    "early_releases", "digest", "attempts", "error",
)

#: ``error`` column cap; longer messages end with ``...`` so consumers
#: can tell a truncated message from one that happens to fit exactly.
_ERROR_LIMIT = 200


def failure_row(f: RunFailure, *, clusters: int, scale: float,
                waves: float) -> dict:
    """Flatten a :class:`RunFailure` into an annotated CSV row.

    The ``status`` column carries the failure category (successful rows
    say ``ok``) and ``error`` the exception message, so a sweep CSV
    with failed cells still loads into any analysis pipeline.  The
    ``digest`` (RunSpec content hash) and ``attempts`` columns identify
    the exact failed configuration for a re-run without needing the
    original sweep script; messages longer than the column cap are
    truncated with a visible ``...`` marker.
    """
    err = f"{f.exception_type}: {f.message}"
    if len(err) > _ERROR_LIMIT:
        err = err[:_ERROR_LIMIT - 3] + "..."
    return {
        "app": f.app,
        "mode": f.mode,
        "clusters": clusters,
        "scale": scale,
        "waves": waves,
        "status": f.category,
        "digest": f.spec_digest,
        "attempts": f.attempts,
        "error": err,
    }


def result_row(res: RunResult, *, clusters: int, scale: float,
               waves: float, digest: str = "") -> dict:
    """Flatten a :class:`RunResult` into one CSV row.

    ``digest`` is the RunSpec content hash when the caller has it (the
    sweep does) — with it in the CSV any row, ok or failed, identifies
    its exact configuration.  ``attempts`` stays blank for ok rows: the
    engine does not report retry counts on success.
    """
    agg = lambda f: sum(getattr(s, f) for s in res.sm_stats)  # noqa: E731
    return {
        "status": "ok",
        "error": "",
        "digest": digest,
        "attempts": "",
        "app": res.kernel,
        "mode": res.mode,
        "clusters": clusters,
        "scale": scale,
        "waves": waves,
        "ipc": round(res.ipc, 4),
        "cycles": res.cycles,
        "instructions": res.instructions,
        "stall_cycles": res.stall_cycles,
        "idle_cycles": res.idle_cycles,
        "max_resident_blocks": res.max_resident_blocks,
        "blocks_baseline": res.blocks_baseline,
        "blocks_total": res.blocks_total,
        "l1_miss_rate": round(float(res.mem["l1_miss_rate"]), 4),
        "l2_miss_rate": round(float(res.mem["l2_miss_rate"]), 4),
        "dram_requests": res.mem["dram_requests"],
        "lock_acquires": agg("lock_acquires"),
        "lock_waits": agg("lock_waits"),
        "dyn_refusals": agg("dyn_refusals"),
        "early_releases": agg("early_releases"),
    }


def rows_to_csv(rows: Iterable[dict]) -> str:
    """Render rows as CSV text with the standard column set.

    Uses the stdlib :mod:`csv` writer, so fields containing commas,
    quotes or newlines (e.g. exotic mode labels) are escaped correctly.
    """
    out = io.StringIO()
    writer = csv.DictWriter(out, fieldnames=CSV_COLUMNS, restval="",
                            extrasaction="ignore", lineterminator="\n")
    writer.writeheader()
    for r in rows:
        writer.writerow(r)
    return out.getvalue()


class Sweep:
    """A grid of (app × mode) runs on one machine configuration.

    ``jobs``/``cache``/``cache_dir`` configure the private
    :class:`Engine` used for execution (``cache`` defaults to off — an
    ad-hoc study tool shouldn't write to disk unless asked), and the
    resilience knobs ``timeout``/``retry``/``fail_fast``/``sanitize``/
    ``faults``/``max_cycles`` forward to it unchanged (see
    docs/resilience.md); pass ``engine=`` to share an engine (and its
    statistics/cache) with other callers instead.
    """

    def __init__(self, *, config: GPUConfig | None = None,
                 scale: float = 1.0, waves: float = 6.0,
                 jobs: int | None = None,
                 cache: bool | ResultCache = False,
                 cache_dir: str | Path | None = None,
                 timeout: float | None = None,
                 retry: RetryPolicy | None = None,
                 fail_fast: bool = False,
                 sanitize: bool | None = None,
                 faults: FaultInjector | None = None,
                 max_cycles: int | None = None,
                 engine: Engine | None = None) -> None:
        self.config = config if config is not None else GPUConfig()
        self.scale = scale
        self.waves = waves
        self.engine = engine if engine is not None else Engine(
            jobs=jobs, cache=cache, cache_dir=cache_dir, timeout=timeout,
            retry=retry, fail_fast=fail_fast, sanitize=sanitize,
            faults=faults, max_cycles=max_cycles)
        self._apps: list[App] = []
        self._modes: list[Mode] = []
        self.rows: list[dict] = []
        #: RunFailures from the last :meth:`run` (annotated in rows too).
        self.failures: list[RunFailure] = []

    # -- grid construction ----------------------------------------------
    def add_apps(self, apps: Iterable[str | App]) -> "Sweep":
        """Add apps by name (registry) or as App objects."""
        for a in apps:
            self._apps.append(APPS[a] if isinstance(a, str) else a)
        return self

    def add_modes(self, modes: Iterable[Mode]) -> "Sweep":
        """Add run modes."""
        self._modes.extend(modes)
        return self

    @property
    def size(self) -> int:
        """Number of grid entries (identical entries simulate once)."""
        return len(self._apps) * len(self._modes)

    # -- execution --------------------------------------------------------
    def run(self, progress: bool = False) -> list[dict]:
        """Execute the grid; returns (and stores) the flat rows.

        Identical (app × mode) entries are deduplicated: the grid
        simulates each unique configuration once and emits one row for
        it.  With ``jobs > 1`` unique runs execute in parallel; the row
        order (and every value) is independent of the worker count.
        """
        if not self._apps or not self._modes:
            raise ValueError("sweep needs at least one app and one mode")
        specs: list[RunSpec] = []
        seen: set[str] = set()
        for app in self._apps:
            for mode in self._modes:
                spec = RunSpec.create(app, mode, config=self.config,
                                      scale=self.scale, waves=self.waves)
                digest = spec.digest()
                if digest in seen:
                    continue
                seen.add(digest)
                specs.append(spec)

        callback = None
        if progress:  # pragma: no cover - console nicety
            def callback(ev: RunEvent) -> None:
                if isinstance(ev.result, RunFailure):
                    print(f"  [{ev.index}/{ev.total}] "
                          f"{ev.result.describe()}")
                    return
                tag = " (cached)" if ev.cached else ""
                print(f"  [{ev.index}/{ev.total}] {ev.result.kernel} / "
                      f"{ev.result.mode}: IPC {ev.result.ipc:.2f}{tag}")

        results = self.engine.run_batch(specs, progress=callback)
        kw = dict(clusters=self.config.num_clusters, scale=self.scale,
                  waves=self.waves)
        self.rows = [failure_row(res, **kw)
                     if isinstance(res, RunFailure) else
                     result_row(res, digest=spec.digest(), **kw)
                     for spec, res in zip(specs, results)]
        self.failures = [r for r in results if isinstance(r, RunFailure)]
        return self.rows

    def to_csv(self) -> str:
        """CSV of the last :meth:`run`."""
        if not self.rows:
            raise ValueError("run() the sweep first")
        return rows_to_csv(self.rows)

    def best_mode_per_app(self) -> dict[str, str]:
        """App → label of its highest-IPC mode (from the last run)."""
        best: dict[str, dict] = {}
        for r in self.rows:
            if r.get("ipc") is None:  # annotated failure row
                continue
            cur = best.get(r["app"])
            if cur is None or r["ipc"] > cur["ipc"]:
                best[r["app"]] = r
        return {app: r["mode"] for app, r in best.items()}
