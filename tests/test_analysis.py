"""Static kernel analysis module."""

import pytest

from repro.analysis import analyze, format_analysis
from repro.config import GPUConfig
from repro.harness.extensions import tail_heavy_kernel
from repro.isa.builder import KernelBuilder
from repro.workloads.apps import APPS


class TestAnalyze:
    def test_hotspot_profile(self):
        a = analyze(APPS["hotspot"].kernel())
        assert a.name == "hotspot"
        assert a.threads_per_block == 256
        assert a.warps_per_block == 8
        assert a.regs_per_block == 9216
        assert a.occupancy.blocks == 3
        assert a.register_plan.total == 6
        assert a.dynamic_per_warp == \
            APPS["hotspot"].kernel().dynamic_count

    def test_mix_sums_to_total(self):
        a = analyze(APPS["MUM"].kernel())
        assert sum(a.mix.values()) == a.dynamic_per_warp
        assert a.mix["exit"] == 1

    def test_mem_fraction(self):
        b = KernelBuilder("m", block_size=64, regs=8)
        b.ldg(footprint=4096)
        b.alu_indep(3)
        a = analyze(b.build())
        assert a.mem_fraction == pytest.approx(1 / 5)

    def test_prefix_improves_with_unroll_for_sgemm(self):
        a = analyze(APPS["sgemm"].kernel())
        assert a.prefix_after_unroll >= a.prefix_before_unroll

    def test_shared_free_tail_detected(self):
        a = analyze(tail_heavy_kernel())
        # the ALU tail plus trailing store/exit never touch shared regs
        assert a.shared_free_tail > 40

    def test_loop_kernel_has_tiny_tail(self):
        a = analyze(APPS["hotspot"].kernel())
        # shared registers live until the last loop iteration
        assert a.shared_free_tail <= 4

    def test_threshold_parameter(self):
        k = APPS["hotspot"].kernel()
        a50 = analyze(k, t=0.5)
        a10 = analyze(k, t=0.1)
        assert a50.register_plan.private_regs_per_thread == 18
        assert a10.register_plan.private_regs_per_thread == 3

    def test_custom_config(self):
        cfg = GPUConfig().scaled(max_blocks_per_sm=2)
        a = analyze(APPS["CONV1"].kernel(), config=cfg)
        assert a.occupancy.blocks == 2


class TestFormat:
    def test_report_mentions_key_facts(self):
        text = format_analysis(analyze(APPS["hotspot"].kernel()))
        assert "hotspot" in text
        assert "3 blocks/SM" in text
        assert "register sharing:   6 blocks" in text
        assert "non-owner prefix" in text

    @pytest.mark.parametrize("name", ["backprop", "lavaMD", "BFS"])
    def test_all_apps_format(self, name):
        assert format_analysis(analyze(APPS[name].kernel()))
