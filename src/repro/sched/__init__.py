"""Warp schedulers: LRR (baseline), GTO, two-level, and the paper's OWF."""

from repro.sched.base import WarpScheduler, SortedWarpList, make_scheduler, SCHEDULERS
from repro.sched.lrr import LRRScheduler
from repro.sched.gto import GTOScheduler
from repro.sched.two_level import TwoLevelScheduler
from repro.sched.owf import OWFScheduler

__all__ = [
    "WarpScheduler",
    "SortedWarpList",
    "make_scheduler",
    "SCHEDULERS",
    "LRRScheduler",
    "GTOScheduler",
    "TwoLevelScheduler",
    "OWFScheduler",
]
