"""WarpContext trace navigation, scoreboard, work variance."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.builder import KernelBuilder
from repro.sim.block import BlockContext
from repro.sim.warp import REG_PENDING, WarpContext, WarpState, _warp_repeats


def kernel(loops=3, body=2, variance=0.0):
    b = KernelBuilder("t", block_size=64, regs=16, variance=variance)
    with b.loop(loops):
        b.alu_indep(body)
    b.alu_indep(1)
    return b.build()


def warp(k, block_id=0, slot=0, wid=0):
    blk = BlockContext(block_id, 0, k.warps_per_block, 0)
    return WarpContext(wid, slot, blk, k)


class TestTrace:
    def test_walks_full_trace(self):
        k = kernel()
        w = warp(k)
        seen = []
        for _ in range(k.dynamic_count):
            seen.append(w.current_instr.op)
            if seen[-1].name == "EXIT":
                break
            w.advance()
        assert len(seen) == k.dynamic_count
        assert seen[-1].name == "EXIT"

    def test_iter_idx_tracks_repetition(self):
        k = kernel(loops=3, body=2)
        w = warp(k)
        reps = []
        for _ in range(6):
            reps.append(w.iter_idx)
            w.advance()
        assert reps == [0, 0, 1, 1, 2, 2]

    def test_expected_instructions_no_variance(self):
        k = kernel()
        assert warp(k).expected_instructions == k.dynamic_count


class TestScoreboard:
    def test_initially_ready(self):
        w = warp(kernel())
        assert w.earliest_issue() == 0
        assert w.state is WarpState.READY

    def test_earliest_issue_max_of_regs(self):
        k = kernel()
        w = warp(k)
        ins = w.current_instr
        w.reg_ready[ins.dst[0]] = 100
        w.reg_ready[ins.src[0]] = 50
        assert w.earliest_issue() == 100

    def test_pending_sentinel_dominates(self):
        k = kernel()
        w = warp(k)
        w.reg_ready[w.current_instr.src[0]] = REG_PENDING
        assert w.earliest_issue() >= REG_PENDING

    def test_bump_token_invalidates(self):
        w = warp(kernel())
        t0 = w.wake_token
        assert w.bump_token() == t0 + 1


class TestVariance:
    def test_zero_variance_identical_repeats(self):
        k = kernel(variance=0.0)
        assert warp(k, 0, 0).repeats == warp(k, 9, 3).repeats

    def test_variance_spreads_work(self):
        k = kernel(loops=50, variance=0.5)
        counts = {warp(k, b, s).expected_instructions
                  for b in range(8) for s in range(2)}
        assert len(counts) > 3  # genuinely heterogeneous

    def test_variance_bounds(self):
        k = kernel(loops=100, variance=0.4)
        for b in range(20):
            reps = _warp_repeats(k, b, 0)
            assert 60 <= reps[0] <= 140
            assert reps[-1] == 1  # non-loop segment untouched

    def test_variance_deterministic(self):
        k = kernel(loops=50, variance=0.5)
        assert _warp_repeats(k, 3, 1) == _warp_repeats(k, 3, 1)

    def test_variance_differs_across_blocks(self):
        k = kernel(loops=50, variance=0.5)
        reps = {_warp_repeats(k, b, 0) for b in range(10)}
        assert len(reps) > 1

    @given(b=st.integers(0, 10_000), s=st.integers(0, 47),
           v=st.floats(0.0, 0.89))
    @settings(max_examples=200, deadline=None)
    def test_property_repeats_within_bounds(self, b, s, v):
        bld = KernelBuilder("t", block_size=64, regs=8, variance=v)
        with bld.loop(40):
            bld.alu_indep(1)
        k = bld.build()
        reps = _warp_repeats(k, b, s)
        assert 1 <= reps[0] <= round(40 * (1 + v)) + 1


class TestOwfClass:
    def test_unshared_block_is_class_1(self):
        assert warp(kernel()).owf_class() == 1

    def test_is_shared_false_without_pair(self):
        assert not warp(kernel()).is_shared
