"""Top-level CLI.

Subcommands::

    python -m repro analyze <app|file.kasm>       static kernel profile
    python -m repro run <app> [--mode ...]        simulate one app
    python -m repro trace <app> [--mode ...]      print an issue timeline
    python -m repro disasm <app>                  dump assembly listing
    python -m repro list                          registered apps & modes
    python -m repro serve                         run the simulation service
    python -m repro submit <app> [--mode ...]     queue a run on a service
    python -m repro jobs [id]                     list/poll/cancel jobs

(Per-figure experiment reproduction lives in ``python -m repro.harness``;
the service's API and semantics are documented in docs/service.md.)
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis import analyze, format_analysis
from repro.config import GPUConfig
from repro.core.sharing import SharedResource
from repro.harness.runner import shared, unshared
from repro.isa.assembler import assemble, disassemble
from repro.isa.kernel import Kernel
from repro.workloads.apps import APPS

_MODES = {
    "lrr": lambda: unshared("lrr"),
    "gto": lambda: unshared("gto"),
    "two_level": lambda: unshared("two_level"),
    "shared-reg": lambda: shared(SharedResource.REGISTERS, "owf",
                                 unroll=True, dyn=True),
    "shared-reg-er": lambda: shared(SharedResource.REGISTERS, "owf",
                                    unroll=True, early_release=True),
    "shared-reg-noopt": lambda: shared(SharedResource.REGISTERS, "lrr"),
    "shared-spad": lambda: shared(SharedResource.SCRATCHPAD, "owf"),
}


def _load_kernel(spec: str) -> Kernel:
    """An app name from the registry, or a path to a .kasm file."""
    if spec in APPS:
        return APPS[spec].kernel()
    path = Path(spec)
    if path.is_file():
        return assemble(path.read_text())
    raise SystemExit(f"unknown app or missing file: {spec!r} "
                     f"(apps: {', '.join(sorted(APPS))})")


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(prog="python -m repro")
    p.add_argument("--profile", action="store_true",
                   help="run under cProfile and print the top-20 "
                        "functions by cumulative time to stderr")
    sub = p.add_subparsers(dest="cmd", required=True)

    pa = sub.add_parser("analyze", help="static kernel profile")
    pa.add_argument("kernel")
    pa.add_argument("-t", type=float, default=0.1,
                    help="sharing threshold (default 0.1)")

    pr = sub.add_parser("run", help="simulate one app/kernel")
    pr.add_argument("kernel")
    pr.add_argument("--mode", choices=sorted(_MODES), default="lrr")
    pr.add_argument("--clusters", type=int, default=4)
    pr.add_argument("--scale", type=float, default=1.0)
    pr.add_argument("--waves", type=float, default=6.0)
    pr.add_argument("--jobs", type=int, default=None,
                    help="engine worker processes (single runs stay "
                         "in-process; the flag mirrors the harness CLI)")
    pr.add_argument("--cache-dir", default=None,
                    help="result-cache directory (default: "
                         "$REPRO_CACHE_DIR or ~/.cache/repro)")
    pr.add_argument("--no-cache", action="store_true",
                    help="disable the on-disk result cache")
    pr.add_argument("--max-cycles", type=int, default=2_000_000,
                    help="simulation cycle limit (default 2,000,000)")
    pr.add_argument("--timeout", type=float, default=None,
                    help="wall-clock budget in seconds for the run")
    pr.add_argument("--retries", type=int, default=None,
                    help="max attempts for transient failures (default 3)")
    pr.add_argument("--fail-fast", action="store_true",
                    help="re-raise failures instead of reporting them")
    pr.add_argument("--sanitize", action="store_true",
                    help="validate runtime invariants during the run")
    pr.add_argument("--trace", metavar="OUT.json", default=None,
                    help="write a Chrome trace-event timeline (load in "
                         "Perfetto / chrome://tracing; a .jsonl suffix "
                         "selects the line-stream form); bypasses the "
                         "result cache")
    pr.add_argument("--metrics", action="store_true",
                    help="collect the observability metrics registry and "
                         "print a warp-state breakdown")
    pr.add_argument("--json", action="store_true",
                    help="emit the full RunResult payload as JSON on "
                         "stdout (same envelope the service returns)")

    ps = sub.add_parser("serve", help="run the simulation job service")
    ps.add_argument("--host", default="127.0.0.1")
    ps.add_argument("--port", type=int, default=8070,
                    help="listen port (0 = ephemeral; default 8070)")
    ps.add_argument("--db", default="repro-jobs.sqlite",
                    help="SQLite job-store path (default "
                         "./repro-jobs.sqlite)")
    ps.add_argument("--jobs", type=int, default=None,
                    help="engine worker processes")
    ps.add_argument("--cache-dir", default=None,
                    help="result-cache directory")
    ps.add_argument("--no-cache", action="store_true",
                    help="disable the on-disk result cache")
    ps.add_argument("--timeout", type=float, default=None,
                    help="per-run wall-clock budget in seconds")
    ps.add_argument("--retries", type=int, default=None,
                    help="max attempts for transient failures")
    ps.add_argument("--batch-max", type=int, default=16,
                    help="max jobs coalesced into one engine batch")
    ps.add_argument("--batch-wait", type=float, default=0.05,
                    help="batch coalescing window in seconds")
    ps.add_argument("--max-queue", type=int, default=256,
                    help="admission control: max queued jobs before "
                         "submissions get 429")
    ps.add_argument("--max-queued-bytes", type=int, default=8 << 20,
                    help="admission control: max queued spec bytes")
    ps.add_argument("--rate-limit", type=float, default=0.0,
                    help="per-client submissions/sec (0 = unlimited)")
    ps.add_argument("--rate-burst", type=int, default=20,
                    help="per-client token-bucket burst")

    pu = sub.add_parser("submit", help="queue a run on a service")
    pu.add_argument("kernel", help="registry app name (ad-hoc .kasm "
                                   "kernels cannot run remotely)")
    pu.add_argument("--mode", choices=sorted(_MODES), default="lrr")
    pu.add_argument("--clusters", type=int, default=4)
    pu.add_argument("--scale", type=float, default=1.0)
    pu.add_argument("--waves", type=float, default=6.0)
    pu.add_argument("--max-cycles", type=int, default=2_000_000)
    pu.add_argument("--metrics", action="store_true",
                    help="collect the metrics registry on the service")
    pu.add_argument("--priority", type=int, default=0,
                    help="higher runs sooner (FIFO within a priority)")
    pu.add_argument("--sanitize", action="store_true",
                    help="run under the runtime invariant sanitizer")
    pu.add_argument("--host", default="127.0.0.1")
    pu.add_argument("--port", type=int, default=8070)
    pu.add_argument("--client", default="cli",
                    help="client id for rate limiting / job listings")
    pu.add_argument("--wait", action="store_true",
                    help="block until the job finishes and print the "
                         "result")
    pu.add_argument("--wait-timeout", type=float, default=300.0,
                    help="seconds to wait with --wait (default 300)")
    pu.add_argument("--json", action="store_true",
                    help="print the job record / result payload as JSON")

    pj = sub.add_parser("jobs", help="list/poll/cancel service jobs")
    pj.add_argument("id", nargs="?", default=None,
                    help="job id (omit to list jobs)")
    pj.add_argument("--host", default="127.0.0.1")
    pj.add_argument("--port", type=int, default=8070)
    pj.add_argument("--state", default=None,
                    help="filter listings by state")
    pj.add_argument("--client", dest="client_filter", default=None,
                    help="filter listings by client id")
    pj.add_argument("--limit", type=int, default=50)
    pj.add_argument("--cancel", action="store_true",
                    help="cancel the given queued job")
    pj.add_argument("--wait", action="store_true",
                    help="block until the given job finishes and print "
                         "the result")
    pj.add_argument("--wait-timeout", type=float, default=300.0)
    pj.add_argument("--json", action="store_true",
                    help="print raw JSON records")

    pd = sub.add_parser("disasm", help="dump assembly listing")
    pd.add_argument("kernel")

    pt = sub.add_parser("trace", help="print an issue timeline")
    pt.add_argument("kernel")
    pt.add_argument("--mode", choices=sorted(_MODES), default="lrr")
    pt.add_argument("--first", type=int, default=40,
                    help="issues to show (default 40)")
    pt.add_argument("--sm", type=int, default=0)

    sub.add_parser("list", help="registered apps and run modes")

    args = p.parse_args(argv)

    if args.profile:
        from repro.profiling import profiled
        return profiled(_dispatch, args)
    return _dispatch(args)


def _dispatch(args: argparse.Namespace) -> int:
    if args.cmd == "list":
        print("apps: ", ", ".join(sorted(APPS)))
        print("modes:", ", ".join(sorted(_MODES)))
        return 0

    if args.cmd == "analyze":
        print(format_analysis(analyze(_load_kernel(args.kernel),
                                      t=args.t)))
        return 0

    if args.cmd == "disasm":
        print(disassemble(_load_kernel(args.kernel)), end="")
        return 0

    if args.cmd == "trace":
        from repro.core.occupancy import occupancy as _occ
        from repro.core.sharing import SharingSpec, plan_sharing
        from repro.core.unroll import reorder_registers
        from repro.sim.gpu import GPU
        from repro.sim.trace import TraceRecorder
        kernel = _load_kernel(args.kernel)
        cfg = GPUConfig().scaled(num_clusters=1)
        mode = _MODES[args.mode]()
        if mode.unroll:
            kernel = reorder_registers(kernel)
        grid = max(2, 2 * _occ(kernel, cfg).blocks)
        kernel = kernel.with_grid(grid)
        plan = None
        if mode.sharing is not None:
            plan = plan_sharing(kernel, cfg,
                                SharingSpec(mode.sharing, mode.t))
        gpu = GPU(kernel, cfg, scheduler=mode.scheduler, plan=plan,
                  dyn=mode.dyn, early_release=mode.early_release,
                  mode=mode.label)
        tr = TraceRecorder(gpu, max_events=200_000)
        res = tr.run()
        print(tr.timeline(sm=args.sm, first=args.first))
        print(f"... {res.instructions} instructions in {res.cycles} "
              f"cycles (IPC {res.ipc:.2f})")
        return 0

    if args.cmd == "serve":
        return _cmd_serve(args)
    if args.cmd == "submit":
        return _cmd_submit(args)
    if args.cmd == "jobs":
        return _cmd_jobs(args)

    # run — registry apps honour --scale; .kasm files run as written
    import json as _json

    from repro.harness.engine import Engine, RunSpec
    from repro.harness.resilience import RetryPolicy, RunFailure
    from repro.service.serialize import failure_payload, result_payload
    target = APPS.get(args.kernel) or _load_kernel(args.kernel)
    cfg = GPUConfig().scaled(num_clusters=args.clusters)
    mode = _MODES[args.mode]()
    retry = RetryPolicy(max_attempts=max(1, args.retries)) \
        if args.retries is not None else None
    engine = Engine(jobs=args.jobs, cache=not args.no_cache,
                    cache_dir=args.cache_dir, timeout=args.timeout,
                    retry=retry, fail_fast=args.fail_fast,
                    sanitize=args.sanitize or None)
    spec = RunSpec.create(target, mode, config=cfg,
                          scale=args.scale, waves=args.waves,
                          max_cycles=args.max_cycles,
                          trace=args.trace, metrics=args.metrics)
    res = engine.run_one(spec)
    if isinstance(res, RunFailure):
        if args.json:
            print(_json.dumps(failure_payload(res), indent=2))
        print(f"RUN FAILED [{res.category}] {res.app} [{res.mode}]: "
              f"{res.exception_type} after {res.attempts} attempt(s)\n"
              f"  {res.message}", file=sys.stderr)
        return 1
    cached = bool(engine.stats.hits)
    if args.json:
        # The exact envelope the service returns for this spec — the
        # service client and this flag share one serializer, so local
        # and remote artifacts diff cleanly.
        print(_json.dumps(result_payload(
            res, digest=spec.digest(), cached=cached,
            elapsed=engine.stats.sim_time, spec=spec.to_dict()),
            indent=2))
        return 0
    _print_result_summary(
        res, f"on {args.clusters} clusters", cached)
    if res.metrics is not None:
        _print_warp_state_breakdown(res.metrics)
    if args.trace:
        print(f"trace written to {args.trace}")
    return 0


def _print_result_summary(res, where: str, cached: bool) -> None:
    """Headline-number block shared by ``run`` and the service verbs."""
    s = res.summary()
    suffix = " (cached)" if cached else ""
    print(f"{res.kernel} [{res.mode}] {where}:{suffix}")
    for key in ("ipc", "cycles", "instructions", "stall_cycles",
                "idle_cycles", "max_resident_blocks", "l1_miss_rate",
                "l2_miss_rate", "dram_requests"):
        v = s[key]
        print(f"  {key:20s} {v:.4g}" if isinstance(v, float)
              else f"  {key:20s} {v}")


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.harness.resilience import RetryPolicy
    from repro.service import ServiceConfig, ServiceServer
    cfg = ServiceConfig(
        host=args.host, port=args.port, db_path=args.db,
        batch_max=args.batch_max, batch_wait=args.batch_wait,
        max_queue_depth=args.max_queue,
        max_queued_bytes=args.max_queued_bytes,
        rate_limit=args.rate_limit, rate_burst=args.rate_burst)
    engine_opts: dict = {"jobs": args.jobs,
                         "cache": not args.no_cache,
                         "cache_dir": args.cache_dir,
                         "timeout": args.timeout}
    if args.retries is not None:
        engine_opts["retry"] = RetryPolicy(
            max_attempts=max(1, args.retries))
    server = ServiceServer(cfg, engine_opts=engine_opts)
    print(f"repro service: db={cfg.db_path} "
          f"batch_max={cfg.batch_max} max_queue={cfg.max_queue_depth}"
          + (f" (recovered {server.recovered} stranded jobs)"
             if server.recovered else ""))
    # run() blocks until SIGTERM/SIGINT, then drains gracefully.
    server.run()
    print(f"repro service: drained and stopped "
          f"(listened on {args.host}:{server.port})")
    return 0


def _build_submit_spec(args: argparse.Namespace):
    from repro.harness.engine import RunSpec
    if args.kernel not in APPS:
        raise SystemExit(
            f"unknown app {args.kernel!r}: the service only runs "
            f"registry apps (ad-hoc kernels do not survive JSON); "
            f"apps: {', '.join(sorted(APPS))}")
    cfg = GPUConfig().scaled(num_clusters=args.clusters)
    return RunSpec.create(APPS[args.kernel], _MODES[args.mode](),
                          config=cfg, scale=args.scale, waves=args.waves,
                          max_cycles=args.max_cycles,
                          metrics=args.metrics)


def _print_wire_payload(payload: dict, as_json: bool) -> int:
    """Render a service result payload (shared by submit/jobs --wait)."""
    import json as _json

    from repro.service.serialize import parse_result
    if as_json:
        print(_json.dumps(payload, indent=2))
        return 0 if payload.get("ok") else 1
    if payload.get("ok"):
        res = parse_result(payload)
        _print_result_summary(res, f"digest {payload.get('digest')}",
                              bool(payload.get("cached")))
        return 0
    if payload.get("cancelled"):
        print("job was cancelled before it ran", file=sys.stderr)
        return 1
    f = payload.get("failure", {})
    print(f"JOB FAILED [{f.get('category')}] {f.get('app')} "
          f"[{f.get('mode')}]: {f.get('exception_type')} after "
          f"{f.get('attempts')} attempt(s)\n  {f.get('message')}",
          file=sys.stderr)
    return 1


def _cmd_submit(args: argparse.Namespace) -> int:
    import json as _json

    from repro.service import AdmissionRejected, ServiceClient
    spec = _build_submit_spec(args)
    client = ServiceClient(args.host, args.port, client_id=args.client)
    try:
        job = client.submit(spec, priority=args.priority,
                            sanitize=args.sanitize)
    except AdmissionRejected as exc:
        print(f"submission rejected ({exc.reason}); retry after "
              f"{exc.retry_after:.3g}s", file=sys.stderr)
        return 2
    if not args.wait:
        if args.json:
            print(_json.dumps({"job": job}, indent=2))
        else:
            print(f"queued {job['id']} ({job['app']} [{job['mode']}], "
                  f"priority {job['priority']}, digest "
                  f"{job['digest'][:16]}…)")
        return 0
    payload = client.wait(job["id"], timeout=args.wait_timeout)
    return _print_wire_payload(payload, args.json)


def _cmd_jobs(args: argparse.Namespace) -> int:
    import json as _json

    from repro.service import ServiceClient, ServiceError
    client = ServiceClient(args.host, args.port)
    try:
        if args.id is None:
            jobs = client.jobs(state=args.state,
                               client=args.client_filter,
                               limit=args.limit)
            if args.json:
                print(_json.dumps({"jobs": jobs}, indent=2))
                return 0
            if not jobs:
                print("no jobs")
                return 0
            print(f"{'ID':16s} {'STATE':9s} {'PRI':>3s} "
                  f"{'APP':12s} {'MODE':18s} CLIENT")
            for j in jobs:
                print(f"{j['id']:16s} {j['state']:9s} "
                      f"{j['priority']:>3d} {str(j['app']):12s} "
                      f"{str(j['mode']):18s} {j['client']}")
            return 0
        if args.cancel:
            client.cancel(args.id)
            print(f"cancelled {args.id}")
            return 0
        if args.wait:
            payload = client.wait(args.id, timeout=args.wait_timeout)
            return _print_wire_payload(payload, args.json)
        job = client.status(args.id)
        if args.json:
            print(_json.dumps({"job": job}, indent=2))
        else:
            print(f"{job['id']}: {job['state']} ({job['app']} "
                  f"[{job['mode']}], priority {job['priority']}, "
                  f"client {job['client']!r})")
        return 0
    except ServiceError as exc:
        print(str(exc), file=sys.stderr)
        return 1


def _print_warp_state_breakdown(metrics: dict) -> int:
    """Fig. 10-style warp-state cycle breakdown from the registry."""
    hists = metrics.get("histograms", {})
    rows = []
    for key, h in sorted(hists.items()):
        if key.startswith("warp_state_cycles{"):
            state = key[len("warp_state_cycles{state="):-1]
            rows.append((state, h["sum"], h["count"]))
    if not rows:
        return 0
    total = sum(r[1] for r in rows) or 1
    print("warp-state cycles (all warps):")
    for state, tot, count in sorted(rows, key=lambda r: -r[1]):
        print(f"  {state:18s} {tot:>12d}  ({100.0 * tot / total:5.1f}%  "
              f"over {count} intervals)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
