"""Golden-file regression layer for the deterministic experiments.

The sim-free experiments (occupancy, Eq. 4 block counts, overhead bits)
are exact reproductions of paper tables and must never drift.  Their
canonical outputs are committed in ``golden_data.json``;
:func:`check_goldens` re-runs them and reports any mismatch.  Regenerate
with ``python -m repro.harness.golden`` after an *intentional* change.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.config import GPUConfig
from repro.harness.experiments import run_experiment

__all__ = ["GOLDEN_EXPERIMENTS", "collect", "check_goldens", "golden_path"]

#: Deterministic, simulation-free experiments safe to pin exactly.
GOLDEN_EXPERIMENTS = ("fig1", "fig8a", "fig8b", "table6", "table8",
                      "hw_overhead")


def golden_path() -> Path:
    """Location of the committed golden data."""
    return Path(__file__).with_name("golden_data.json")


def collect() -> dict:
    """Run every golden experiment on the Table I machine."""
    cfg = GPUConfig()
    out: dict[str, list[dict]] = {}
    for exp_id in GOLDEN_EXPERIMENTS:
        res = run_experiment(exp_id, config=cfg)
        out[exp_id] = res.rows
    return out


def check_goldens() -> list[str]:
    """Compare current outputs against the committed goldens.

    Returns a list of human-readable mismatch descriptions (empty =
    everything matches).
    """
    path = golden_path()
    if not path.is_file():
        return [f"golden file missing: {path}"]
    want = json.loads(path.read_text())
    got = collect()
    problems: list[str] = []
    for exp_id in GOLDEN_EXPERIMENTS:
        if exp_id not in want:
            problems.append(f"{exp_id}: missing from golden file")
            continue
        if got[exp_id] != want[exp_id]:
            for i, (g, w) in enumerate(zip(got[exp_id], want[exp_id])):
                if g != w:
                    problems.append(f"{exp_id} row {i}: {w!r} -> {g!r}")
            if len(got[exp_id]) != len(want[exp_id]):
                problems.append(f"{exp_id}: row count "
                                f"{len(want[exp_id])} -> {len(got[exp_id])}")
    return problems


def regenerate() -> Path:
    """Rewrite the golden file from the current implementation."""
    path = golden_path()
    path.write_text(json.dumps(collect(), indent=1, sort_keys=True) + "\n")
    return path


if __name__ == "__main__":  # pragma: no cover
    print(f"wrote {regenerate()}")
