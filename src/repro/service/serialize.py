"""Wire payloads for simulation results.

One serializer feeds three consumers — ``repro run --json``, the
service's ``/jobs/<id>/result`` endpoint, and the client library — so
a result observed through the service is byte-comparable to one
printed locally.  The ``result`` field is the exact
:meth:`RunResult.to_dict` payload (:func:`parse_result` restores it
losslessly); ``summary`` duplicates the headline numbers for humans
and shell pipelines that don't want to recompute them.
"""

from __future__ import annotations

from repro.harness.resilience import RunFailure
from repro.sim.stats import RunResult

__all__ = ["PAYLOAD_SCHEMA", "result_payload", "failure_payload",
           "parse_result"]

#: Bump when the payload layout changes.
PAYLOAD_SCHEMA = 1


def result_payload(result: RunResult, *, digest: str | None = None,
                   cached: bool = False, elapsed: float | None = None,
                   spec: dict | None = None) -> dict:
    """JSON-serializable envelope for a successful run.

    ``digest`` is the :meth:`RunSpec.digest` content address (the
    service's digest-equality guarantee hangs off this field);
    ``cached`` records whether the result came from the engine's disk
    cache; ``spec`` optionally embeds the submitted spec for
    self-contained artifacts.
    """
    payload: dict = {
        "schema": PAYLOAD_SCHEMA,
        "ok": True,
        "digest": digest,
        "cached": cached,
        "result": result.to_dict(),
        "summary": result.summary(),
    }
    if elapsed is not None:
        payload["elapsed"] = round(elapsed, 6)
    if spec is not None:
        payload["spec"] = spec
    return payload


def failure_payload(failure: RunFailure) -> dict:
    """JSON-serializable envelope for a failed run."""
    return {
        "schema": PAYLOAD_SCHEMA,
        "ok": False,
        "digest": failure.spec_digest,
        "failure": failure.to_dict(),
    }


def parse_result(payload: dict) -> RunResult | RunFailure:
    """Inverse of the two builders: envelope → result object.

    Raises ``ValueError`` on a schema we don't understand, so callers
    fail loudly instead of mis-parsing a future layout.
    """
    schema = payload.get("schema")
    if schema != PAYLOAD_SCHEMA:
        raise ValueError(f"unsupported result payload schema {schema!r} "
                         f"(expected {PAYLOAD_SCHEMA})")
    if payload.get("ok"):
        return RunResult.from_dict(payload["result"])
    if payload.get("cancelled"):
        raise ValueError("job was cancelled before it ran")
    return RunFailure.from_dict(payload["failure"])
