"""Kernel representation: segments of instructions with repeat counts."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, Tuple

from repro.config import WARP_SIZE
from repro.isa.instructions import Instr
from repro.isa.opcodes import Op, SHARED_OPS

__all__ = ["Segment", "Kernel"]


@dataclass(frozen=True)
class Segment:
    """A straight-line block of instructions executed ``repeat`` times.

    Loops in the synthetic kernels are unrolled at *trace* level: every
    warp executes ``instrs`` back-to-back ``repeat`` times.  Branch
    divergence is deliberately not modelled (the paper treats divergence
    handling as orthogonal work, Sec. VII).
    """

    instrs: Tuple[Instr, ...]
    repeat: int = 1

    def __post_init__(self) -> None:
        if self.repeat < 1:
            raise ValueError("repeat must be >= 1")
        if not self.instrs:
            raise ValueError("segment cannot be empty")

    @property
    def dynamic_count(self) -> int:
        """Dynamic instructions contributed by this segment."""
        return len(self.instrs) * self.repeat


@dataclass(frozen=True)
class Kernel:
    """A launchable kernel: resource signature + instruction segments.

    ``regs_per_thread`` and ``smem_per_block`` are the *declared* resource
    requirements that drive occupancy and sharing decisions (paper Tables
    II/III).  The instruction stream may touch fewer registers or a
    smaller scratchpad prefix than declared — the paper itself relies on
    this for lavaMD, whose scratchpad accesses never reach the shared
    region.
    """

    name: str
    threads_per_block: int
    regs_per_thread: int
    smem_per_block: int
    grid_blocks: int
    segments: Tuple[Segment, ...]
    seed: int = 0
    #: Data-dependent work imbalance: each warp's loop trip counts are
    #: scaled by a deterministic per-(block, warp) factor in
    #: ``[1-v, 1+v]``.  This models the per-thread trip-count variance of
    #: real kernels (MUM's query lengths, hotspot's boundary blocks, ...)
    #: that makes block-granularity resource allocation wasteful — the
    #: paper's motivation.  Kernels with barriers inside loops must keep
    #: v = 0 (diverging trip counts across a barrier are CUDA UB).
    work_variance: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.work_variance < 0.9:
            raise ValueError("work_variance must be in [0, 0.9)")
        if self.work_variance > 0.0:
            for seg in self.segments:
                if seg.repeat > 1 and any(i.op is Op.BAR for i in seg.instrs):
                    raise ValueError(
                        "work_variance requires barrier-free loop bodies "
                        "(diverging trip counts across __syncthreads)")
        if self.threads_per_block < 1 or self.threads_per_block > 1536:
            raise ValueError("threads_per_block out of range")
        if self.regs_per_thread < 1:
            raise ValueError("regs_per_thread must be >= 1")
        if self.smem_per_block < 0:
            raise ValueError("smem_per_block must be >= 0")
        if self.grid_blocks < 1:
            raise ValueError("grid_blocks must be >= 1")
        if not self.segments:
            raise ValueError("kernel must have at least one segment")
        last = self.segments[-1].instrs[-1]
        if last.op is not Op.EXIT:
            raise ValueError("kernel must end with EXIT")
        max_reg = self.max_register_used
        if max_reg >= self.regs_per_thread:
            raise ValueError(
                f"instruction uses register {max_reg} but kernel declares "
                f"only {self.regs_per_thread} registers/thread")
        for ins in self.static_instrs:
            if ins.op in SHARED_OPS:
                m = ins.mem
                assert m is not None
                hi = m.offset if m.wrap == 0 else max(m.offset, m.wrap - 1)
                if hi >= self.smem_per_block:
                    raise ValueError(
                        f"scratchpad access at offset {hi} exceeds declared "
                        f"{self.smem_per_block} bytes/block")

    # ------------------------------------------------------------------
    # resource signature helpers
    # ------------------------------------------------------------------
    @property
    def warps_per_block(self) -> int:
        """Warps per thread block (threads rounded up to warp multiples)."""
        return -(-self.threads_per_block // WARP_SIZE)

    @property
    def regs_per_block(self) -> int:
        """Registers one thread block occupies (``Rtb`` for registers)."""
        return self.regs_per_thread * self.threads_per_block

    @property
    def regs_per_warp(self) -> int:
        """Registers one warp occupies (``Rw`` in the paper)."""
        return self.regs_per_thread * WARP_SIZE

    # ------------------------------------------------------------------
    # instruction stream helpers
    # ------------------------------------------------------------------
    @property
    def static_instrs(self) -> Tuple[Instr, ...]:
        """All static instructions in program order (segments flattened)."""
        out: list[Instr] = []
        for seg in self.segments:
            out.extend(seg.instrs)
        return tuple(out)

    @property
    def dynamic_count(self) -> int:
        """Dynamic instructions executed by each warp."""
        return sum(seg.dynamic_count for seg in self.segments)

    @property
    def max_register_used(self) -> int:
        """Highest register sequence number referenced (-1 if none)."""
        hi = -1
        for ins in self.static_instrs:
            for r in ins.regs:
                hi = max(hi, r)
        return hi

    @property
    def registers_used(self) -> Tuple[int, ...]:
        """Distinct register indices in order of first use.

        This is the order the Sec. IV-B unroll-and-reorder pass declares
        registers in.
        """
        seen: dict[int, None] = {}
        for ins in self.static_instrs:
            for r in ins.regs:
                seen.setdefault(r)
        return tuple(seen)

    def iter_trace(self) -> Iterator[Instr]:
        """Yield the full dynamic instruction stream of one warp."""
        for seg in self.segments:
            for _ in range(seg.repeat):
                yield from seg.instrs

    def remap_registers(self, mapping: dict[int, int]) -> "Kernel":
        """Return a copy with every instruction renumbered via ``mapping``."""
        segs = tuple(
            Segment(tuple(i.remap(mapping) for i in s.instrs), s.repeat)
            for s in self.segments)
        return replace(self, segments=segs)

    def with_grid(self, grid_blocks: int) -> "Kernel":
        """Return a copy with a different grid size (used for scaling)."""
        return replace(self, grid_blocks=grid_blocks)
