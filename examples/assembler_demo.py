#!/usr/bin/env python3
"""Author a kernel in assembly text, analyze it, and simulate it.

Demonstrates the text front-end (``repro.isa.assembler``) together with
the static analysis module: the workflow a user would follow to port a
real kernel's structure into the simulator, including seeing what the
paper's unroll pass changes in the listing (its Fig. 7).

Run:  python examples/assembler_demo.py
"""

from repro import GPUConfig, SharedResource, assemble, disassemble, run, \
    shared, unshared
from repro.analysis import analyze, format_analysis
from repro.core.unroll import reorder_registers

SOURCE = """
; A tiled matrix-multiply-like kernel, written by hand.
; Note the declaration order: the hot loop reads r30/r35 first --
; exactly the sgemm situation of the paper's Fig. 7(a).
.kernel tinygemm
.block 128
.regs 40
.smem 2048
.seed 11
.variance 0.2

ldg   r35, g[tileA : 4096 : shared : broadcast]
sts   s[0 : 64 : 2048], r35
bar
.loop 32
    ldg  r30, g[tileB : 2048 : private]
    ffma r31, r30, r35
    ffma r32, r31
    fadd r33, r32
    fadd r34, r33
    lds  r29, s[0 : 64 : 2048]
.endloop
bar
stg   g[C : 262144 : private], r34
exit
"""

cfg = GPUConfig().scaled(num_clusters=4)
kernel = assemble(SOURCE)

print(format_analysis(analyze(kernel)))

print("\n--- the paper's Fig. 7 transformation on this kernel ---")
print("first 4 instructions before the unroll pass:")
for line in disassemble(kernel).splitlines()[8:12]:
    print("   ", line)
print("after reorder_registers (registers renumbered by first use):")
for line in disassemble(reorder_registers(kernel)).splitlines()[8:12]:
    print("   ", line)

print("\n--- simulation ---")
base = run(kernel, unshared("lrr"), config=cfg)
best = run(kernel, shared(SharedResource.REGISTERS, "owf", unroll=True),
           config=cfg)
print(f"{base.mode:24s} IPC {base.ipc:6.2f}")
print(f"{best.mode:24s} IPC {best.ipc:6.2f} "
      f"({(best.ipc / base.ipc - 1) * 100:+.2f}%)")
