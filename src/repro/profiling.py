"""Opt-in cProfile wrapper behind the CLIs' ``--profile`` flag.

Both entry points (``python -m repro`` and ``python -m repro.harness``)
accept ``--profile``: the command runs unchanged under :mod:`cProfile`
and a top-20-by-cumulative-time table is printed to stderr afterwards,
so normal stdout output (reports, result summaries) stays parseable.

This is the first tool to reach for when simulator throughput regresses
— see docs/performance.md for how to read the table against the fast
core's hot path.
"""

from __future__ import annotations

import cProfile
import pstats
import sys
from typing import Any, Callable, TextIO

__all__ = ["profiled"]

#: Rows of the hot-function table printed after a profiled run.
TOP_N = 20


def profiled(fn: Callable[..., Any], *args: Any,
             stream: TextIO | None = None, **kwargs: Any) -> Any:
    """Run ``fn(*args, **kwargs)`` under cProfile; return its result.

    The profile table (top ``TOP_N`` functions by cumulative time) goes
    to ``stream`` (default stderr) after the call — including when the
    call raises, so a profile of the work done before a crash or
    KeyboardInterrupt is still reported.
    """
    out = sys.stderr if stream is None else stream
    prof = cProfile.Profile()
    try:
        return prof.runcall(fn, *args, **kwargs)
    finally:
        stats = pstats.Stats(prof, stream=out)
        stats.sort_stats("cumulative")
        print(f"--- profile: top {TOP_N} by cumulative time ---",
              file=out)
        stats.print_stats(TOP_N)
