"""Sharing plans: how many blocks to launch per SM (paper Sec. III-C).

Notation (paper Eq. 1-4):

* ``R``    — resource units per SM
* ``Rtb``  — units one block needs
* ``D``    — baseline blocks per SM, ``⌊R/Rtb⌋``
* ``t``    — sharing threshold, ``0 < t ≤ 1``; a shared *pair* of blocks
  is allocated ``(1+t)·Rtb`` units (``t·Rtb`` private each, ``(1−t)·Rtb``
  shared), so the *percentage of resource shared* is ``(1−t)·100``.
* ``S``    — number of shared pairs, ``U`` — unshared blocks.

Constraints: ``S + U = D`` (Eq. 1, effective blocks never drop below the
baseline), ``U·Rtb + S·(1+t)·Rtb ≤ R`` (Eq. 2), ``M = U + 2S`` (Eq. 3),
giving the paper's Eq. 4 closed form ``M = D + (R/Rtb − D)/t``.  The
actual launch count is additionally capped by the thread and block limits
of the SM and by the *other* resource.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum

from repro.config import GPUConfig, WARP_SIZE
from repro.core.occupancy import Occupancy, occupancy
from repro.isa.kernel import Kernel

__all__ = ["SharedResource", "SharingSpec", "SharingPlan", "plan_sharing",
           "eq4_max_blocks"]


class SharedResource(Enum):
    """Which SM resource is shared between paired thread blocks."""

    REGISTERS = "registers"
    SCRATCHPAD = "scratchpad"


@dataclass(frozen=True)
class SharingSpec:
    """User-facing sharing configuration.

    ``t`` is the paper's threshold: ``t = 0.1`` means 90 % of a block's
    resource allocation is shared with its partner (the paper's default).
    ``t = 1`` degenerates to no sharing.
    """

    resource: SharedResource
    t: float = 0.1

    def __post_init__(self) -> None:
        if not 0.0 < self.t <= 1.0:
            raise ValueError("threshold t must satisfy 0 < t <= 1")

    @property
    def sharing_pct(self) -> float:
        """Percentage of the resource that is shared, ``(1−t)·100``."""
        return (1.0 - self.t) * 100.0


@dataclass(frozen=True)
class SharingPlan:
    """Constructive launch plan for one SM.

    The dispatcher launches ``unshared`` independent blocks plus
    ``pairs`` two-block sharing groups, ``total = unshared + 2*pairs``
    blocks in all.  ``baseline`` is the non-sharing block count ``D``;
    the plan guarantees ``unshared + pairs == baseline`` so at least
    ``baseline`` blocks always make forward progress (paper Eq. 1).
    """

    spec: SharingSpec
    baseline: int            # D
    unshared: int            # U
    pairs: int               # S
    #: Private units per *sharing participant*: registers per warp for
    #: register sharing (``⌊Rw·t⌋`` rounded to whole per-thread registers),
    #: bytes per block for scratchpad sharing (``⌊Rtb·t⌋``).
    private_units: int
    #: For register sharing: per-thread register index below which a
    #: register is private (``⌊K·t⌋`` with K = regs/thread). 0 for
    #: scratchpad plans.
    private_regs_per_thread: int

    @property
    def total(self) -> int:
        """Total blocks launched per SM (paper Eq. 3)."""
        return self.unshared + 2 * self.pairs

    @property
    def extra(self) -> int:
        """Blocks gained over the baseline."""
        return self.total - self.baseline

    @property
    def enabled(self) -> bool:
        """True when the plan actually launches shared pairs.

        The paper's run-time rule: if sharing would not add blocks, all
        blocks launch in unsharing mode (observed at 0 %/10 % sharing in
        Tables V-VIII).
        """
        return self.pairs > 0


def eq4_max_blocks(R: int, Rtb: int, t: float) -> int:
    """Paper Eq. 4, floored to a realisable block count.

    ``M = ⌊R/Rtb⌋ + ⌊(R/Rtb − ⌊R/Rtb⌋) / t⌋`` with the extra-pair count
    additionally capped at ``D`` (a pair consumes one baseline slot, so at
    most ``D`` pairs exist: ``U = D − S ≥ 0``).
    """
    if Rtb <= 0:
        raise ValueError("Rtb must be positive")
    D = R // Rtb
    leftover = R - D * Rtb
    # Number of extra pairs the leftover can fund: each pair re-uses one
    # baseline allocation and needs t*Rtb extra units on top.
    S = int(math.floor(leftover / (t * Rtb) + 1e-9))
    S = min(S, D)
    return D + S


def plan_sharing(kernel: Kernel, config: GPUConfig,
                 spec: SharingSpec) -> SharingPlan:
    """Build the launch plan for ``kernel`` under ``spec``.

    The shared-resource block count from Eq. 4 is capped by every *other*
    occupancy constraint (max threads, max blocks, and the non-shared
    resource), mirroring the paper's Sec. III-C closing remark.
    """
    occ: Occupancy = occupancy(kernel, config)
    D = occ.blocks

    if spec.resource is SharedResource.REGISTERS:
        R, Rtb = config.registers_per_sm, kernel.regs_per_block
        other_caps = (occ.by_scratchpad, occ.by_threads, occ.by_blocks)
    else:
        R, Rtb = config.scratchpad_per_sm, kernel.smem_per_block
        other_caps = (occ.by_registers, occ.by_threads, occ.by_blocks)

    if Rtb <= 0:
        # Kernel does not use the shared resource at all: nothing to share.
        return _no_sharing_plan(spec, D, kernel)

    M = eq4_max_blocks(R, Rtb, spec.t)
    M = min(M, *other_caps)

    if M <= D:
        return _no_sharing_plan(spec, D, kernel)

    pairs = M - D
    unshared = D - pairs
    assert unshared >= 0, "Eq.4 cap violated"
    # Eq. 2 sanity: allocated units never exceed R.
    assert unshared * Rtb + pairs * math.floor((1 + spec.t) * Rtb) <= R + Rtb * 1e-9

    if spec.resource is SharedResource.REGISTERS:
        private_regs = int(kernel.regs_per_thread * spec.t)
        private_units = private_regs * WARP_SIZE
    else:
        private_regs = 0
        private_units = int(kernel.smem_per_block * spec.t)

    return SharingPlan(
        spec=spec,
        baseline=D,
        unshared=unshared,
        pairs=pairs,
        private_units=private_units,
        private_regs_per_thread=private_regs,
    )


def _no_sharing_plan(spec: SharingSpec, baseline: int,
                     kernel: Kernel) -> SharingPlan:
    """All blocks launch in unsharing mode."""
    return SharingPlan(
        spec=spec,
        baseline=baseline,
        unshared=baseline,
        pairs=0,
        private_units=0,
        private_regs_per_thread=0,
    )
