"""Shared fixtures for the benchmark harness.

Each ``bench_*`` module regenerates one paper table/figure.  The
simulations are deterministic, so every benchmark runs a single
measured round (``pedantic``) — pytest-benchmark is used for its
reporting/JSON machinery, not for statistical repetition.

Scale knobs (override via environment):

* ``REPRO_BENCH_CLUSTERS`` — SM clusters (default 4; paper used 14)
* ``REPRO_BENCH_SCALE``    — kernel loop-count scale (default 0.7)
* ``REPRO_BENCH_WAVES``    — grid waves per SM (default 6)
* ``REPRO_BENCH_JOBS``     — engine worker processes (default 1: the
  wall time *is* the measurement here, so keep runs in-process unless
  you only care about regenerating the tables)

All runs share one :class:`~repro.harness.engine.Engine` with the
on-disk result cache enabled, so repeat benchmark invocations (and
experiments that overlap, e.g. fig9a after fig8c) reuse finished
simulations.  Delete ``~/.cache/repro`` or set ``REPRO_NO_CACHE=1``
to force cold runs.
"""

import os

import pytest

from repro.config import GPUConfig
from repro.harness.engine import Engine

CLUSTERS = int(os.environ.get("REPRO_BENCH_CLUSTERS", "4"))
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.7"))
WAVES = float(os.environ.get("REPRO_BENCH_WAVES", "6"))
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))


@pytest.fixture(scope="session")
def bench_config():
    """Machine configuration for all benchmark runs."""
    return GPUConfig().scaled(num_clusters=CLUSTERS)


@pytest.fixture(scope="session")
def bench_engine():
    """One cached engine shared by every benchmark in the session."""
    return Engine(jobs=JOBS)


@pytest.fixture(scope="session")
def bench_params(bench_engine):
    """(scale, waves, engine) for all benchmark runs."""
    return {"scale": SCALE, "waves": WAVES, "engine": bench_engine}


def run_once(benchmark, fn, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark and return its
    result (simulations are deterministic; re-running only wastes time)."""
    return benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1)
