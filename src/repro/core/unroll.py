"""Unrolling & reordering of register declarations (paper Sec. IV-B).

A non-owner warp stalls the moment it touches a *shared* register —
a register with sequence number ``≥ ⌊K·t⌋`` (K = registers/thread).
If the compiler's declaration order puts hot early registers deep in the
sequence (the paper's sgemm example: the first instruction reads
``$p0``/``$r124`` declared 31st and 35th), the non-owner warp stalls on
its very first instruction.

The pass renumbers registers in *first-use order*: the register used
first gets sequence number 0, and so on.  After the pass, a non-owner
warp executes the longest possible prefix of the program using only
private registers before its first shared access.
"""

from __future__ import annotations

from repro.isa.kernel import Kernel

__all__ = ["reorder_registers", "first_use_mapping",
           "first_shared_use_distance"]


def first_use_mapping(kernel: Kernel) -> dict[int, int]:
    """Mapping old→new register number, new numbers in first-use order.

    The mapping is a bijection on ``range(kernel.regs_per_thread)``:
    registers that never appear in the instruction stream are packed, in
    ascending order, after the used ones (they still occupy allocation
    slots, exactly as dead declarations do in PTXPlus).
    """
    order = kernel.registers_used
    mapping = {old: new for new, old in enumerate(order)}
    unused = [r for r in range(kernel.regs_per_thread) if r not in mapping]
    base = len(order)
    for i, old in enumerate(unused):
        mapping[old] = base + i
    return mapping


def reorder_registers(kernel: Kernel) -> Kernel:
    """Apply the Sec. IV-B pass; returns a renumbered copy of ``kernel``."""
    return kernel.remap_registers(first_use_mapping(kernel))


def first_shared_use_distance(kernel: Kernel, private_regs: int) -> int:
    """Dynamic instructions a warp executes before touching a shared
    register, given ``private_regs`` private registers per thread.

    ``kernel.dynamic_count`` is returned when no instruction ever uses a
    shared register (the warp never waits at all).  This is the quantity
    the unroll pass maximises, and what the paper's LIB discussion hinges
    on ("the number of instructions that use unshared registers before
    the first shared use is exactly the same with and without the
    optimization").
    """
    n = 0
    for ins in kernel.iter_trace():
        if any(r >= private_regs for r in ins.regs):
            return n
        n += 1
    return n
