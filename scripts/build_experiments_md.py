#!/usr/bin/env python3
"""Assemble EXPERIMENTS.md from a ``python -m repro.harness all`` log.

Usage::

    python -m repro.harness all --clusters 6 --scale 0.7 --waves 6 \
        --jobs 8 > results.txt
    python scripts/build_experiments_md.py results.txt > EXPERIMENTS.md

Re-running ``all`` with the same settings is nearly free: the harness
serves previously simulated configurations from the on-disk result
cache (docs/engine.md), so iterating on the commentary in this script
does not redo the simulations.

The script pairs each captured experiment table with the paper's
reported values and a short interpretation, producing the
paper-vs-measured record the repository commits.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

HEADER = """# EXPERIMENTS — paper vs. this reproduction

Every table and figure of the paper's evaluation (Sec. VI) regenerated
with `python -m repro.harness <id>`.  Measured numbers below come from
**{settings}** — per-SM resources identical to the paper's Table I
machine, fewer SMs and shorter kernels for laptop-scale runtime (the
sharing/occupancy decisions are scale-invariant; IPC magnitudes are not
comparable to GPGPU-Sim's, relative effects are the target).  Sections
annotated *(regenerated in 0s ...)* were captured from the benchmark
harness run (`pytest benchmarks/ --benchmark-only`, 4 clusters,
scale 0.6, 6 waves) rather than the harness-CLI run.

Reproduction contract:

* **Exact** — occupancy, waste, Eq. 4 block counts (Tables VI/VIII,
  Figs. 1/8a/8b) and the Sec. V overhead bits match the paper entry for
  entry; these are pinned by golden-file tests.
* **Shape** — IPC deltas (who wins, sign, rough magnitude, which
  optimisation matters for which app class) are reproduced; absolute
  percentages differ because the substrate is a simplified simulator on
  synthetic kernels (see DESIGN.md §2 and docs/workloads.md).

"""

#: Per-experiment commentary: paper values + how to read our numbers.
NOTES: dict[str, str] = {
    "fig1": """**Paper:** hotspot wastes 5120/32768 registers (15.6 %),
lavaMD leaves 1984 B of scratchpad idle (12.1 %); Set-1 apps are
register-limited, Set-2 scratchpad-limited.
**Match:** exact — all block counts and waste percentages equal the
paper's worked examples (golden-pinned).""",
    "fig8a": """**Paper:** register sharing lifts residency to 6 blocks for
backprop/hotspot/MUM/mri-q (thread cap), 8 for LIB/sgemm (block cap), 3
for b+tree/stencil.
**Match:** exact for every app (Eq. 4).""",
    "fig8b": """**Paper:** CONV1/NW1/NW2 reach the 8-block cap; lavaMD
doubles 2→4.
**Match:** exact for every app.""",
    "fig8c": """**Paper:** +5.82 backprop, +11.98 b+tree, +21.76 hotspot,
+0.84 LIB, +24.14 MUM, −0.72 mri-q, +4.06 sgemm, +23.45 stencil
(avg ≈ 11 %).
**Ours:** same ranking structure — hotspot/stencil lead, LIB ≈ 0,
mri-q ≈ 0, backprop small.  MUM's Dyn-driven recovery is weaker here
because Dyn's SM0 sacrifice costs proportionally more on a small machine
(1/6 of SMs vs 1/14 in the paper).""",
    "fig8d": """**Paper (Fig. 8d):** +4.33 CONV1, +15.85 CONV2, +29.96
lavaMD, +5.62 NW1, +9.03 NW2, ~+11 SRAD1, +25.73 SRAD2 (avg 12.5 %).
Note the paper's own Table VII implies smaller numbers for CONV1 (+4.2 %)
and SRAD2 (+7.6 %) — the prose and figures disagree; we track the table.
**Ours:** lavaMD is the clear winner (all its scratchpad accesses stay in
the private partition — `lock_acquires == 0`), everything else positive.""",
    "fig9a": """**Paper (hotspot):** +13.65 NoOpt → +15.18 Unroll → +14.58
Unroll-Dyn → +21.76 OWF-Unroll-Dyn; MUM: −0.15 → +0.08 → +6.45 → +24.14.
**Ours:** hotspot reproduces the staircase including the small Dyn dip
(+11→+24→+19→+22 at 4 clusters).  Dyn helps less / hurts more than the
paper at few SMs — disabling all non-owner memory on SM0 throttles a
large machine fraction (documented scale effect).""",
    "fig9b": """**Paper:** lavaMD +28 % without any optimisation (its
extra blocks never wait) rising to +30 with OWF; CONV1/SRAD2 slightly
prefer NoOpt.
**Ours:** same structure — lavaMD's gain is nearly all from sharing
itself; OWF adds little for it and more for CONV/SRAD.""",
    "fig9c": """**Paper:** idle cycles drop for every app (up to 99 %);
stalls drop for most, rise for b+tree/stencil/mri-q.
**Ours:** terminology mapping (see the experiment note): the paper's
*idle* = warps waiting on in-flight latencies = our stall bucket, which
drops for 7–8 of 8 apps (up to ~66 %); the paper's *stall* = structural
pipeline stalls = our MSHR rejections, which move app-dependently, same
signs for the flagships.""",
    "fig9d": """**Paper:** stall+idle reductions for Set-2; lavaMD is
excluded from the stall plot (zero baseline stalls).
**Ours:** same direction under the fig9c column mapping; latency-wait
reductions dominate.""",
    "fig10a": """**Paper:** scratchpad sharing beats GTO by up to 30 %
(lavaMD).
**Ours:** lavaMD ≈ +34 %, others +1…6 % — matching the paper's 'big
winner plus modest rest' shape.""",
    "fig10b": """**Paper:** register sharing vs GTO improves up to 3.9 %.
**Ours:** small gains for most apps; LIB is distinctly negative (its L2
working set is thrashed by the extra blocks, and GTO is already strong) —
more negative than the paper shows.""",
    "fig10c": """**Paper:** up to +27.2 % over two-level.
**Ours:** hotspot ≈ +21 %, sgemm/MUM/stencil positive — same leaders.""",
    "fig10d": """**Paper:** up to +27.08 % over two-level.
**Ours:** lavaMD ≈ +39 %, CONV2 ≈ +19 % — same shape.""",
    "fig11a": """**Paper:** sharing at 32 K registers beats a 64 K-register
LRR baseline on 5 of 8 apps (sgemm/b+tree/LIB favour the baseline).
**Ours:** mixed verdict as in the paper (sharing wins on LIB/mri-q/sgemm,
loses where doubling registers unlocks more blocks without lock
overhead); the exact winner set differs.""",
    "fig11b": """**Paper:** CONV1/NW1/NW2 comparable to the 32 K baseline,
lavaMD better, CONV2/SRAD1/SRAD2 worse.
**Ours:** same split — lavaMD/CONV1/NW1/SRAD1 at-or-above the doubled
baseline, CONV2/NW2/SRAD2 slightly below.""",
    "fig12a": """**Paper:** Set-3 apps launch no extra blocks:
Shared-LRR == Unshared-LRR, Shared-GTO == Unshared-GTO, Shared-OWF ≈
Unshared-GTO.
**Ours:** the equalities hold *exactly* (identical simulations, asserted
by tests); Shared-OWF equals Unshared-GTO.""",
    "fig12b": """Same identities for the scratchpad variants — exact.""",
    "table5": """**Paper:** IPC flat from 0–30 % sharing for most apps
(no extra blocks yet), rising by 70–90 %; hotspot 489.5→503.6, LIB
218.0→223.3.
**Ours:** 0 % == 10 % for every app (no extra blocks → all unshared,
asserted), gains appear exactly where Table VI adds blocks.""",
    "table6": """**Match:** exact, all 48 entries (golden-pinned).""",
    "table7": """**Paper:** lavaMD flat until 90 % then 452→579 (+28 %);
SRAD1 peaks at 50 % (229.4); NW1/NW2 drift slightly down with sharing.
**Ours:** lavaMD's 90 %-only jump reproduces; SRAD-family also prefers
mid thresholds (longer private prefix vs fewer blocks trade-off).""",
    "table8": """**Match:** exact, all 42 entries (golden-pinned).""",
    "hw_overhead": """**Paper formulas evaluated on Table I (T=8, W=48,
N=14):** 273 bits/SM for register sharing, 93 bits/SM for scratchpad
sharing — negligible vs a 128 KB register file.  Exact.""",
    "ext_early_release": """**Extension (paper Sec. VIII future work):**
live-range analysis hands the shared pool to the partner warp as soon as
the holder provably stops using shared registers.  Neutral on
loop-dominated kernels (pool live until the last iteration), a further
gain on kernels with register-light tails.""",
    "ext_threshold_frontier": """**Ablation:** the full t-frontier behind
Tables V–VIII; IPC follows the Eq. 4 block-count staircase, not t
itself.""",
    "ext_cache_sensitivity": """**Ablation:** the cache-contention
explanation for mri-q/LIB.  mri-q: at 8 KB both configurations thrash
and sharing gains little; at ≥16 KB the baseline fits and the shared
run's extra misses cap the gain.  LIB: larger L1s help the 4-block
baseline far more than the 8-block shared run (whose aggregate working
set still overflows), so the sharing penalty *deepens* with L1 size —
extra blocks trade cache locality for TLP exactly as the paper argues.""",
    "ext_variance_sensitivity": """**Ablation:** gains grow with per-warp
work imbalance — the drain-phase waste that block-granularity allocation
creates and warp-level handoff reclaims (the work_variance modelling
decision of DESIGN.md §4).""",
}

#: Footer line: ``[fig8c: 1.2s]`` or the engine-era form with a stats
#: suffix, ``[fig8c: 1.2s | 16 sims, 0 cache hits, jobs 4]``.
SECTION_RE = re.compile(
    r"== (?P<title>.*?) ==\n(?P<body>.*?)\n\[(?P<id>[a-z0-9_]+): "
    r"(?P<secs>[0-9.]+)s(?P<stats>[^\]]*)\]", re.S)


def build(log_text: str, settings: str) -> str:
    out = [HEADER.format(settings=settings)]
    sections = {m.group("id"): m for m in SECTION_RE.finditer(log_text)}
    order = [k for k in NOTES if k in sections] + \
        [k for k in sections if k not in NOTES]
    for exp_id in order:
        m = sections[exp_id]
        out.append(f"## {exp_id} — {m.group('title')}\n")
        note = NOTES.get(exp_id)
        if note:
            out.append(note + "\n")
        out.append("```")
        out.append(m.group("body").strip())
        out.append("```")
        out.append(f"*(regenerated in {float(m.group('secs')):.0f}s by "
                   f"`python -m repro.harness {exp_id}`)*\n")
    missing = [k for k in NOTES if k not in sections]
    if missing:
        out.append(f"\n<!-- not present in this log: {missing} -->\n")
    return "\n".join(out)


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    log = Path(sys.argv[1]).read_text()
    settings = sys.argv[2] if len(sys.argv) > 2 else \
        "6 SM clusters, scale 0.7, 6 grid waves"
    sys.stdout.write(build(log, settings))
    return 0


if __name__ == "__main__":
    sys.exit(main())
