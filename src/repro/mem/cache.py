"""Set-associative LRU cache with MSHRs (used for both L1 and L2)."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CacheStats", "Cache"]


@dataclass
class CacheStats:
    """Access counters for one cache instance."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    mshr_merges: int = 0
    mshr_rejects: int = 0
    evictions: int = 0

    @property
    def miss_rate(self) -> float:
        """Misses / accesses (0.0 when the cache was never touched)."""
        return self.misses / self.accesses if self.accesses else 0.0


class Cache:
    """Tag-only set-associative LRU cache with miss-status registers.

    ``lookup`` classifies an access as ``"hit"``, ``"miss"`` (MSHR
    allocated — caller must later call :meth:`fill`), ``"merge"`` (an
    MSHR for the line already exists — caller registers a waiter) or
    ``"reject"`` (all MSHRs busy — structural hazard, retry later).
    """

    def __init__(self, *, size: int, assoc: int, line_size: int,
                 mshrs: int, name: str = "cache") -> None:
        if size % (assoc * line_size):
            raise ValueError("size must be divisible by assoc*line_size")
        self.name = name
        self.assoc = assoc
        self.line_size = line_size
        self.n_sets = size // (assoc * line_size)
        self.n_mshrs = mshrs
        # Each set is an LRU-ordered list of line addresses, MRU last.
        self._sets: list[list[int]] = [[] for _ in range(self.n_sets)]
        # Flat mirror of every cached line for O(1) presence checks
        # (``probe`` and the MSHR admission scan); the per-set lists
        # remain the source of truth for LRU order and eviction.
        self._present: set[int] = set()
        # Outstanding misses: line addr -> list of opaque waiter tokens.
        self.mshr: dict[int, list[object]] = {}
        self.stats = CacheStats()
        #: Mutation generation: bumped whenever line *presence* or MSHR
        #: *occupancy* changes (MSHR allocation, fill/eviction, flush).
        #: LRU reordering and waiter merges do not bump it.  While ``gen``
        #: is unchanged, any admission decision derived from ``probe``,
        #: MSHR membership and ``mshr_free`` is guaranteed to repeat —
        #: the SM uses this to replay MSHR rejections in O(1).
        self.gen = 0

    # ------------------------------------------------------------------
    def _set_index(self, line_addr: int) -> int:
        return (line_addr // self.line_size) % self.n_sets

    def probe(self, line_addr: int) -> bool:
        """Non-destructive presence check (no stats, no LRU update)."""
        return line_addr in self._present

    def lookup(self, line_addr: int, waiter: object,
               allocate: bool = True) -> str:
        """Access ``line_addr``; see class docstring for outcomes.

        With ``allocate=False`` (write-through stores) a miss does not
        take an MSHR and the result is ``"bypass"``.
        """
        self.stats.accesses += 1
        if line_addr in self._present:
            self.stats.hits += 1
            s = self._sets[self._set_index(line_addr)]
            s.remove(line_addr)
            s.append(line_addr)  # MRU
            return "hit"
        if not allocate:
            self.stats.misses += 1
            return "bypass"
        pending = self.mshr.get(line_addr)
        if pending is not None:
            self.stats.mshr_merges += 1
            self.stats.misses += 1
            pending.append(waiter)
            return "merge"
        if len(self.mshr) >= self.n_mshrs:
            self.stats.mshr_rejects += 1
            self.stats.accesses -= 1  # rejected access never happened
            return "reject"
        self.stats.misses += 1
        self.mshr[line_addr] = [waiter]
        self.gen += 1
        return "miss"

    def fill(self, line_addr: int) -> list[object]:
        """Install a returning line; returns and clears its waiters."""
        waiters = self.mshr.pop(line_addr, [])
        s = self._sets[self._set_index(line_addr)]
        if line_addr not in s:
            if len(s) >= self.assoc:
                self._present.discard(s.pop(0))  # evict LRU
                self.stats.evictions += 1
            s.append(line_addr)
            self._present.add(line_addr)
        self.gen += 1
        return waiters

    @property
    def mshr_free(self) -> int:
        """Number of free miss-status registers."""
        return self.n_mshrs - len(self.mshr)

    def flush(self) -> None:
        """Drop all cached lines (MSHRs must be drained first)."""
        if self.mshr:
            raise RuntimeError("cannot flush with outstanding misses")
        for s in self._sets:
            s.clear()
        self._present.clear()
        self.gen += 1
