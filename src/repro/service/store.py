"""Persistent job store for the simulation service (SQLite, WAL mode).

One row per submitted job.  The store is the service's source of
truth: the server process can die (crash, ``kill -TERM``, redeploy)
and a restart resumes exactly where the queue left off —
``recover()`` moves any job stranded in ``running`` back to
``queued``, finished jobs keep their persisted result payloads, and
ordering (priority, then FIFO within priority via the monotonic
``seq`` rowid) survives because it lives in the schema, not in
process memory.

States and transitions::

    queued ──claim──▶ running ──finish──▶ done
       ▲                 │──fail────────▶ failed
       │──requeue────────┘  (drain / crash recovery)
    queued ──cancel──▶ cancelled         (queued jobs only)

Thread safety: the server touches the store from the asyncio event
loop *and* from the batch-runner thread, so every operation takes a
process-local lock around a single shared connection
(``check_same_thread=False``).  SQLite's WAL journal makes concurrent
readers from other processes (introspection tooling) safe too.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
import uuid
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Iterable

__all__ = ["Job", "JobStore", "JOB_STATES"]

#: Every state a job can be in.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    seq          INTEGER PRIMARY KEY AUTOINCREMENT,
    id           TEXT UNIQUE NOT NULL,
    digest       TEXT NOT NULL,
    spec         TEXT NOT NULL,
    spec_bytes   INTEGER NOT NULL,
    sanitize     INTEGER NOT NULL DEFAULT 0,
    state        TEXT NOT NULL DEFAULT 'queued',
    priority     INTEGER NOT NULL DEFAULT 0,
    client       TEXT NOT NULL DEFAULT '',
    submitted_at REAL NOT NULL,
    started_at   REAL,
    finished_at  REAL,
    result       TEXT,
    failure      TEXT
);
CREATE INDEX IF NOT EXISTS ix_jobs_sched
    ON jobs(state, priority DESC, seq);
CREATE INDEX IF NOT EXISTS ix_jobs_digest ON jobs(digest);
"""


@dataclass(frozen=True)
class Job:
    """One row of the store (payloads already JSON-decoded)."""

    seq: int
    id: str
    digest: str
    spec: dict
    sanitize: bool
    state: str
    priority: int
    client: str
    submitted_at: float
    started_at: float | None
    finished_at: float | None
    result: dict | None
    failure: dict | None

    @classmethod
    def _from_row(cls, row: sqlite3.Row) -> "Job":
        return cls(
            seq=row["seq"], id=row["id"], digest=row["digest"],
            spec=json.loads(row["spec"]), sanitize=bool(row["sanitize"]),
            state=row["state"], priority=row["priority"],
            client=row["client"], submitted_at=row["submitted_at"],
            started_at=row["started_at"], finished_at=row["finished_at"],
            result=json.loads(row["result"]) if row["result"] else None,
            failure=json.loads(row["failure"]) if row["failure"] else None)

    def to_dict(self, *, with_payloads: bool = False) -> dict:
        """Wire form for ``/jobs`` listings and job-status responses."""
        mode = self.spec.get("mode") or {}
        d = {
            "id": self.id,
            "digest": self.digest,
            "app": self.spec.get("app"),
            "mode": mode.get("label"),
            "state": self.state,
            "priority": self.priority,
            "client": self.client,
            "sanitize": self.sanitize,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }
        if with_payloads:
            d["spec"] = self.spec
            d["result"] = self.result
            d["failure"] = self.failure
        return d

    @property
    def terminal(self) -> bool:
        """True once the job can never change state again."""
        return self.state in ("done", "failed", "cancelled")


class JobStore:
    """SQLite-backed job queue + archive (see module docstring)."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._db = sqlite3.connect(self.path, check_same_thread=False)
        self._db.row_factory = sqlite3.Row
        # WAL survives process death with a consistent view; NORMAL
        # sync is the standard WAL pairing (durable at checkpoint,
        # never corrupt).
        self._db.execute("PRAGMA journal_mode=WAL")
        self._db.execute("PRAGMA synchronous=NORMAL")
        with self._lock, self._db:
            self._db.executescript(_SCHEMA)

    def close(self) -> None:
        with self._lock:
            self._db.close()

    # -- submission ----------------------------------------------------
    def submit(self, spec: dict, digest: str, *, priority: int = 0,
               client: str = "", sanitize: bool = False,
               job_id: str | None = None) -> Job:
        """Insert a new ``queued`` job and return it."""
        job_id = job_id or uuid.uuid4().hex[:16]
        text = json.dumps(spec, sort_keys=True, separators=(",", ":"))
        with self._lock, self._db:
            self._db.execute(
                "INSERT INTO jobs (id, digest, spec, spec_bytes, sanitize,"
                " state, priority, client, submitted_at)"
                " VALUES (?, ?, ?, ?, ?, 'queued', ?, ?, ?)",
                (job_id, digest, text, len(text), int(sanitize),
                 priority, client, time.time()))
        job = self.get(job_id)
        assert job is not None
        return job

    # -- lookup --------------------------------------------------------
    def get(self, job_id: str) -> Job | None:
        """The job with ``job_id``, or None."""
        with self._lock:
            row = self._db.execute(
                "SELECT * FROM jobs WHERE id = ?", (job_id,)).fetchone()
        return Job._from_row(row) if row is not None else None

    def list_jobs(self, *, state: str | None = None,
                  client: str | None = None, limit: int = 200) -> list[Job]:
        """Jobs filtered by state/client, newest first."""
        q = "SELECT * FROM jobs"
        conds, params = [], []
        if state is not None:
            conds.append("state = ?")
            params.append(state)
        if client is not None:
            conds.append("client = ?")
            params.append(client)
        if conds:
            q += " WHERE " + " AND ".join(conds)
        q += " ORDER BY seq DESC LIMIT ?"
        params.append(max(1, limit))
        with self._lock:
            rows = self._db.execute(q, params).fetchall()
        return [Job._from_row(r) for r in rows]

    def counts(self) -> dict[str, int]:
        """Job count per state (every state present, zeros included)."""
        with self._lock:
            rows = self._db.execute(
                "SELECT state, COUNT(*) AS n FROM jobs"
                " GROUP BY state").fetchall()
        out = {s: 0 for s in JOB_STATES}
        out.update({r["state"]: r["n"] for r in rows})
        return out

    def queue_depth(self) -> int:
        """Number of ``queued`` jobs (the admission-control signal)."""
        with self._lock:
            row = self._db.execute(
                "SELECT COUNT(*) AS n FROM jobs"
                " WHERE state = 'queued'").fetchone()
        return row["n"]

    def queued_bytes(self) -> int:
        """Summed spec payload bytes over ``queued`` jobs."""
        with self._lock:
            row = self._db.execute(
                "SELECT COALESCE(SUM(spec_bytes), 0) AS n FROM jobs"
                " WHERE state = 'queued'").fetchone()
        return row["n"]

    # -- scheduling ----------------------------------------------------
    def claim(self, limit: int) -> list[Job]:
        """Atomically move the next batch of *compatible* queued jobs to
        ``running`` and return them.

        Order is priority (higher first), then FIFO within a priority
        (``seq``).  Compatibility: every job in a batch shares the
        head-of-queue job's ``sanitize`` flag, because the engine
        applies sanitize per batch, not per spec — an incompatible job
        simply waits for the next batch rather than changing the
        semantics of this one.
        """
        with self._lock, self._db:
            head = self._db.execute(
                "SELECT sanitize FROM jobs WHERE state = 'queued'"
                " ORDER BY priority DESC, seq LIMIT 1").fetchone()
            if head is None:
                return []
            rows = self._db.execute(
                "SELECT * FROM jobs WHERE state = 'queued'"
                " AND sanitize = ?"
                " ORDER BY priority DESC, seq LIMIT ?",
                (head["sanitize"], max(1, limit))).fetchall()
            now = time.time()
            self._db.executemany(
                "UPDATE jobs SET state = 'running', started_at = ?"
                " WHERE id = ?", [(now, r["id"]) for r in rows])
        return [replace(Job._from_row(r), state="running",
                        started_at=now) for r in rows]

    # -- completion ----------------------------------------------------
    def finish(self, job_id: str, result: dict) -> None:
        """running → done, with the result payload persisted."""
        with self._lock, self._db:
            self._db.execute(
                "UPDATE jobs SET state = 'done', finished_at = ?,"
                " result = ? WHERE id = ? AND state = 'running'",
                (time.time(), json.dumps(result), job_id))

    def fail(self, job_id: str, failure: dict) -> None:
        """running → failed, with the failure record persisted."""
        with self._lock, self._db:
            self._db.execute(
                "UPDATE jobs SET state = 'failed', finished_at = ?,"
                " failure = ? WHERE id = ? AND state = 'running'",
                (time.time(), json.dumps(failure), job_id))

    def cancel(self, job_id: str) -> bool:
        """queued → cancelled; False if the job already left the queue
        (running jobs finish — mid-simulation abort would waste the
        nearly-done work and complicate digest equality for nothing)."""
        with self._lock, self._db:
            cur = self._db.execute(
                "UPDATE jobs SET state = 'cancelled', finished_at = ?"
                " WHERE id = ? AND state = 'queued'",
                (time.time(), job_id))
            return cur.rowcount > 0

    # -- recovery ------------------------------------------------------
    def requeue(self, job_ids: Iterable[str]) -> int:
        """running → queued (graceful-drain path for unstarted jobs)."""
        ids = list(job_ids)
        with self._lock, self._db:
            cur = self._db.executemany(
                "UPDATE jobs SET state = 'queued', started_at = NULL"
                " WHERE id = ? AND state = 'running'",
                [(i,) for i in ids])
            return cur.rowcount

    def recover(self) -> int:
        """Startup recovery: requeue every job stranded in ``running``
        by a previous process death.  Returns the number requeued."""
        with self._lock, self._db:
            cur = self._db.execute(
                "UPDATE jobs SET state = 'queued', started_at = NULL"
                " WHERE state = 'running'")
            return cur.rowcount
