"""Early release of shared registers via live-range analysis.

This implements the paper's Sec. VIII future work:

    "live range analysis along with instruction reordering can be used
    to detect and release registers that are not used beyond a point.
    Such registers, if shared, can be used by the warp in the other
    thread block waiting for shared registers."

The analysis is conservative and trace-exact: for every trace position
(segment, repetition, pc) it answers *"what is the highest register
sequence number any future instruction of this warp touches?"*.  Once
that maximum falls below the private-register threshold, the warp will
never touch its shared pool again, so the pool can be handed to the
partner warp immediately instead of at warp exit.

Positions inside a loop that still has repetitions left see the whole
loop body as live (any register the body uses will be used again);
during the final repetition only the remaining tail of the body counts.
The tables are computed once per kernel (O(static instructions)) and
each query is O(1).
"""

from __future__ import annotations

from repro.isa.kernel import Kernel

__all__ = ["SharedLiveness"]


class SharedLiveness:
    """Per-position maximum future register index for one kernel."""

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel
        n = len(kernel.segments)
        # Highest register used anywhere in segment s's body.
        self._body_max: list[int] = []
        # Highest register used from instruction p to the end of the
        # body of segment s (inclusive).
        self._tail_max: list[list[int]] = []
        for seg in kernel.segments:
            tails: list[int] = []
            m = -1
            for ins in reversed(seg.instrs):
                for r in ins.regs:
                    if r > m:
                        m = r
                tails.append(m)
            tails.reverse()
            self._tail_max.append(tails)
            self._body_max.append(m)
        # Highest register used in segments s..end.
        self._suffix_max = [-1] * (n + 1)
        for s in range(n - 1, -1, -1):
            self._suffix_max[s] = max(self._body_max[s],
                                      self._suffix_max[s + 1])

    # ------------------------------------------------------------------
    def future_max_reg(self, seg: int, rep: int, pc: int,
                       repeats: tuple[int, ...]) -> int:
        """Highest register touched at or after position (seg, rep, pc).

        ``repeats`` is the warp's per-segment trip-count vector (work
        variance makes it warp-specific).  Returns -1 when the warp will
        touch no register at all (only BAR/EXIT remain).
        """
        if seg >= len(self.kernel.segments):
            return -1
        if rep < repeats[seg] - 1:
            cur = self._body_max[seg]  # body executes again in full
        else:
            cur = self._tail_max[seg][pc]
        later = self._suffix_max[seg + 1]
        return cur if cur >= later else later

    def done_with_shared(self, seg: int, rep: int, pc: int,
                         repeats: tuple[int, ...],
                         private_regs: int) -> bool:
        """True when no future instruction touches a shared register."""
        return self.future_max_reg(seg, rep, pc, repeats) < private_regs
