"""Command-line interfaces (``python -m repro`` and ``-m repro.harness``)."""

import pytest

from repro.__main__ import main as repro_main
from repro.harness.__main__ import main as harness_main


class TestReproCli:
    def test_list(self, capsys):
        assert repro_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "hotspot" in out and "shared-reg" in out

    def test_analyze_app(self, capsys):
        assert repro_main(["analyze", "hotspot"]) == 0
        out = capsys.readouterr().out
        assert "3 blocks/SM" in out

    def test_analyze_threshold(self, capsys):
        assert repro_main(["analyze", "hotspot", "-t", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "private regs/thread 18" in out

    def test_disasm(self, capsys):
        assert repro_main(["disasm", "lavaMD"]) == 0
        out = capsys.readouterr().out
        assert ".kernel lavaMD" in out and ".loop" in out

    def test_disasm_file_round_trip(self, tmp_path, capsys):
        repro_main(["disasm", "NW1"])
        text = capsys.readouterr().out
        f = tmp_path / "nw1.kasm"
        f.write_text(text)
        assert repro_main(["analyze", str(f)]) == 0
        assert "NW1" in capsys.readouterr().out

    def test_run_smoke(self, capsys):
        assert repro_main(["run", "gaussian", "--clusters", "1",
                           "--scale", "0.2", "--waves", "1"]) == 0
        out = capsys.readouterr().out
        assert "ipc" in out and "cycles" in out

    def test_run_warm_cache(self, tmp_path, capsys):
        argv = ["run", "gaussian", "--clusters", "1", "--scale", "0.2",
                "--waves", "1", "--cache-dir", str(tmp_path)]
        assert repro_main(argv) == 0
        assert "(cached)" not in capsys.readouterr().out
        assert repro_main(argv) == 0
        assert "(cached)" in capsys.readouterr().out

    def test_unknown_app_errors(self):
        with pytest.raises(SystemExit):
            repro_main(["analyze", "nosuchapp"])

    def test_run_trace_and_metrics(self, tmp_path, capsys):
        import json
        out_file = tmp_path / "mum.json"
        assert repro_main(["run", "MUM", "--mode", "shared-reg",
                           "--clusters", "1", "--scale", "0.2",
                           "--waves", "1", "--no-cache",
                           "--trace", str(out_file), "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "warp-state cycles" in out  # Fig. 10-style breakdown
        assert f"trace written to {out_file}" in out
        doc = json.loads(out_file.read_text())
        cats = {e.get("cat") for e in doc["traceEvents"]}
        assert {"warp_state", "lock", "mem"} <= cats


class TestHarnessCli:
    def test_single_experiment(self, capsys):
        assert harness_main(["hw_overhead"]) == 0
        out = capsys.readouterr().out
        assert "register_sharing_bits_per_sm" in out

    def test_fig1(self, capsys):
        assert harness_main(["fig1", "--clusters", "2"]) == 0
        out = capsys.readouterr().out
        assert "hotspot" in out

    def test_unknown_experiment(self):
        with pytest.raises(ValueError):
            harness_main(["fig99"])

    def test_stats_footer(self, capsys):
        assert harness_main(["fig8c", "--clusters", "1", "--scale", "0.15",
                             "--waves", "1", "--no-cache",
                             "--jobs", "1"]) == 0
        out = capsys.readouterr().out
        assert "| 16 sims, 0 cache hits, jobs 1]" in out

    def test_warm_cache_zero_sims(self, tmp_path, capsys):
        argv = ["fig8c", "--clusters", "1", "--scale", "0.15", "--waves",
                "1", "--jobs", "1", "--cache-dir", str(tmp_path)]
        assert harness_main(argv) == 0
        capsys.readouterr()
        assert harness_main(argv) == 0
        assert "| 0 sims, 16 cache hits," in capsys.readouterr().out

    def test_trace_dir_writes_per_run_traces(self, tmp_path, capsys):
        import json
        assert harness_main(["fig8c", "--clusters", "1", "--scale", "0.15",
                             "--waves", "1", "--jobs", "1", "--no-cache",
                             "--metrics", "--trace",
                             str(tmp_path / "traces")]) == 0
        traces = sorted((tmp_path / "traces").glob("*.json"))
        assert traces  # one Chrome trace per simulated configuration
        doc = json.loads(traces[0].read_text())
        assert any(e.get("cat") == "warp_state"
                   for e in doc["traceEvents"])
        capsys.readouterr()


class TestTraceCli:
    def test_trace_timeline(self, capsys):
        assert repro_main(["trace", "gaussian", "--first", "8"]) == 0
        out = capsys.readouterr().out
        assert "cycle" in out and "IPC" in out

    def test_trace_sharing_mode(self, capsys):
        assert repro_main(["trace", "hotspot", "--mode",
                           "shared-reg-noopt", "--first", "5"]) == 0
        out = capsys.readouterr().out
        assert "OWN" in out or "NON" in out

    def test_trace_early_release_mode(self, capsys, monkeypatch):
        # regression: trace used to drop mode.early_release when building
        # the GPU, silently tracing plain sharing instead
        import repro.sim.gpu as gpu_mod
        seen = {}
        real_gpu = gpu_mod.GPU

        def spy(*args, **kwargs):
            seen.update(kwargs)
            return real_gpu(*args, **kwargs)

        monkeypatch.setattr(gpu_mod, "GPU", spy)
        assert repro_main(["trace", "hotspot", "--mode", "shared-reg-er",
                           "--first", "5"]) == 0
        assert seen.get("early_release") is True
        assert "IPC" in capsys.readouterr().out


class TestJsonOutput:
    ARGV = ["run", "gaussian", "--clusters", "1", "--scale", "0.2",
            "--waves", "1", "--json"]

    def test_run_json_round_trip(self, tmp_path, capsys):
        import json
        from repro.harness.engine import RunSpec
        from repro.service import parse_result
        from repro.sim.stats import RunResult
        argv = self.ARGV + ["--cache-dir", str(tmp_path)]
        assert repro_main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True and payload["cached"] is False
        result = parse_result(payload)
        assert isinstance(result, RunResult)
        assert result.cycles == payload["summary"]["cycles"]
        # The embedded spec reproduces the digest: the payload is a
        # self-contained, re-runnable artifact.
        assert RunSpec.from_dict(payload["spec"]).digest() \
            == payload["digest"]

    def test_run_json_cached_flag(self, tmp_path, capsys):
        import json
        from repro.service import parse_result
        argv = self.ARGV + ["--cache-dir", str(tmp_path)]
        repro_main(argv)
        first = json.loads(capsys.readouterr().out)
        repro_main(argv)
        second = json.loads(capsys.readouterr().out)
        assert second["cached"] is True
        assert parse_result(second) == parse_result(first)


class TestServiceCli:
    @pytest.fixture()
    def server(self, tmp_path):
        from repro.service import ServiceConfig, ServiceServer
        srv = ServiceServer(
            ServiceConfig(port=0, db_path=tmp_path / "jobs.sqlite",
                          batch_wait=0.01, poll_interval=0.02),
            engine_opts={"jobs": 1, "cache": False})
        srv.start_in_thread()
        yield srv
        srv.stop()

    def _submit_argv(self, server, *extra):
        return ["submit", "gaussian", "--clusters", "1", "--scale",
                "0.2", "--waves", "1", "--port", str(server.port),
                *extra]

    def test_submit_wait_json(self, server, capsys):
        import json
        from repro.service import parse_result
        argv = self._submit_argv(server, "--wait", "--json")
        assert repro_main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        parse_result(payload)

    def test_submit_then_jobs_listing(self, server, capsys):
        import json
        assert repro_main(self._submit_argv(server, "--json")) == 0
        job_id = json.loads(capsys.readouterr().out)["job"]["id"]
        assert repro_main(["jobs", job_id, "--port", str(server.port),
                           "--wait", "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["ok"] is True
        assert repro_main(["jobs", "--port", str(server.port)]) == 0
        out = capsys.readouterr().out
        assert job_id in out and "done" in out

    def test_jobs_cancel(self, server, capsys):
        import json
        server.paused = True
        assert repro_main(self._submit_argv(server, "--json")) == 0
        job_id = json.loads(capsys.readouterr().out)["job"]["id"]
        assert repro_main(["jobs", job_id, "--port", str(server.port),
                           "--cancel"]) == 0
        assert "cancelled" in capsys.readouterr().out
        assert repro_main(["jobs", job_id, "--port", str(server.port),
                           "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["job"]["state"] \
            == "cancelled"
