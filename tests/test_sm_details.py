"""Focused SM behaviours: bank conflicts, Dyn paths, classification."""

import pytest

from repro.config import GPUConfig
from repro.core.sharing import SharedResource, SharingSpec, plan_sharing
from repro.isa.builder import KernelBuilder
from repro.sim.gpu import GPU
from repro.sim.warp import WarpState

CFG1 = GPUConfig().scaled(num_clusters=1)


class TestBankConflicts:
    def _cycles(self, conflicts):
        b = KernelBuilder("bc", block_size=32, regs=8, smem=1024)
        with b.loop(10):
            b.lds(offset=0, conflicts=conflicts)
            b.alu_chain(1)  # depend on the load
        k = b.build().with_grid(1)
        return GPU(k, CFG1).run().cycles

    def test_conflicts_serialize(self):
        c1 = self._cycles(1)
        c4 = self._cycles(4)
        c16 = self._cycles(16)
        assert c1 < c4 < c16

    def test_conflict_magnitude(self):
        # each extra way adds a fixed bank re-access cost per load
        c1 = self._cycles(1)
        c9 = self._cycles(9)
        assert c9 - c1 >= 10 * 8 * 4  # 10 loads x 8 ways x >=4 cycles... scaled

    def test_builder_validation(self):
        b = KernelBuilder("bc", block_size=32, regs=8, smem=256)
        with pytest.raises(ValueError):
            b.lds(offset=0, conflicts=0)
        with pytest.raises(ValueError):
            b.lds(offset=0, conflicts=33)


class TestMemPort:
    def test_one_memory_issue_per_cycle(self):
        # Two schedulers, all-memory kernel: IPC can exceed 1 only via
        # the non-memory EXIT; the LD/ST port caps memory issue at 1.
        b = KernelBuilder("mp", block_size=256, regs=8, smem=1024)
        with b.loop(20):
            b.lds(offset=0)
        k = b.build().with_grid(1)
        r = GPU(k, CFG1).run()
        mem_instrs = r.sm_stats[0].mem_instructions
        assert mem_instrs / r.cycles <= 1.0 + 1e-9


class TestDynPaths:
    def _gpu(self):
        b = KernelBuilder("dy", block_size=256, regs=36, alloc="low_first")
        with b.loop(8):
            b.ldg(footprint=64 * 1024, block_private=False)
            b.alu_chain(1)
            b.alu_indep(2)
        k = b.build().with_grid(10)
        plan = plan_sharing(k, CFG1, SharingSpec(SharedResource.REGISTERS,
                                                 0.1))
        return GPU(k, CFG1, scheduler="owf", plan=plan, dyn=True)

    def test_sm0_refuses_nonowner_memory(self):
        gpu = self._gpu()
        r = gpu.run()
        # single SM machine == SM0: non-owner loads always refused
        assert r.sm_stats[0].dyn_refusals > 0

    def test_dyn_refused_warps_eventually_run(self):
        gpu = self._gpu()
        assert gpu.dispatcher is not None
        gpu.run()
        assert gpu.dispatcher.completed == 10  # no livelock

    def test_controller_absent_without_flag(self):
        b = KernelBuilder("dy", block_size=256, regs=36)
        with b.loop(4):
            b.alu_indep(2)
        k = b.build().with_grid(2)
        plan = plan_sharing(k, CFG1, SharingSpec(SharedResource.REGISTERS,
                                                 0.1))
        gpu = GPU(k, CFG1, plan=plan, dyn=False)
        assert gpu.dyn is None

    def test_controller_absent_without_sharing(self):
        b = KernelBuilder("dy", block_size=256, regs=36)
        with b.loop(4):
            b.alu_indep(2)
        gpu = GPU(b.build().with_grid(2), CFG1, dyn=True)  # no plan
        assert gpu.dyn is None


class TestClassification:
    def test_stall_states(self):
        from repro.sim.sm import _STALL_STATES, _IDLE_STATES
        assert WarpState.BLOCK_MEM in _STALL_STATES
        assert WarpState.BLOCK_SB in _STALL_STATES
        assert WarpState.BLOCK_RETRY in _STALL_STATES
        assert WarpState.BLOCK_BAR in _IDLE_STATES
        assert WarpState.BLOCK_LOCK in _IDLE_STATES
        assert WarpState.BLOCK_DYN in _IDLE_STATES
        assert not _STALL_STATES & _IDLE_STATES

    def test_lock_wait_counts_as_idle(self):
        # All-shared pairs with immediate shared access: the waiting
        # block's warps are BLOCK_LOCK -> idle cycles, not stalls.
        b = KernelBuilder("cl", block_size=256, regs=36, alloc="low_first")
        with b.loop(30):
            b.alu(dst=35, src=(35,))  # shared register from the start
        k = b.build().with_grid(6)
        plan = plan_sharing(k, CFG1, SharingSpec(SharedResource.REGISTERS,
                                                 0.1))
        r = GPU(k, CFG1, plan=plan).run()
        assert r.sm_stats[0].lock_waits > 0

    def test_empty_cycles_at_tail(self):
        b = KernelBuilder("e", block_size=32, regs=8)
        b.ldg(footprint=1 << 20)
        b.alu_chain(1)
        k = b.build().with_grid(1)
        r = GPU(k, GPUConfig().scaled(num_clusters=2)).run()
        # the second SM never receives work: all empty
        empty_sm = r.sm_stats[1]
        assert empty_sm.empty_cycles == r.cycles
        assert empty_sm.instructions == 0
