"""GPUConfig / LatencyConfig / GDDRTimings validation and properties."""

import pytest

from repro.config import GDDRTimings, GPUConfig, LatencyConfig, WARP_SIZE


class TestDefaults:
    def test_table1_clusters(self):
        assert GPUConfig().num_clusters == 14

    def test_table1_cores_per_cluster(self):
        assert GPUConfig().cores_per_cluster == 1

    def test_table1_max_blocks(self):
        assert GPUConfig().max_blocks_per_sm == 8

    def test_table1_max_threads(self):
        assert GPUConfig().max_threads_per_sm == 1536

    def test_table1_registers(self):
        assert GPUConfig().registers_per_sm == 32768

    def test_table1_scratchpad(self):
        assert GPUConfig().scratchpad_per_sm == 16 * 1024

    def test_table1_schedulers(self):
        assert GPUConfig().num_schedulers == 2

    def test_table1_l1(self):
        assert GPUConfig().l1_size == 16 * 1024

    def test_table1_l2(self):
        assert GPUConfig().l2_size == 768 * 1024

    def test_table1_gddr_timings(self):
        t = GDDRTimings()
        assert (t.tRRD, t.tWR, t.tRCD, t.tRAS) == (6, 12, 12, 28)
        assert (t.tRP, t.tRC, t.tCL, t.tCDLR) == (12, 40, 12, 5)

    def test_num_sms(self):
        assert GPUConfig().num_sms == 14

    def test_max_warps_per_sm(self):
        assert GPUConfig().max_warps_per_sm == 1536 // WARP_SIZE == 48


class TestValidation:
    def test_zero_clusters_rejected(self):
        with pytest.raises(ValueError):
            GPUConfig(num_clusters=0)

    def test_nonwarp_threads_rejected(self):
        with pytest.raises(ValueError):
            GPUConfig(max_threads_per_sm=1000)

    def test_line_size_power_of_two(self):
        with pytest.raises(ValueError):
            GPUConfig(line_size=96)

    def test_l1_divisibility(self):
        with pytest.raises(ValueError):
            GPUConfig(l1_size=1000)

    def test_zero_partitions_rejected(self):
        with pytest.raises(ValueError):
            GPUConfig(num_mem_partitions=0)


class TestScaled:
    def test_scaled_clusters(self):
        cfg = GPUConfig().scaled(num_clusters=4)
        assert cfg.num_clusters == 4
        assert cfg.num_sms == 4

    def test_scaled_preserves_per_sm_resources(self):
        cfg = GPUConfig().scaled(num_clusters=2)
        ref = GPUConfig()
        assert cfg.registers_per_sm == ref.registers_per_sm
        assert cfg.scratchpad_per_sm == ref.scratchpad_per_sm
        assert cfg.max_threads_per_sm == ref.max_threads_per_sm

    def test_scaled_blocks(self):
        cfg = GPUConfig().scaled(max_blocks_per_sm=4)
        assert cfg.max_blocks_per_sm == 4

    def test_scaled_noop(self):
        assert GPUConfig().scaled() == GPUConfig()

    def test_frozen(self):
        with pytest.raises(Exception):
            GPUConfig().num_clusters = 3  # type: ignore[misc]


class TestLatencyConfig:
    def test_defaults_positive(self):
        lat = LatencyConfig()
        assert lat.alu > 0 and lat.sfu > lat.alu
        assert lat.l2_hit > 0 and lat.interconnect > 0

    def test_sfu_longer_than_alu(self):
        lat = LatencyConfig()
        assert lat.sfu > lat.alu
