"""L1 → L2 → DRAM plumbing."""


from repro.config import GPUConfig
from repro.events import EventQueue
from repro.mem.hierarchy import MemoryHierarchy


def setup(num_sms=2, **kw):
    cfg = GPUConfig(**kw)
    ev = EventQueue()
    return cfg, ev, MemoryHierarchy(cfg, ev, num_sms)


def drain(ev):
    while len(ev):
        ev.run_due(ev.next_cycle())


class TestLoadPath:
    def test_l1_hit_latency(self):
        cfg, ev, h = setup()
        done = []
        assert h.try_load(0, (0,), 0, done.append)
        drain(ev)
        t_miss = done[0]
        done.clear()
        assert h.try_load(0, (0,), 1000, done.append)
        drain(ev)
        assert done[0] == 1000 + cfg.latency.l1_hit
        assert t_miss > cfg.latency.l1_hit

    def test_miss_goes_through_l2(self):
        cfg, ev, h = setup()
        done = []
        h.try_load(0, (0,), 0, done.append)
        drain(ev)
        assert h.l2[0].stats.accesses == 1
        assert h.l2[0].stats.misses == 1
        # second SM hits in L2 (line now resident there)
        done2 = []
        h.try_load(1, (0,), 5000, done2.append)
        drain(ev)
        lat = done2[0] - 5000
        l2_round = (cfg.latency.interconnect * 2 + cfg.latency.l2_hit)
        assert lat == l2_round

    def test_multi_line_load_completes_once(self):
        cfg, ev, h = setup()
        done = []
        lines = (0, 128, 256, 384)
        assert h.try_load(0, lines, 0, done.append)
        drain(ev)
        assert len(done) == 1  # one callback when ALL lines arrive

    def test_duplicate_lines_deduped(self):
        cfg, ev, h = setup()
        done = []
        assert h.try_load(0, (0, 0, 0), 0, done.append)
        drain(ev)
        assert len(done) == 1
        assert h.l1[0].stats.accesses == 1

    def test_mshr_exhaustion_rejects_atomically(self):
        cfg, ev, h = setup(l1_mshrs=2)
        done = []
        assert h.try_load(0, (0, 128), 0, done.append)
        # a third distinct line cannot get an MSHR
        assert not h.try_load(0, (256,), 0, done.append)
        # no side effects: MSHRs still 2
        assert len(h.l1[0].mshr) == 2
        drain(ev)
        assert len(done) == 1

    def test_merge_into_pending_line(self):
        cfg, ev, h = setup()
        done = []
        h.try_load(0, (0,), 0, lambda c: done.append(("a", c)))
        h.try_load(0, (0,), 1, lambda c: done.append(("b", c)))
        assert h.l1[0].stats.mshr_merges == 1
        drain(ev)
        assert len(done) == 2
        assert done[0][1] == done[1][1]  # same fill completes both

    def test_per_sm_l1_isolation(self):
        cfg, ev, h = setup()
        done = []
        h.try_load(0, (0,), 0, done.append)
        drain(ev)
        assert h.l1[0].probe(0)
        assert not h.l1[1].probe(0)

    def test_partition_routing(self):
        cfg, ev, h = setup()
        done = []
        # line addresses hit different partitions round-robin
        h.try_load(0, (0, 128), 0, done.append)
        drain(ev)
        assert h.l2[0].stats.accesses == 1
        assert h.l2[1].stats.accesses == 1


class TestStorePath:
    def test_store_never_blocks(self):
        cfg, ev, h = setup()
        h.store(0, (0,), 0)
        drain(ev)
        assert h.l1[0].stats.misses == 1  # write-through, no allocate
        assert not h.l1[0].probe(0)

    def test_store_write_allocates_l2(self):
        cfg, ev, h = setup()
        h.store(0, (0,), 0)
        drain(ev)
        assert h.l2[0].probe(0)
        assert h.dram[0].stats.stores == 1

    def test_store_hit_in_l2_skips_dram(self):
        cfg, ev, h = setup()
        h.store(0, (0,), 0)
        drain(ev)
        n = h.dram[0].stats.requests
        h.store(0, (0,), 10_000)
        drain(ev)
        assert h.dram[0].stats.requests == n


class TestAccounting:
    def test_totals_keys(self):
        cfg, ev, h = setup()
        t = h.totals()
        for k in ("l1_accesses", "l1_misses", "l1_miss_rate", "l2_accesses",
                  "l2_misses", "l2_miss_rate", "dram_requests",
                  "dram_row_hit_rate"):
            assert k in t

    def test_in_flight_tracks_outstanding(self):
        cfg, ev, h = setup()
        assert not h.in_flight
        h.try_load(0, (0,), 0, lambda c: None)
        assert h.in_flight
        drain(ev)
        assert not h.in_flight

    def test_every_load_gets_exactly_one_response(self):
        cfg, ev, h = setup()
        done = []
        for i in range(40):
            assert h.try_load(i % 2, (i * 128, i * 128 + 128), i,
                              lambda c, i=i: done.append(i))
            if i % 8 == 7:
                drain(ev)  # keep MSHR occupancy bounded
        drain(ev)
        assert sorted(done) == list(range(40))
