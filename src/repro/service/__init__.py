"""Simulation-as-a-service: async job server, persistent store, client.

Turns the blocking local :class:`~repro.harness.engine.Engine` into a
long-running multi-client service (see docs/service.md):

* :mod:`repro.service.store` — SQLite (WAL) job store persisting
  submitted specs, states, priorities and results across restarts.
* :mod:`repro.service.server` — asyncio HTTP server with a batching
  scheduler (coalesces compatible queued jobs into ``run_batch``
  calls), priority + FIFO ordering, per-client rate limiting,
  admission control, graceful drain, and ``/healthz`` / ``/metrics``
  (Prometheus text) / ``/jobs`` introspection.
* :mod:`repro.service.client` — stdlib blocking client library used by
  the ``repro submit`` / ``repro jobs`` CLI verbs.
* :mod:`repro.service.serialize` — the result/failure wire payloads,
  shared with ``repro run --json``.

Everything is stdlib-only (asyncio + ``http.client`` + ``sqlite3``).
"""

from repro.service.client import (AdmissionRejected, JobPending,
                                  ServiceClient, ServiceError)
from repro.service.serialize import (failure_payload, parse_result,
                                     result_payload)
from repro.service.server import ServiceConfig, ServiceServer
from repro.service.store import Job, JobStore

__all__ = [
    "AdmissionRejected",
    "Job",
    "JobPending",
    "JobStore",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceServer",
    "failure_payload",
    "parse_result",
    "result_payload",
]
