"""Opcodes, memory spaces and warp access patterns."""

from __future__ import annotations

from enum import Enum, auto

__all__ = ["Op", "MemSpace", "Pattern", "op_group", "ALU_OPS", "SFU_OPS",
           "LOAD_OPS", "STORE_OPS", "GLOBAL_OPS", "SHARED_OPS", "MEM_OPS"]


class Op(Enum):
    """Instruction opcodes.

    The set is deliberately small: the paper's mechanisms depend on the
    *timing class* of an instruction (short ALU, long SFU, scratchpad,
    global memory, barrier, exit), not on its arithmetic semantics.
    """

    # short-latency arithmetic (pipelined ALU)
    IADD = auto()
    IMUL = auto()
    FADD = auto()
    FMUL = auto()
    FFMA = auto()
    MOV = auto()
    SETP = auto()
    # long-latency special function unit
    SFU = auto()
    # memory
    LDG = auto()   # load  from global memory
    STG = auto()   # store to   global memory
    LDS = auto()   # load  from scratchpad (shared memory)
    STS = auto()   # store to   scratchpad
    # synchronisation / control
    BAR = auto()   # __syncthreads()
    EXIT = auto()  # end of thread


class MemSpace(Enum):
    """Address space of a memory instruction."""

    GLOBAL = auto()
    SHARED = auto()


class Pattern(Enum):
    """Warp-level access pattern for a global memory instruction.

    The coalescer maps a pattern to a number of 128-byte transactions and
    to the addresses those transactions touch:

    * ``COALESCED`` — unit-stride, one transaction per warp access.
    * ``STRIDED``   — fixed element stride; ``txn`` transactions per access.
    * ``RANDOM``    — pointer-chasing / hash-scattered; ``txn`` independent
      lines drawn pseudo-randomly from the region (MUM-like divergence).
    * ``BROADCAST`` — all lanes read the same line (lookup tables).
    """

    COALESCED = auto()
    STRIDED = auto()
    RANDOM = auto()
    BROADCAST = auto()


ALU_OPS = frozenset({Op.IADD, Op.IMUL, Op.FADD, Op.FMUL, Op.FFMA, Op.MOV,
                     Op.SETP})
SFU_OPS = frozenset({Op.SFU})
LOAD_OPS = frozenset({Op.LDG, Op.LDS})
STORE_OPS = frozenset({Op.STG, Op.STS})
GLOBAL_OPS = frozenset({Op.LDG, Op.STG})
SHARED_OPS = frozenset({Op.LDS, Op.STS})
MEM_OPS = GLOBAL_OPS | SHARED_OPS


def op_group(op: Op) -> str:
    """Classify an opcode into its functional group.

    Returns one of ``"alu"``, ``"sfu"``, ``"global"``, ``"shared"``,
    ``"bar"``, ``"exit"``.
    """
    if op in ALU_OPS:
        return "alu"
    if op in SFU_OPS:
        return "sfu"
    if op in GLOBAL_OPS:
        return "global"
    if op in SHARED_OPS:
        return "shared"
    if op is Op.BAR:
        return "bar"
    if op is Op.EXIT:
        return "exit"
    raise ValueError(f"unknown opcode {op!r}")
