"""Experiments beyond the paper's evaluation (ablations & future work).

* ``ext_early_release`` — the Sec. VIII future-work feature: live-range
  based early handoff of shared register pools.  Evaluated on a kernel
  with a long register-light *tail phase* (compute loop, then a
  scratchpad-staged writeback loop that reuses only the first two
  registers), where the pool can be handed over long before warp exit.
* ``ext_threshold_frontier`` — an ablation the paper only samples: the
  full IPC-vs-t frontier at fine granularity for one app per resource,
  exposing the step structure Eq. 4 imposes on block counts.
"""

from __future__ import annotations

from repro.config import GPUConfig
from repro.core.sharing import SharedResource, SharingSpec, plan_sharing
from repro.harness.engine import Engine, RunSpec
from repro.harness.experiments import (ExperimentResult,
                                       _cfg, _engine, _experiment)
from repro.harness.runner import improvement, shared, unshared
from repro.isa.builder import KernelBuilder
from repro.workloads.apps import APPS

__all__ = ["tail_heavy_kernel"]

KB = 1024
REG = SharedResource.REGISTERS
SPAD = SharedResource.SCRATCHPAD


def tail_heavy_kernel(scale: float = 1.0):
    """Compute loop over the full register set, then a long tail loop
    that provably touches only the two first-used registers.

    After the unroll pass the tail registers get sequence numbers 0 and
    1, i.e. they are private at any threshold, so live-range analysis
    proves the shared pool dead for the entire tail.
    """
    b = KernelBuilder("tailheavy", block_size=256, regs=36, seed=404,
                      alloc="high_first", variance=0.3)
    # rA/rB are allocated first -> lowest sequence numbers post-unroll.
    rA = b.ldg(region="in", footprint=128 * KB, block_private=False)
    rB = b.alu(src=(rA,))
    with b.loop(max(2, round(24 * scale))):
        b.ldg(region="in", footprint=128 * KB, block_private=False)
        b.alu_chain(3)
        b.alu_indep(3)
    with b.loop(max(2, round(40 * scale))):  # register-light ALU tail
        b.alu(dst=rA, src=(rB,))
        b.alu(dst=rB, src=(rA,))
        b.alu(dst=rA, src=(rB,))
        b.alu(dst=rB, src=(rA,))
    b.stg(region="out", footprint=256 * KB, src=rB)
    return b.build()


from repro.workloads.apps import App as _App  # noqa: E402

#: Registered as a plain App so the runner treats it like any workload.
TAIL_APP = _App("tailheavy", "extension", 1, "registers", tail_heavy_kernel)


@_experiment
def ext_early_release(config: GPUConfig | None = None, scale: float = 1.0,
                      waves: float = 6.0,
                      engine: Engine | None = None) -> ExperimentResult:
    """Extension: live-range early release (paper Sec. VIII future work)."""
    cfg = _cfg(config)
    res = ExperimentResult(
        "ext_early_release",
        "Extension (Sec. VIII): live-range early release of shared "
        "registers",
        ["app", "ipc_base", "ipc_shared", "ipc_shared_er",
         "impr_shared_pct", "impr_er_pct", "early_releases"])
    apps = [TAIL_APP, APPS["hotspot"], APPS["sgemm"]]
    modes = [unshared("lrr"), shared(REG, "owf", unroll=True),
             shared(REG, "owf", unroll=True, early_release=True)]
    results = iter(_engine(engine).run_batch(
        [RunSpec.create(app, m, config=cfg, scale=scale, waves=waves)
         for app in apps for m in modes]))
    for app in apps:
        base, plain, er = next(results), next(results), next(results)
        res.rows.append({
            "app": app.name,
            "ipc_base": round(base.ipc, 2),
            "ipc_shared": round(plain.ipc, 2),
            "ipc_shared_er": round(er.ipc, 2),
            "impr_shared_pct": round(improvement(base, plain), 2),
            "impr_er_pct": round(improvement(base, er), 2),
            "early_releases": sum(s.early_releases for s in er.sm_stats),
        })
    res.notes = ("Early release only pays off when warps have a long "
                 "shared-register-free tail (tailheavy); for loop-dominated "
                 "kernels like hotspot the pool is live until the last "
                 "iteration and ER matches plain sharing.")
    return res


@_experiment
def ext_threshold_frontier(config: GPUConfig | None = None,
                           scale: float = 1.0,
                           waves: float = 6.0,
                           engine: Engine | None = None) -> ExperimentResult:
    """Ablation: fine-grained IPC/blocks vs threshold t frontier."""
    cfg = _cfg(config)
    res = ExperimentResult(
        "ext_threshold_frontier",
        "Ablation: fine-grained sharing-threshold frontier",
        ["app", "resource", "t", "sharing_pct", "blocks", "ipc"])
    cases = [("hotspot", REG), ("lavaMD", SPAD)]
    ts = (1.0, 0.8, 0.6, 0.5, 0.4, 0.3, 0.2, 0.15, 0.1, 0.05)
    results = iter(_engine(engine).run_batch(
        [RunSpec.create(APPS[name], shared(resource, "owf", t=t,
                                           unroll=resource is REG),
                        config=cfg, scale=scale, waves=waves)
         for name, resource in cases for t in ts]))
    for name, resource in cases:
        kernel = APPS[name].kernel(scale)
        for t in ts:
            plan = plan_sharing(kernel, cfg, SharingSpec(resource, t))
            r = next(results)
            res.rows.append({
                "app": name,
                "resource": resource.value,
                "t": t,
                "sharing_pct": round((1 - t) * 100, 1),
                "blocks": plan.total,
                "ipc": round(r.ipc, 2),
            })
    res.notes = ("Block counts move in Eq. 4 steps; IPC follows the block "
                 "count, not t itself — the paper's Tables V-VIII sampled "
                 "this frontier at six points.")
    return res


@_experiment
def ext_cache_sensitivity(config: GPUConfig | None = None,
                          scale: float = 1.0,
                          waves: float = 6.0,
                          engine: Engine | None = None) -> ExperimentResult:
    """Ablation: L1 capacity vs the sharing win/loss of cache-bound apps.

    The paper attributes mri-q's slowdown and LIB's flat result to L1/L2
    misses caused by the extra blocks.  Sweeping the L1 size moves that
    crossover: with a large enough L1 the extra blocks stop thrashing and
    sharing turns positive.
    """
    from dataclasses import replace
    cfg = _cfg(config)
    res = ExperimentResult(
        "ext_cache_sensitivity",
        "Ablation: register-sharing gain vs L1 capacity (cache-bound apps)",
        ["app", "l1_kb", "ipc_base", "ipc_shared", "improvement_pct",
         "l1_miss_base", "l1_miss_shared"])
    names = ("mri-q", "LIB")
    l1_sizes = (8, 16, 32, 64)
    modes = [unshared("lrr"), shared(REG, "owf", unroll=True)]
    results = iter(_engine(engine).run_batch(
        [RunSpec.create(APPS[name], m,
                        config=replace(cfg, l1_size=l1_kb * KB),
                        scale=scale, waves=waves)
         for name in names for l1_kb in l1_sizes for m in modes]))
    for name in names:
        for l1_kb in l1_sizes:
            base, best = next(results), next(results)
            res.rows.append({
                "app": name,
                "l1_kb": l1_kb,
                "ipc_base": round(base.ipc, 2),
                "ipc_shared": round(best.ipc, 2),
                "improvement_pct": round(improvement(base, best), 2),
                "l1_miss_base": round(float(base.mem["l1_miss_rate"]), 3),
                "l1_miss_shared": round(float(best.mem["l1_miss_rate"]), 3),
            })
    res.notes = ("16 KB is the paper's Table I configuration; the "
                 "crossover confirms the cache-contention explanation for "
                 "mri-q/LIB.")
    return res


@_experiment
def ext_variance_sensitivity(config: GPUConfig | None = None,
                             scale: float = 1.0,
                             waves: float = 6.0,
                             engine: Engine | None = None
                             ) -> ExperimentResult:
    """Ablation: sharing gain vs per-warp work imbalance.

    Warp-level register handoff converts the block-drain phase (fast
    warps done, block still holding all resources) into useful overlap.
    With perfectly uniform warps there is almost no drain to reclaim;
    gains grow with imbalance.  This isolates the work_variance modelling
    decision documented in DESIGN.md §4.
    """
    cfg = _cfg(config)
    res = ExperimentResult(
        "ext_variance_sensitivity",
        "Ablation: register-sharing gain vs work variance (hotspot body)",
        ["variance", "ipc_base", "ipc_shared", "improvement_pct"])
    from repro.isa.builder import KernelBuilder as _KB

    def hotspot_like(v: float):
        def build(s: float):
            b = _KB("hotspot-v", block_size=256, regs=36, seed=103,
                    variance=v)
            with b.loop(max(2, round(50 * s))):
                b.ldg(region="temp", footprint=256 * KB,
                      block_private=False)
                b.alu_chain(2)
                b.alu_indep(4)
            b.stg(region="out", footprint=256 * KB)
            return b.build()
        return _App(f"hotspot-v{v}", "extension", 1, "registers", build)

    variances = (0.0, 0.15, 0.3, 0.45, 0.6)
    modes = [unshared("lrr"), shared(REG, "owf", unroll=True)]
    results = iter(_engine(engine).run_batch(
        [RunSpec.create(hotspot_like(v), m, config=cfg, scale=scale,
                        waves=waves)
         for v in variances for m in modes]))
    for v in variances:
        base, best = next(results), next(results)
        res.rows.append({
            "variance": v,
            "ipc_base": round(base.ipc, 2),
            "ipc_shared": round(best.ipc, 2),
            "improvement_pct": round(improvement(base, best), 2),
        })
    res.notes = ("The workloads use v=0.15-0.6 calibrated per app "
                 "(docs/workloads.md); the paper's real benchmarks carry "
                 "this imbalance intrinsically.")
    return res
