#!/usr/bin/env python3
"""Batch sweeps with CSV export (the tool behind the paper harness).

Builds a grid of (app × mode) runs, executes it, prints the winners and
writes a flat CSV ready for pandas/gnuplot.

Run:  python examples/batch_sweep.py [out.csv]
"""

import sys

from repro import GPUConfig, SharedResource, Sweep, shared, unshared

cfg = GPUConfig().scaled(num_clusters=4)

sweep = Sweep(config=cfg, scale=0.7, waves=6)
sweep.add_apps(["hotspot", "MUM", "LIB", "lavaMD", "CONV1"])
sweep.add_modes([
    unshared("lrr"),
    unshared("gto"),
    shared(SharedResource.REGISTERS, "owf", unroll=True, dyn=True),
    shared(SharedResource.SCRATCHPAD, "owf"),
])

print(f"running {sweep.size} simulations...")
sweep.run(progress=True)

print("\nbest mode per app:")
for app, mode in sweep.best_mode_per_app().items():
    print(f"  {app:8s} -> {mode}")

csv_text = sweep.to_csv()
if len(sys.argv) > 1:
    with open(sys.argv[1], "w") as f:
        f.write(csv_text)
    print(f"\nwrote {sys.argv[1]} ({len(csv_text.splitlines()) - 1} rows)")
else:
    print("\nCSV preview (pass a filename to save):")
    for line in csv_text.splitlines()[:4]:
        print(" ", line[:100])
