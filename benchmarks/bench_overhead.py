"""Sec. V: hardware storage overhead of both sharing schemes."""

from conftest import run_once

from repro.config import GPUConfig
from repro.harness.experiments import run_experiment
from repro.harness.report import render_experiment


def test_hw_overhead(benchmark, capsys):
    res = run_once(benchmark, run_experiment, exp_id="hw_overhead",
                   config=GPUConfig())
    with capsys.disabled():
        print("\n" + render_experiment(res))
    vals = {r["quantity"]: r["value"] for r in res.rows}
    # T=8 blocks, W=48 warps (Table I) on 14 SMs.
    assert vals["register_sharing_bits_per_sm"] == 273
    assert vals["register_sharing_bits_total"] == 273 * 14
    assert vals["scratchpad_sharing_bits_per_sm"] == 93
    assert vals["scratchpad_sharing_bits_total"] == 93 * 14
