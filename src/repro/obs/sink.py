"""Observability sink: the null object and the recording observer.

Every instrumented component (both SM cores, the memory hierarchy, the
lock groups, the GPU loop) publishes through an :class:`ObsSink`.  The
base class is a **null object** — every hook is a no-op and
``enabled`` is False — and :data:`NULL_SINK` is the shared instance
components default to, so the simulator's hot paths can guard on a
single pre-resolved boolean (``self._obs_on``) and are untouched when
observability is off: the golden core suite and the perf-smoke gate pin
that behaviourally and in wall-clock.

:class:`Observer` is the live implementation: it bridges the hooks
into a :class:`~repro.obs.metrics.MetricsRegistry` (named counters /
gauges / histograms) and/or a :class:`~repro.obs.tracing.Tracer`
(Chrome trace-event timeline).  Either half can be disabled
independently — ``--metrics`` without ``--trace`` collects counters
only, and vice versa.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.tracing import Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.block import SharePair
    from repro.sim.gpu import GPU
    from repro.sim.sm import SMCore
    from repro.sim.warp import WarpContext, WarpState

__all__ = ["ObsSink", "NULL_SINK", "Observer"]

#: WarpState → timeline interval name, indexed by enum *value* (same
#: pinned ordering the simulator's ``_CAT`` table relies on; importing
#: the enum here would close an import cycle through ``repro.sim``).
#: The ``stall:`` prefix marks the paper's Fig. 10 pipeline-stall
#: bucket; barriers / lock waits / Dyn throttling are its idle bucket.
STATE_NAMES = (
    "ready",             # READY
    "stall:scoreboard",  # BLOCK_SB
    "stall:mem",         # BLOCK_MEM
    "barrier",           # BLOCK_BAR
    "lock-wait",         # BLOCK_LOCK
    "dyn-throttle",      # BLOCK_DYN
    "stall:mshr",        # BLOCK_RETRY
    "finished",          # FINISHED (no interval ever opens in it)
)

_FINISHED = 7  # WarpState.FINISHED.value


class ObsSink:
    """No-op observability sink (the null object).

    Subclass and override what you need; the simulator calls these
    hooks only when ``enabled`` is True (hot paths) or through the
    null object directly (cold paths), so every method must be safe to
    call with the simulator mid-cycle.
    """

    enabled = False

    # -- warp lifecycle / state timeline --------------------------------
    def warp_started(self, sm_id: int, warp: "WarpContext",
                     cycle: int) -> None:
        """A warp was launched (its READY interval opens here)."""

    def warp_state(self, sm_id: int, warp: "WarpContext",
                   new_state: "WarpState", cycle: int) -> None:
        """A warp changed wait state (closes the previous interval)."""

    # -- issue / scheduler ----------------------------------------------
    def issued(self, sm_id: int, sched_id: int, warp: "WarpContext",
               cycle: int) -> None:
        """One instruction issued by scheduler ``sched_id``."""

    def dyn_refusal(self, sm_id: int, warp: "WarpContext",
                    cycle: int) -> None:
        """The Dyn controller refused a non-owner memory instruction."""

    # -- locks -----------------------------------------------------------
    def wire_locks(self, sm: "SMCore", pair: "SharePair") -> None:
        """Attach lock observers to a pair's share groups (idempotent)."""

    # -- memory hierarchy -------------------------------------------------
    def mem_request(self, sm_id: int, n_lines: int, cycle: int,
                    on_done: Callable[[int], None]
                    ) -> Callable[[int], None]:
        """An accepted warp load; may wrap ``on_done`` to observe
        completion.  Must return the callable the hierarchy should use."""
        return on_done

    def mshr_sample(self, sm_id: int, occupancy: int, capacity: int,
                    cycle: int) -> None:
        """L1 MSHR occupancy sampled at an accepted load."""

    def mshr_reject(self, sm_id: int, cycle: int) -> None:
        """A warp load bounced off a full L1 MSHR array."""

    # -- run lifecycle ----------------------------------------------------
    def finalize(self, gpu: "GPU", cycles: int) -> None:
        """The run completed; publish end-of-run aggregates."""

    def metrics_dict(self) -> dict | None:
        """Snapshot for ``RunResult.metrics`` (None when metrics off)."""
        return None


#: Shared null sink every component defaults to.
NULL_SINK = ObsSink()


class _LockObs:
    """Per-(SM, pair) adapter the lock groups publish through.

    :mod:`repro.core.locks` is a pure state machine with no notion of
    time; this adapter supplies the clock (the owning SM's ``now``) and
    the pair identity, so the groups just call ``acquired``/``released``
    with (side, slot).
    """

    __slots__ = ("obs", "sm", "kind", "key", "_held")

    def __init__(self, obs: "Observer", sm: "SMCore", kind: str,
                 key: str) -> None:
        self.obs = obs
        self.sm = sm
        self.kind = kind   # "reg" | "spad"
        self.key = key     # e.g. "sm0.p1"
        #: slot -> (side, acquire cycle) while held.
        self._held: dict[int, tuple[int, int]] = {}

    def acquired(self, side: int, slot: int) -> None:
        now = self.sm.now
        self._held[slot] = (side, now)
        self.obs.lock_acquired(self, side, slot, now)

    def released(self, side: int, slot: int) -> None:
        now = self.sm.now
        start = self._held.pop(slot, None)
        self.obs.lock_released(self, side, slot, now,
                               None if start is None else start[1])


class Observer(ObsSink):
    """Recording sink: metrics registry and/or Chrome-trace timeline.

    Usage (API level; the CLIs' ``--trace``/``--metrics`` flags and the
    engine's :class:`~repro.harness.engine.RunSpec` fields build this
    for you)::

        obs = Observer(metrics=True, trace=True)
        res = run(APPS["MUM"], shared(SharedResource.REGISTERS, "owf"),
                  obs=obs)
        obs.write_trace("mum.json")       # Perfetto-loadable
        res.metrics["histograms"]["lock_wait_cycles{kind=reg}"]
    """

    enabled = True

    def __init__(self, *, metrics: bool = True, trace: bool = False,
                 max_events: int = 1_000_000) -> None:
        self.metrics: MetricsRegistry | None = \
            MetricsRegistry() if metrics else None
        self.tracer: Tracer | None = \
            Tracer(max_events=max_events) if trace else None
        if self.metrics is None and self.tracer is None:
            raise ValueError("Observer with neither metrics nor trace "
                             "would observe nothing")
        #: (sm_id, dynamic_id) -> (state name, interval start cycle).
        self._open: dict[tuple[int, int], tuple[str, int]] = {}
        self._state_hist: dict[str, Histogram] = {}
        self._issue_counts: dict[tuple[int, int], int] = {}
        self._pairs_wired: dict[int, int] = {}
        self._next_req = 0
        self._run_info: dict = {}

    # ------------------------------------------------------------------
    # warp timeline
    # ------------------------------------------------------------------
    def warp_started(self, sm_id: int, warp, cycle: int) -> None:
        t = self.tracer
        if t is not None:
            t.process_name(sm_id, f"SM{sm_id}")
            t.thread_name(sm_id, warp.dynamic_id,
                          f"W{warp.dynamic_id} (blk {warp.block.linear_id}"
                          f", slot {warp.slot})")
        self._open[(sm_id, warp.dynamic_id)] = ("ready", cycle)

    def warp_state(self, sm_id: int, warp, new_state, cycle: int) -> None:
        key = (sm_id, warp.dynamic_id)
        prev = self._open.pop(key, None)
        if prev is not None:
            name, since = prev
            dur = cycle - since
            m = self.metrics
            if m is not None:
                h = self._state_hist.get(name)
                if h is None:
                    h = m.histogram("warp_state_cycles", state=name)
                    self._state_hist[name] = h
                h.record(dur)
                if name == "lock-wait":
                    pair = warp.block.pair
                    kind = "spad" if (pair is not None
                                      and pair.reg_group is None) else "reg"
                    m.histogram("lock_wait_cycles", kind=kind).record(dur)
            if self.tracer is not None and dur > 0:
                self.tracer.complete(sm_id, warp.dynamic_id, name,
                                     "warp_state", since, dur)
        if new_state != _FINISHED:
            self._open[key] = (STATE_NAMES[new_state], cycle)

    # ------------------------------------------------------------------
    # issue / dyn
    # ------------------------------------------------------------------
    def issued(self, sm_id: int, sched_id: int, warp, cycle: int) -> None:
        key = (sm_id, sched_id)
        self._issue_counts[key] = self._issue_counts.get(key, 0) + 1

    def dyn_refusal(self, sm_id: int, warp, cycle: int) -> None:
        if self.metrics is not None:
            self.metrics.counter("dyn_refusals", sm=sm_id).inc()
        if self.tracer is not None:
            self.tracer.instant(sm_id, warp.dynamic_id, "dyn-refusal",
                                "dyn", cycle)

    # ------------------------------------------------------------------
    # locks
    # ------------------------------------------------------------------
    def wire_locks(self, sm, pair) -> None:
        group = pair.reg_group if pair.reg_group is not None \
            else pair.spad_group
        if group is None or group.obs is not None:
            return
        idx = self._pairs_wired.get(sm.sm_id, 0)
        self._pairs_wired[sm.sm_id] = idx + 1
        kind = "reg" if pair.reg_group is not None else "spad"
        group.obs = _LockObs(self, sm, kind, f"sm{sm.sm_id}.p{idx}")

    def lock_acquired(self, lock: _LockObs, side: int, slot: int,
                      cycle: int) -> None:
        if self.metrics is not None:
            self.metrics.counter("lock_acquires", kind=lock.kind).inc()

    def lock_released(self, lock: _LockObs, side: int, slot: int,
                      cycle: int, acquired_at: int | None) -> None:
        if self.metrics is not None:
            self.metrics.counter("lock_releases", kind=lock.kind).inc()
            if acquired_at is not None:
                self.metrics.histogram(
                    "lock_hold_cycles",
                    kind=lock.kind).record(cycle - acquired_at)
        if self.tracer is not None and acquired_at is not None:
            t = self.tracer
            name = f"{lock.kind} lock {lock.key}" + \
                (f" slot {slot}" if lock.kind == "reg" else "")
            tid = t.track(lock.sm.sm_id, name)
            t.complete(lock.sm.sm_id, tid, f"held by side {side}", "lock",
                       acquired_at, cycle - acquired_at,
                       {"side": side, "slot": slot, "pair": lock.key})

    # ------------------------------------------------------------------
    # memory hierarchy
    # ------------------------------------------------------------------
    def mem_request(self, sm_id: int, n_lines: int, cycle: int,
                    on_done: Callable[[int], None]
                    ) -> Callable[[int], None]:
        self._next_req += 1
        rid = self._next_req

        def done(c: int) -> None:
            if self.metrics is not None:
                self.metrics.histogram(
                    "mem_load_cycles", sm=sm_id).record(c - cycle)
            if self.tracer is not None:
                self.tracer.span(sm_id, f"load x{n_lines}", "mem", rid,
                                 cycle, c, {"lines": n_lines})
            on_done(c)

        return done

    def mshr_sample(self, sm_id: int, occupancy: int, capacity: int,
                    cycle: int) -> None:
        if self.metrics is not None:
            self.metrics.histogram("mshr_occupancy", sm=sm_id) \
                .record(occupancy)
        if self.tracer is not None:
            self.tracer.counter(sm_id, f"mshr[SM{sm_id}]", cycle,
                                {"occupied": occupancy})

    def mshr_reject(self, sm_id: int, cycle: int) -> None:
        if self.metrics is not None:
            self.metrics.counter("mshr_rejects", sm=sm_id).inc()

    # ------------------------------------------------------------------
    # run lifecycle
    # ------------------------------------------------------------------
    def finalize(self, gpu, cycles: int) -> None:
        """Close open intervals and publish end-of-run aggregates."""
        self._run_info = {"kernel": gpu.kernel.name, "mode": gpu.mode,
                          "cycles": cycles}
        # Close any interval still open at the final cycle (warps all
        # finish in a completed run, so normally there are none; a
        # truncated/failed run keeps its partial timeline honest).
        for (sm_id, wid), (name, since) in sorted(self._open.items()):
            if self.tracer is not None and cycles > since:
                self.tracer.complete(sm_id, wid, name, "warp_state",
                                     since, cycles - since)
        self._open.clear()
        m = self.metrics
        if m is None:
            return
        for (sm_id, sched_id), n in sorted(self._issue_counts.items()):
            m.counter("issued_instructions", sm=sm_id,
                      sched=sched_id).inc(n)
            if cycles:
                m.gauge("issue_slot_utilisation", sm=sm_id,
                        sched=sched_id).set(round(n / cycles, 6))
        hier = gpu.hierarchy
        for level, caches in (("l1", hier.l1), ("l2", hier.l2)):
            for outcome in ("hits", "misses", "mshr_merges",
                            "mshr_rejects", "evictions"):
                total = sum(getattr(c.stats, outcome) for c in caches)
                m.counter("cache_probes", level=level,
                          outcome=outcome).inc(total)
        for p, d in enumerate(hier.dram):
            m.counter("dram_requests", partition=p).inc(d.stats.requests)
            m.counter("dram_row_hits", partition=p).inc(d.stats.row_hits)
        for sm in gpu.sms:
            st = sm.stats
            m.counter("dyn_throttle_refusals_total",
                      sm=sm.sm_id).inc(st.dyn_refusals)
            m.counter("lock_wait_events", sm=sm.sm_id).inc(st.lock_waits)

    def metrics_dict(self) -> dict | None:
        return None if self.metrics is None else self.metrics.to_dict()

    def write_trace(self, path) -> None:
        """Export the timeline (``.jsonl`` → line stream, else Chrome)."""
        if self.tracer is None:
            raise ValueError("tracing was not enabled on this Observer")
        self.tracer.write(path, self._run_info)
