"""Shared-pool lock managers: direction rule, handoff, deadlock freedom."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.locks import RegisterShareGroup, ScratchpadShareGroup


class TestRegisterGroupBasics:
    def test_first_acquire_succeeds(self):
        g = RegisterShareGroup(4)
        assert g.try_acquire(0, 1)
        assert g.holds(0, 1)
        assert g.holder(1) == 0

    def test_reacquire_is_idempotent(self):
        g = RegisterShareGroup(4)
        assert g.try_acquire(0, 1)
        assert g.try_acquire(0, 1)
        assert g.held_by_side(0) == 1

    def test_partner_cannot_take_held_pool(self):
        g = RegisterShareGroup(4)
        g.try_acquire(0, 1)
        assert not g.try_acquire(1, 1)

    def test_direction_rule_blocks_other_side(self):
        # Fig. 5: while side 0 has live holders, side 1 cannot initiate
        # even on a *different* free slot.
        g = RegisterShareGroup(4)
        g.try_acquire(0, 0)
        assert not g.try_acquire(1, 2)

    def test_same_side_can_take_more_slots(self):
        g = RegisterShareGroup(4)
        g.try_acquire(0, 0)
        assert g.try_acquire(0, 3)
        assert g.held_by_side(0) == 2

    def test_invalid_side_rejected(self):
        g = RegisterShareGroup(2)
        with pytest.raises(ValueError):
            g.try_acquire(2, 0)

    def test_needs_slots(self):
        with pytest.raises(ValueError):
            RegisterShareGroup(0)


class TestHandoff:
    def test_pool_passes_on_warp_finish(self):
        # Paper: "only after W20 finishes execution, W30 can access".
        g = RegisterShareGroup(4)
        g.try_acquire(0, 1)
        g.try_acquire(0, 2)       # side 0 holds two pools
        assert not g.try_acquire(1, 1)
        g.warp_finished(0, 1)     # W20 finishes
        assert g.try_acquire(1, 1)   # W30 inherits slot 1
        # ...but slot 2's pool is still held by a live side-0 warp
        assert not g.try_acquire(1, 2)

    def test_handoff_does_not_open_other_slots(self):
        g = RegisterShareGroup(4)
        g.try_acquire(0, 0)
        g.warp_finished(0, 0)
        # slot 0 partner may inherit; slot 3 has a live... no holders at
        # all now, so side 1 may initiate anywhere.
        assert g.try_acquire(1, 3)

    def test_finished_without_holding(self):
        g = RegisterShareGroup(2)
        g.warp_finished(0, 1)  # never held: only records the finish
        assert g.try_acquire(1, 1)

    def test_release_callback_fires(self):
        g = RegisterShareGroup(2)
        calls = []
        g.on_release = lambda: calls.append(1)
        g.try_acquire(0, 0)
        g.warp_finished(0, 0)
        assert calls == [1]

    def test_reset_side_clears_holds_and_finishes(self):
        g = RegisterShareGroup(3)
        g.try_acquire(0, 0)
        g.warp_finished(0, 1)
        g.reset_side(0)
        assert g.held_by_side(0) == 0
        assert not g.partner_finished(1, 1)
        # a fresh side-0 block can acquire again
        assert g.try_acquire(1, 0)

    def test_lock_side_majority(self):
        g = RegisterShareGroup(4)
        assert g.lock_side is None
        g.try_acquire(0, 0)
        assert g.lock_side == 0


class TestScratchpadGroup:
    def test_first_touch_wins(self):
        g = ScratchpadShareGroup()
        assert g.try_acquire(1)
        assert g.holder == 1
        assert not g.try_acquire(0)
        assert g.try_acquire(1)  # idempotent

    def test_release_only_by_holder(self):
        g = ScratchpadShareGroup()
        g.try_acquire(0)
        g.release(1)
        assert g.holder == 0
        g.release(0)
        assert g.holder is None

    def test_release_callback(self):
        g = ScratchpadShareGroup()
        calls = []
        g.on_release = lambda: calls.append(1)
        g.try_acquire(0)
        g.release(0)
        assert calls == [1]

    def test_partner_acquires_after_release(self):
        g = ScratchpadShareGroup()
        g.try_acquire(0)
        g.release(0)
        assert g.try_acquire(1)

    def test_invalid_side(self):
        with pytest.raises(ValueError):
            ScratchpadShareGroup().try_acquire(5)


class TestDeadlockFreedom:
    """Model-check the invariant behind Fig. 5: with the direction rule,
    some live lock-holding warp can always finish (it never waits on a
    lock itself), so the system always drains."""

    @given(st.lists(st.tuples(st.integers(0, 1), st.integers(0, 5)),
                    min_size=1, max_size=60),
           st.integers(2, 6))
    @settings(max_examples=200, deadline=None)
    def test_holders_never_blocked(self, ops, n_slots):
        g = RegisterShareGroup(n_slots)
        live = {(s, k) for s in (0, 1) for k in range(n_slots)}
        held = {}
        for side, slot in ops:
            slot %= n_slots
            if (side, slot) not in live:
                continue
            if g.try_acquire(side, slot):
                held[slot] = side
                # a holder can always finish: simulate it finishing
                if len(held) > 2:
                    fs, fk = held[slot], slot
                    g.warp_finished(fs, fk)
                    live.discard((fs, fk))
                    del held[fk]
        # At most one side has live *initiated* holders at any point;
        # remaining holders can all finish without blocking.
        for slot, side in list(held.items()):
            g.warp_finished(side, slot)
        assert g.held_by_side(0) == 0 and g.held_by_side(1) == 0

    @given(st.lists(st.tuples(st.integers(0, 1), st.integers(0, 3)),
                    min_size=1, max_size=40))
    @settings(max_examples=200, deadline=None)
    def test_at_most_one_initiating_side(self, ops):
        """While no handoffs have happened, holders are all one side."""
        g = RegisterShareGroup(4)
        for side, slot in ops:
            g.try_acquire(side, slot)
        assert g.held_by_side(0) == 0 or g.held_by_side(1) == 0

    @given(st.lists(st.tuples(st.integers(0, 1), st.integers(0, 3),
                              st.booleans()), min_size=1, max_size=80))
    @settings(max_examples=200, deadline=None)
    def test_pool_exclusivity_always(self, ops):
        """No pool is ever held by both sides, under any interleaving of
        acquires and finishes."""
        g = RegisterShareGroup(4)
        finished = set()
        for side, slot, finish in ops:
            if (side, slot) in finished:
                continue
            if finish:
                g.warp_finished(side, slot)
                finished.add((side, slot))
            else:
                g.try_acquire(side, slot)
            holders = [g.holder(k) for k in range(4)]
            assert all(h in (None, 0, 1) for h in holders)
            assert g.held_by_side(0) == sum(1 for h in holders if h == 0)
            assert g.held_by_side(1) == sum(1 for h in holders if h == 1)
